//! Smoke tests: every example in `examples/` must run to completion.
//!
//! Each test shells out to `cargo run --example <name>` at the workspace root
//! using the same cargo that launched the test run. Concurrent invocations
//! serialize on cargo's target-directory lock, so these are safe to run in
//! parallel with the rest of the suite.

use std::path::Path;
use std::process::Command;

fn run_example(name: &str) {
    let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().to_path_buf();
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", name])
        .current_dir(&workspace_root)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example {name} produced no output; expected a printed report"
    );
}

#[test]
fn quickstart_example_runs() {
    run_example("quickstart");
}

#[test]
fn overclocking_example_runs() {
    run_example("overclocking");
}

#[test]
fn harvesting_example_runs() {
    run_example("harvesting");
}

#[test]
fn tiered_memory_example_runs() {
    run_example("tiered_memory");
}

#[test]
fn failure_injection_example_runs() {
    run_example("failure_injection");
}

#[test]
fn colocation_example_runs() {
    run_example("colocation");
}

#[test]
fn fleet_example_runs() {
    run_example("fleet");
}

#[test]
fn placement_example_runs() {
    run_example("placement");
}

#[test]
fn fleet_churn_example_runs() {
    run_example("fleet_churn");
}

#[test]
fn fleet_learning_example_runs() {
    run_example("fleet_learning");
}

#[test]
fn fleet_trust_example_runs() {
    run_example("fleet_trust");
}

#[test]
fn three_agents_example_runs() {
    run_example("three_agents");
}
