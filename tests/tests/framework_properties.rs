//! Property-based tests of the SOL framework invariants.

use proptest::prelude::*;

use sol_core::actuator::{Actuator, ActuatorAssessment};
use sol_core::error::DataError;
use sol_core::loops::{ActuatorLoop, ModelLoop};
use sol_core::model::{Model, ModelAssessment};
use sol_core::prediction::{Prediction, PredictionSource};
use sol_core::schedule::Schedule;
use sol_core::time::{SimDuration, Timestamp};

/// A configurable model used to explore the framework's state space.
struct PropModel {
    values: Vec<f64>,
    cursor: usize,
    healthy: bool,
    validity: SimDuration,
}

impl Model for PropModel {
    type Data = f64;
    type Pred = f64;

    fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
        let v = self.values[self.cursor % self.values.len()];
        self.cursor += 1;
        Ok(v)
    }
    fn validate_data(&self, d: &f64) -> bool {
        (0.0..=100.0).contains(d)
    }
    fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
    fn update_model(&mut self, _now: Timestamp) {}
    fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
        Some(Prediction::model(1.0, now, now + self.validity))
    }
    fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
        Prediction::fallback(0.0, now, now + self.validity)
    }
    fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
        if self.healthy {
            ModelAssessment::Healthy
        } else {
            ModelAssessment::failing("property test")
        }
    }
}

#[derive(Default)]
struct PropActuator {
    acted_on_model: u64,
    acted_on_default: u64,
    acted_without: u64,
    acceptable: bool,
}

impl Actuator for PropActuator {
    type Pred = f64;
    fn take_action(&mut self, now: Timestamp, pred: Option<&Prediction<f64>>) {
        match pred {
            Some(p) => {
                assert!(!p.is_expired(now), "actuator must never act on an expired prediction");
                match p.source() {
                    PredictionSource::Model => self.acted_on_model += 1,
                    PredictionSource::Default => self.acted_on_default += 1,
                }
            }
            None => self.acted_without += 1,
        }
    }
    fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
        ActuatorAssessment::from_acceptable(self.acceptable)
    }
    fn mitigate(&mut self, _now: Timestamp) {}
    fn clean_up(&mut self, _now: Timestamp) {}
}

fn schedule(data_per_epoch: u32, collect_ms: u64) -> Schedule {
    Schedule::builder()
        .data_per_epoch(data_per_epoch)
        .data_collect_interval(SimDuration::from_millis(collect_ms))
        .max_epoch_time(SimDuration::from_millis(collect_ms * u64::from(data_per_epoch) * 4))
        .assess_model_every_epochs(1)
        .max_actuation_delay(SimDuration::from_millis(collect_ms * 8))
        .assess_actuator_interval(SimDuration::from_millis(collect_ms * 2))
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sample accounting is conserved: every collection is committed,
    /// discarded, or an error.
    #[test]
    fn model_loop_conserves_samples(
        values in prop::collection::vec(-50.0f64..150.0, 1..20),
        data_per_epoch in 1u32..8,
        steps in 1usize..200,
    ) {
        let model = PropModel { values, cursor: 0, healthy: true, validity: SimDuration::from_secs(1) };
        let mut loop_ = ModelLoop::new(model, schedule(data_per_epoch, 10), Timestamp::ZERO);
        for _ in 0..steps {
            let t = loop_.next_wake();
            let _ = loop_.step(t);
        }
        let stats = loop_.stats();
        prop_assert_eq!(
            stats.samples_committed + stats.samples_discarded + stats.collect_errors,
            steps as u64
        );
        // Every forwarded prediction is either from the model or a default.
        prop_assert!(stats.model_predictions + stats.default_predictions
            >= stats.epochs_completed.min(1));
    }

    /// While the model assessment is failing, no model-sourced prediction is
    /// ever emitted.
    #[test]
    fn failing_assessment_never_leaks_model_predictions(
        data_per_epoch in 1u32..6,
        steps in 10usize..150,
    ) {
        let model = PropModel {
            values: vec![1.0],
            cursor: 0,
            healthy: false,
            validity: SimDuration::from_secs(1),
        };
        let mut loop_ = ModelLoop::new(model, schedule(data_per_epoch, 5), Timestamp::ZERO);
        for _ in 0..steps {
            let t = loop_.next_wake();
            if let Some(p) = loop_.step(t) {
                prop_assert_eq!(p.source(), PredictionSource::Default);
            }
        }
        prop_assert_eq!(loop_.stats().model_predictions, 0);
    }

    /// The actuator never acts on expired predictions, regardless of delivery
    /// timing, and its action count matches its stats.
    #[test]
    fn actuator_never_uses_expired_predictions(
        deliveries in prop::collection::vec((0u64..2_000, 1u64..500), 1..40),
        step_gap_ms in 1u64..300,
    ) {
        let mut loop_ = ActuatorLoop::new(
            PropActuator { acceptable: true, ..Default::default() },
            schedule(4, 10),
            Timestamp::ZERO,
        );
        let mut now = Timestamp::ZERO;
        for (offset_ms, validity_ms) in deliveries {
            let produced = Timestamp::from_millis(offset_ms);
            loop_.deliver(Prediction::model(
                1.0,
                produced,
                produced + SimDuration::from_millis(validity_ms),
            ));
            now = now.max(produced) + SimDuration::from_millis(step_gap_ms);
            loop_.step(now);
        }
        let stats = loop_.stats();
        let total_actions = stats.actions_with_model_prediction
            + stats.actions_with_default_prediction
            + stats.actions_without_prediction;
        let a = loop_.actuator();
        prop_assert_eq!(total_actions, a.acted_on_model + a.acted_on_default + a.acted_without);
    }

    /// A halted actuator takes no actions until the safeguard clears.
    #[test]
    fn halted_actuator_takes_no_actions(steps in 5usize..80) {
        let mut loop_ = ActuatorLoop::new(
            PropActuator { acceptable: false, ..Default::default() },
            schedule(4, 10),
            Timestamp::ZERO,
        );
        // First step trips the safeguard.
        loop_.step(Timestamp::from_millis(20));
        prop_assert!(loop_.is_halted());
        for i in 0..steps {
            let now = Timestamp::from_millis(40 + i as u64 * 20);
            loop_.deliver(Prediction::model(1.0, now, now + SimDuration::from_secs(1)));
            loop_.step(now);
        }
        let a = loop_.actuator();
        prop_assert_eq!(a.acted_on_model + a.acted_on_default + a.acted_without, 0);
        prop_assert_eq!(loop_.stats().mitigations, 1);
    }
}
