//! Cross-crate properties of the `ScenarioBuilder` node-assembly API.
//!
//! * Registration order must not leak into per-agent outcomes when agents are
//!   physically uncoupled (a proptest over toy agent populations, plus a
//!   real-agent check on an uncoupled `MultiNode`).
//! * Typed handles must survive the full assemble → intervene → report
//!   round-trip across crates.

use proptest::prelude::*;

use sol_agents::prelude::*;
use sol_core::error::DataError;
use sol_core::prelude::*;
use sol_node_sim::prelude::*;

/// A deterministic toy model parameterized by its sampled value.
struct ToyModel {
    value: f64,
}

impl Model for ToyModel {
    type Data = f64;
    type Pred = f64;

    fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
        Ok(self.value)
    }
    fn validate_data(&self, d: &f64) -> bool {
        d.is_finite()
    }
    fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
    fn update_model(&mut self, _now: Timestamp) {}
    fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
        Some(Prediction::model(self.value, now, now + SimDuration::from_secs(1)))
    }
    fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
        Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
    }
    fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
        ModelAssessment::Healthy
    }
}

#[derive(Default)]
struct ToyActuator {
    actions: u64,
}

impl Actuator for ToyActuator {
    type Pred = f64;
    fn take_action(&mut self, _now: Timestamp, _pred: Option<&Prediction<f64>>) {
        self.actions += 1;
    }
    fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
        ActuatorAssessment::Acceptable
    }
    fn mitigate(&mut self, _now: Timestamp) {}
    fn clean_up(&mut self, _now: Timestamp) {}
}

fn toy_schedule(collect_ms: u64, data_per_epoch: u32) -> Schedule {
    Schedule::builder()
        .data_per_epoch(data_per_epoch)
        .data_collect_interval(SimDuration::from_millis(collect_ms))
        .max_epoch_time(SimDuration::from_millis(collect_ms * u64::from(data_per_epoch) * 4))
        .assess_model_every_epochs(1)
        .max_actuation_delay(SimDuration::from_millis(collect_ms * 8))
        .assess_actuator_interval(SimDuration::from_millis(collect_ms * 2))
        .build()
        .unwrap()
}

/// Runs one toy population registered in the given order and returns each
/// agent's stats keyed by name.
fn run_population(specs: &[(u64, u32)], order: &[usize]) -> Vec<(String, String)> {
    let mut builder = NodeRuntime::builder(NullEnvironment);
    let mut handles = Vec::new();
    for &idx in order {
        let (collect_ms, per_epoch) = specs[idx];
        let name = format!("agent-{idx}");
        let handle = builder.agent(
            &name,
            ToyModel { value: idx as f64 },
            ToyActuator::default(),
            toy_schedule(collect_ms, per_epoch),
        );
        handles.push((name, handle));
    }
    let report = builder.build().run_for(SimDuration::from_secs(20)).unwrap();
    let mut out: Vec<(String, String)> = handles
        .into_iter()
        .map(|(name, handle)| {
            let view = report.agent(handle);
            (name, format!("{:#?}|actions={}", view.stats(), view.actuator().actions))
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On an uncoupled environment, an agent's outcome depends only on its
    /// own configuration — never on where in the registration order it sits.
    #[test]
    fn registration_order_never_changes_uncoupled_agent_stats(
        specs in prop::collection::vec((20u64..400, 1u32..6), 2..5),
        rotation in 0usize..4,
    ) {
        let order: Vec<usize> = (0..specs.len()).collect();
        let mut rotated = order.clone();
        rotated.rotate_left(rotation % specs.len());
        let mut reversed = order.clone();
        reversed.reverse();

        let baseline = run_population(&specs, &order);
        prop_assert_eq!(&baseline, &run_population(&specs, &rotated));
        prop_assert_eq!(&baseline, &run_population(&specs, &reversed));
    }
}

/// The same invariant with the real paper agents: with every coupling
/// disabled, swapping SmartOverclock and SmartHarvest's registration order
/// must leave both agents' stats byte-identical.
#[test]
fn uncoupled_real_agents_are_order_independent() {
    let horizon = SimDuration::from_secs(20);
    let run = |overclock_first: bool| {
        let cpu = Shared::new(CpuNode::new(
            OverclockWorkloadKind::ObjectStore.build(8),
            CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
        ));
        let harvest_node =
            Shared::new(HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default()));
        // No couplings: the substrates only share the clock.
        let node =
            MultiNode::builder().cpu(cpu.clone()).harvest(harvest_node.clone()).build().unwrap();
        let mut builder = NodeRuntime::builder(node);
        let (oc, hv) = if overclock_first {
            let oc = builder.register(overclock_blueprint(&cpu, OverclockConfig::default()));
            let hv = builder.register(harvest_blueprint(&harvest_node, HarvestConfig::default()));
            (oc, hv)
        } else {
            let hv = builder.register(harvest_blueprint(&harvest_node, HarvestConfig::default()));
            let oc = builder.register(overclock_blueprint(&cpu, OverclockConfig::default()));
            (oc, hv)
        };
        let report = builder.build().run_for(horizon).unwrap();
        (format!("{:#?}", report.agent(oc).stats()), format!("{:#?}", report.agent(hv).stats()))
    };
    assert_eq!(run(true), run(false));
}

/// Handles survive the full cross-crate round trip: preset assembly, targeted
/// intervention, typed report access, and typed recovery by value.
#[test]
fn handles_round_trip_across_crates() {
    let agents = three_agents(ThreeAgentConfig::default());
    let (oc, hv, mem) = (agents.overclock, agents.harvest, agents.memory);
    let mut runtime = agents.runtime;
    runtime.delay_model_at(oc, Timestamp::from_secs(5), SimDuration::from_secs(5));
    let mut report = runtime.run_for(SimDuration::from_secs(15)).unwrap();

    assert_eq!(report.agent(oc).name(), "smart-overclock");
    assert_eq!(report.agent(hv).name(), "smart-harvest");
    assert_eq!(report.agent(mem).name(), "smart-memory");

    // Typed recovery by value: the concrete model type comes back without a
    // downcast at the call site.
    let taken = report.take(oc);
    assert!(taken.model.epochs() > 0);
    assert!(matches!(report.try_agent(oc), Err(ReportError::UnknownAgent(_))));
    // The other agents are still addressable after the removal.
    assert!(report.agent(hv).stats().model.epochs_completed > 0);
    assert!(report.agent(mem).stats().model.samples_committed > 0);
}
