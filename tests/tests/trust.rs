//! Closed-loop properties of the fleet trust plane.
//!
//! The learning plane's robust aggregation *contains* poisoners; the trust
//! plane *identifies and evicts* them. These tests pin the full loop at fleet
//! scale:
//!
//! * A fleet with persistent sign-flip poisoners quarantines and drains every
//!   victim within a bounded number of learning rounds, while honest nodes
//!   end the run trusted and active.
//! * A clean fleet of the same shape records zero trust actions at the
//!   default thresholds — detection has a pinned false-positive floor.
//! * Both reports are byte-identical across 1, 2, and 8 worker threads and
//!   across repeat runs.
//! * Misconfigured trust policies are rejected loudly at construction.

use sol_agents::poison::{
    poisoned_overclock_recipe, PoisonAttack, PoisonPlan, PoisonedOverclockConfig,
};
use sol_core::prelude::*;
use sol_ml::exchange::{AggregationRule, BlendPolicy};

const NODES: usize = 8;
const VICTIMS: usize = 2;
const HORIZON: SimDuration = SimDuration::from_secs(120);
const FLEET_SEED: u64 = 0x1EA2;

/// `exchange_every: 5` on the default 1s epoch gives a learning round every
/// five epochs; the default [`TrustPolicy`] quarantines after three
/// consecutive divergent rounds, so detection must land within the first ~20
/// epochs of a 120s run — leaving a long trusted-steady-state tail.
fn plane() -> LearningPlane {
    LearningPlane {
        exchange_every: 5,
        rule: AggregationRule::CoordinateWiseMedian,
        blend: BlendPolicy::Replace,
    }
}

fn trusted_fleet(
    victims: usize,
    threads: usize,
) -> (FleetRuntime<sol_node_sim::shared::Shared<sol_node_sim::cpu_node::CpuNode>>, PoisonPlan) {
    let preset = poisoned_overclock_recipe(PoisonedOverclockConfig {
        victims,
        attack: PoisonAttack::SignFlip { gain: 4.0 },
        nodes: NODES,
        ..PoisonedOverclockConfig::default()
    });
    let config = FleetConfig {
        nodes: NODES,
        threads,
        seed: FLEET_SEED,
        learning: Some(plane()),
        trust: Some(TrustPolicy::default()),
        ..FleetConfig::default()
    };
    (FleetRuntime::new(preset.recipe, config).unwrap(), preset.plan)
}

/// The headline closed loop, pinned: every node the [`PoisonPlan`] poisons is
/// identified, quarantined, and drained out of the fleet within bounded
/// epochs, and every honest node survives untouched.
#[test]
fn persistent_poisoners_are_quarantined_and_drained() {
    let (fleet, plan) = trusted_fleet(VICTIMS, 4);
    let report = fleet.run(HORIZON).unwrap();

    assert_eq!(report.trust.quarantines, VICTIMS as u64, "every victim is quarantined");
    assert!(report.trust.suspects >= VICTIMS as u64, "quarantine passes through suspect");
    assert!(report.trust.excluded > 0, "suspects sit out at least one aggregation");
    assert!(report.trust.divergent >= 3 * VICTIMS as u64, "escalation takes divergent rounds");

    for node in &report.nodes {
        if plan.is_poisoned(node.node) {
            assert_eq!(
                node.trust.verdict,
                TrustVerdict::Quarantined,
                "victim {} must end quarantined",
                node.node
            );
            assert_eq!(
                node.lifecycle.state,
                NodeState::Drained,
                "victim {} must be drained out",
                node.node
            );
            // Detection is prompt: quarantine needs 3 divergent rounds
            // (epochs 5/10/15), the drain lands on the next barrier, and an
            // empty node retires immediately — well inside 40 epochs.
            assert!(
                node.lifecycle.updated_epoch <= 40,
                "victim {} drained too late: epoch {}",
                node.node,
                node.lifecycle.updated_epoch
            );
            assert!(node.trust.divergent_rounds >= 3);
        } else {
            assert_eq!(
                node.trust.verdict,
                TrustVerdict::Trusted,
                "honest node {} must stay trusted",
                node.node
            );
            assert_eq!(node.lifecycle.state, NodeState::Active);
            assert_eq!(node.trust.divergent_rounds, 0, "honest node {} diverged", node.node);
        }
    }
}

/// The false-positive floor, pinned: a clean fleet of identical shape runs
/// the same policy for the same horizon and records no trust action at all.
#[test]
fn a_clean_fleet_records_zero_trust_actions() {
    let (fleet, _) = trusted_fleet(0, 4);
    let report = fleet.run(HORIZON).unwrap();

    assert!(report.trust.rounds_scored > 0, "scoring must actually run");
    assert!(report.trust.nodes_scored >= report.trust.rounds_scored * NODES as u64);
    assert_eq!(report.trust.divergent, 0, "no clean node-round may look divergent");
    assert_eq!(report.trust.suspects, 0);
    assert_eq!(report.trust.quarantines, 0);
    assert_eq!(report.trust.excluded, 0);
    for node in &report.nodes {
        assert_eq!(node.trust.verdict, TrustVerdict::Trusted);
        assert_eq!(node.lifecycle.state, NodeState::Active);
        assert!(node.trust.rounds_scored > 0);
    }
}

/// Determinism under eviction: the poisoned *and* clean trusted fleets must
/// produce byte-identical reports across 1, 2, and 8 worker threads and
/// across repeat runs — quarantine drains reshape the live set mid-run, which
/// is exactly where schedule-dependence would creep in.
#[test]
fn trusted_fleet_reports_are_byte_identical_across_thread_counts() {
    let horizon = SimDuration::from_secs(90);
    for victims in [VICTIMS, 0] {
        let run = |threads: usize| {
            format!("{report:#?}", report = trusted_fleet(victims, threads).0.run(horizon).unwrap())
        };
        let one = run(1);
        assert_eq!(one, run(2), "victims {victims}: 1 vs 2 threads");
        assert_eq!(one, run(8), "victims {victims}: 1 vs 8 threads");
        assert_eq!(one, run(1), "victims {victims}: repeat run");
    }
}

/// Construction-time validation: trust without a learning plane is an error,
/// and each degenerate policy field is rejected with a message naming it.
#[test]
fn misconfigured_trust_policies_are_rejected() {
    let recipe = || {
        poisoned_overclock_recipe(PoisonedOverclockConfig {
            nodes: NODES,
            ..PoisonedOverclockConfig::default()
        })
        .recipe
    };

    let orphan = FleetConfig {
        nodes: NODES,
        trust: Some(TrustPolicy::default()),
        learning: None,
        ..FleetConfig::default()
    };
    let err = FleetRuntime::new(recipe(), orphan).unwrap_err();
    assert!(format!("{err}").contains("trust"), "unexpected error: {err}");

    let bad_policies = [
        ("divergence_z", TrustPolicy { divergence_z: 0.0, ..TrustPolicy::default() }),
        ("divergence_z", TrustPolicy { divergence_z: f64::NAN, ..TrustPolicy::default() }),
        ("decay", TrustPolicy { decay: 1.0, ..TrustPolicy::default() }),
        ("decay", TrustPolicy { decay: -0.5, ..TrustPolicy::default() }),
        ("suspect_after", TrustPolicy { suspect_after: 0.0, ..TrustPolicy::default() }),
        (
            "quarantine_after",
            TrustPolicy { suspect_after: 2.0, quarantine_after: 1.0, ..TrustPolicy::default() },
        ),
    ];
    for (field, policy) in bad_policies {
        let config = FleetConfig {
            nodes: NODES,
            learning: Some(plane()),
            trust: Some(policy),
            ..FleetConfig::default()
        };
        let err = FleetRuntime::new(recipe(), config).unwrap_err();
        assert!(
            format!("{err}").contains(field),
            "policy with bad {field} must name the field: {err}"
        );
    }
}
