//! Property-based tests of the ML substrate invariants.

use proptest::prelude::*;

use sol_ml::cost_sensitive::CostSensitiveExample;
use sol_ml::features::DistributionalFeatures;
use sol_ml::online_stats::{RunningStats, SlidingWindow};
use sol_ml::qlearning::{QConfig, QLearner};
use sol_ml::sampling::{seeded_rng, Zipf};
use sol_ml::thompson::ThompsonSampler;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Welford statistics match a direct two-pass computation.
    #[test]
    fn running_stats_match_two_pass(xs in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let mut stats = RunningStats::new();
        for &x in &xs {
            stats.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((stats.mean() - mean).abs() < 1e-6);
        prop_assert!((stats.population_variance() - var).abs() < 1e-4);
        prop_assert!(stats.min() <= stats.mean() + 1e-9 && stats.mean() <= stats.max() + 1e-9);
    }

    /// Sliding-window quantiles are monotone in the quantile level and bounded
    /// by the window's extremes.
    #[test]
    fn window_quantiles_are_monotone(
        xs in prop::collection::vec(-1e3f64..1e3, 1..100),
        qs in prop::collection::vec(0.0f64..=1.0, 2..6),
    ) {
        let mut w = SlidingWindow::new(xs.len());
        for &x in &xs {
            w.push(x);
        }
        let mut sorted_q = qs.clone();
        sorted_q.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for q in sorted_q {
            let v = w.quantile(q);
            prop_assert!(v >= last - 1e-9);
            prop_assert!(v >= w.quantile(0.0) - 1e-9 && v <= w.quantile(1.0) + 1e-9);
            last = v;
        }
    }

    /// Distributional features are permutation-sensitive only in the trend and
    /// last-value slots; the order statistics are permutation invariant.
    #[test]
    fn feature_order_statistics_are_permutation_invariant(
        mut xs in prop::collection::vec(0.0f64..100.0, 2..50),
    ) {
        let original = DistributionalFeatures::extract(&xs);
        xs.reverse();
        let reversed = DistributionalFeatures::extract(&xs);
        // mean, std, min, max, P50, P90, P99 (indices 0..=6) must match.
        for i in 0..=6 {
            prop_assert!((original.values()[i] - reversed.values()[i]).abs() < 1e-9);
        }
    }

    /// Q-values stay bounded by the reward range / (1 - discount).
    #[test]
    fn q_values_stay_bounded(
        rewards in prop::collection::vec(-1.0f64..1.0, 10..300),
        states in 1usize..5,
        actions in 1usize..4,
    ) {
        let mut config = QConfig::new(states, actions);
        config.discount = 0.5;
        let mut q = QLearner::with_seed(config, 3);
        let bound = 1.0 / (1.0 - 0.5) + 1e-9;
        for (i, &r) in rewards.iter().enumerate() {
            let s = i % states;
            let a = q.choose_action(s).action;
            q.update(s, a, r, (i + 1) % states);
            for s in 0..states {
                for a in 0..actions {
                    prop_assert!(q.q_value(s, a).abs() <= bound);
                }
            }
        }
    }

    /// Thompson-sampling posteriors always hold exactly the observed evidence
    /// plus the uniform prior.
    #[test]
    fn thompson_posteriors_track_evidence(outcomes in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut bandit = ThompsonSampler::with_seed(3, 9);
        let mut successes = 0.0;
        let mut failures = 0.0;
        for &o in &outcomes {
            let arm = bandit.select();
            if arm == 1 {
                // Only feed arm 1 so we can track its posterior exactly.
                bandit.record(1, o);
                if o { successes += 1.0 } else { failures += 1.0 }
            }
        }
        let arm = bandit.arm(1);
        prop_assert!((arm.alpha() - (1.0 + successes)).abs() < 1e-9);
        prop_assert!((arm.beta() - (1.0 + failures)).abs() < 1e-9);
    }

    /// Ordinal cost vectors are minimized exactly at the true class.
    #[test]
    fn ordinal_costs_minimized_at_truth(truth in 0usize..9, classes in 10usize..12) {
        let e = CostSensitiveExample::from_ordinal_truth(vec![1.0], truth, classes, 5.0, 1.0);
        let min_idx = e
            .costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        prop_assert_eq!(min_idx, truth);
    }

    /// Zipf sampling only produces valid ranks and favours the head.
    #[test]
    fn zipf_samples_are_in_range(n in 2usize..200, skew in 0.1f64..2.0) {
        let zipf = Zipf::new(n, skew);
        let mut rng = seeded_rng(5);
        let mut head = 0u32;
        for _ in 0..500 {
            let r = zipf.sample(&mut rng);
            prop_assert!(r < n);
            if r < n.div_ceil(2) {
                head += 1;
            }
        }
        prop_assert!(head >= 250, "at least half the draws land in the more popular half");
    }
}
