//! The delta-view codec property: `NodeDelta::diff`/`NodeDelta::apply`
//! must reconstruct any `NodeView` trajectory exactly. The fleet coordinator
//! relies on this — it holds one persistent base view per node and patches it
//! from worker deltas, so a codec bug would silently feed controllers stale
//! or corrupted telemetry. The proptest walks a view through arbitrary churn
//! (stat bumps, telemetry drift, placement attach/detach, lifecycle flips,
//! agent/telemetry population reshapes — the moves crash/join/drain
//! sequences produce) and asserts the delta-reconstructed view equals the
//! full snapshot at every step.

use proptest::prelude::*;
use sol_core::prelude::*;

/// Decodes one churn step from a generated `(kind, a, b, value)` tuple and
/// applies it to the view. The kinds mirror what real runs produce: counter
/// bumps, telemetry drift, workload attach/detach, lifecycle transitions,
/// idle barriers, and (rarely) population reshapes — the one move positional
/// patches cannot express, forcing the full-init fallback.
fn apply_churn(view: &mut NodeView, step: (u8, usize, u64, f64)) {
    let (kind, a, b, value) = step;
    match kind % 10 {
        // Bump an agent's counters (position modulo the current population).
        0 | 1 if !view.agents.is_empty() => {
            let role = a % view.agents.len();
            let stats = &mut view.agents[role].stats;
            stats.model.samples_committed += b;
            stats.actuator.actions_with_model_prediction += b / 2;
        }
        // Drift a telemetry reading (position modulo the current width).
        2 | 3 if !view.telemetry.is_empty() => {
            let slot = a % view.telemetry.len();
            view.telemetry[slot].1 = value;
        }
        // Attach a fresh workload unit.
        4 => {
            view.placement.resident.push(WorkloadUnit {
                id: WorkloadId(b),
                cores: value.abs() + 0.5,
                cpu_bound_fraction: 0.5,
            });
        }
        // Detach the oldest resident unit, if any.
        5 if !view.placement.resident.is_empty() => {
            view.placement.resident.remove(0);
        }
        // Flip the lifecycle state.
        6 => {
            const STATES: [NodeState; 5] = [
                NodeState::Joining,
                NodeState::Active,
                NodeState::Draining,
                NodeState::Drained,
                NodeState::Crashed,
            ];
            view.state = STATES[a % STATES.len()];
        }
        // Reshape the agent population (what a recipe swap would look like).
        7 => {
            view.agents = (0..1 + a % 5)
                .map(|role| AgentTelemetry {
                    name: format!("agent-{role}"),
                    stats: AgentStats::default(),
                })
                .collect();
        }
        // Reshape the telemetry width (also a full-init fallback path).
        8 => {
            view.telemetry = (0..a % 5).map(|slot| (format!("reading-{slot}"), 0.0)).collect();
        }
        // A quiet barrier: nothing changed.
        _ => {}
    }
}

fn seed_view() -> NodeView {
    NodeView {
        node: 3,
        agents: (0..3)
            .map(|role| AgentTelemetry {
                name: format!("agent-{role}"),
                stats: AgentStats::default(),
            })
            .collect(),
        telemetry: (0..2).map(|slot| (format!("reading-{slot}"), 0.0)).collect(),
        placement: NodePlacement { capacity: 8.0, resident: Vec::new() },
        state: NodeState::Active,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `apply(diff(prev, next), prev) == next` along any churn trajectory:
    /// the delta-maintained mirror never drifts from the full snapshot, and
    /// a no-op step produces a recognizably empty delta (that emptiness is
    /// what makes quiet-node barriers nearly free).
    #[test]
    fn delta_reconstruction_matches_full_snapshots(
        steps in prop::collection::vec((0u8..10, 0usize..64, 1u64..100, -100.0f64..100.0), 1..40)
    ) {
        let mut truth = seed_view();
        let mut mirror = truth.clone();
        for &step in &steps {
            let prev = truth.clone();
            apply_churn(&mut truth, step);
            let delta = NodeDelta::diff(&prev, &truth);
            delta.apply(&mut mirror);
            prop_assert_eq!(&mirror, &truth);
            if prev == truth {
                prop_assert!(delta.is_empty());
            }
        }
    }

    /// Deltas are minimal on unchanged layouts: diffing two views that only
    /// moved a single agent's counters patches exactly that position and
    /// nothing else.
    #[test]
    fn single_stat_change_ships_a_single_patch(role in 0usize..3, amount in 1u64..1_000) {
        let prev = seed_view();
        let mut next = prev.clone();
        next.agents[role].stats.model.model_predictions += amount;
        let delta = NodeDelta::diff(&prev, &next);
        prop_assert!(delta.init.is_none());
        prop_assert!(delta.telemetry.is_empty());
        prop_assert!(delta.placement.is_none());
        prop_assert!(delta.state.is_none());
        prop_assert_eq!(delta.agents.len(), 1);
        prop_assert_eq!(delta.agents[0].0, role);
    }
}
