//! Determinism regression tests: the discrete-event runtime must be exactly
//! reproducible. Two `SimRuntime` runs with identical config and seed have to
//! produce byte-identical `SimReport` stats (compared via their full `Debug`
//! rendering, so any new non-deterministic field shows up as a diff) and
//! identical environment metrics.

use sol_agents::prelude::*;
use sol_core::prelude::*;
use sol_node_sim::prelude::*;

/// Renders a value's full Debug output as bytes for exact comparison.
fn debug_bytes<T: std::fmt::Debug>(value: &T) -> Vec<u8> {
    format!("{value:#?}").into_bytes()
}

#[test]
fn smart_overclock_runs_are_byte_identical() {
    let run = || {
        let node = Shared::new(CpuNode::new(
            OverclockWorkloadKind::Synthetic.build(8),
            CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
        ));
        let (model, actuator) = smart_overclock(&node, OverclockConfig::default());
        let runtime = SimRuntime::new(model, actuator, overclock_schedule(), node.clone());
        let report = runtime.run_for(SimDuration::from_secs(120)).unwrap();
        let stats = debug_bytes(&report.stats);
        let metrics =
            node.with(|n| (debug_bytes(&n.energy_joules()), debug_bytes(&n.performance().score)));
        (stats, metrics, report.ended_at)
    };
    assert_eq!(run(), run());
}

#[test]
fn smart_harvest_runs_are_byte_identical() {
    let run = || {
        let node =
            Shared::new(HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default()));
        let (model, actuator) = smart_harvest(&node, HarvestConfig::default());
        let runtime = SimRuntime::new(model, actuator, harvest_schedule(), node.clone());
        let report = runtime.run_for(SimDuration::from_secs(60)).unwrap();
        let stats = debug_bytes(&report.stats);
        let metrics = node.with(|n| {
            (debug_bytes(&n.harvested_core_seconds()), debug_bytes(&n.mean_latency_ms()))
        });
        (stats, metrics, report.ended_at)
    };
    assert_eq!(run(), run());
}

#[test]
fn smart_memory_runs_are_byte_identical() {
    let run = || {
        let node = Shared::new(MemoryNode::new(
            MemoryWorkloadKind::Sql,
            MemoryNodeConfig { batches: 64, accesses_per_sec: 10_000.0, ..Default::default() },
        ));
        let (model, actuator) = smart_memory(&node, MemoryConfig::default());
        let runtime = SimRuntime::new(model, actuator, memory_schedule(), node.clone());
        let report = runtime.run_for(SimDuration::from_secs(120)).unwrap();
        let stats = debug_bytes(&report.stats);
        let metrics = node.with(|n| {
            (debug_bytes(&n.local_batch_count()), debug_bytes(&n.recent_remote_fraction()))
        });
        (stats, metrics, report.ended_at)
    };
    assert_eq!(run(), run());
}
