//! Determinism regression tests: the discrete-event runtimes must be exactly
//! reproducible. Two runs with identical config and seed have to produce
//! byte-identical stats (compared via their full `Debug` rendering, so any
//! new non-deterministic field shows up as a diff) and identical environment
//! metrics. A second suite asserts runtime *equivalence*: a single-agent
//! `NodeRuntime` must reproduce the `SimRuntime` path byte for byte for all
//! three agents, and multi-agent co-located runs must be deterministic too.

use sol_agents::prelude::*;
use sol_core::prelude::*;
use sol_node_sim::prelude::*;

/// Renders a value's full Debug output as bytes for exact comparison.
fn debug_bytes<T: std::fmt::Debug>(value: &T) -> Vec<u8> {
    format!("{value:#?}").into_bytes()
}

#[test]
fn smart_overclock_runs_are_byte_identical() {
    let run = || {
        let node = Shared::new(CpuNode::new(
            OverclockWorkloadKind::Synthetic.build(8),
            CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
        ));
        let (model, actuator) = smart_overclock(&node, OverclockConfig::default());
        let runtime = SimRuntime::new(model, actuator, overclock_schedule(), node.clone());
        let report = runtime.run_for(SimDuration::from_secs(120)).unwrap();
        let stats = debug_bytes(&report.stats);
        let metrics =
            node.with(|n| (debug_bytes(&n.energy_joules()), debug_bytes(&n.performance().score)));
        (stats, metrics, report.ended_at)
    };
    assert_eq!(run(), run());
}

#[test]
fn smart_harvest_runs_are_byte_identical() {
    let run = || {
        let node =
            Shared::new(HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default()));
        let (model, actuator) = smart_harvest(&node, HarvestConfig::default());
        let runtime = SimRuntime::new(model, actuator, harvest_schedule(), node.clone());
        let report = runtime.run_for(SimDuration::from_secs(60)).unwrap();
        let stats = debug_bytes(&report.stats);
        let metrics = node.with(|n| {
            (debug_bytes(&n.harvested_core_seconds()), debug_bytes(&n.mean_latency_ms()))
        });
        (stats, metrics, report.ended_at)
    };
    assert_eq!(run(), run());
}

#[test]
fn smart_memory_runs_are_byte_identical() {
    let run = || {
        let node = Shared::new(MemoryNode::new(
            MemoryWorkloadKind::Sql,
            MemoryNodeConfig { batches: 64, accesses_per_sec: 10_000.0, ..Default::default() },
        ));
        let (model, actuator) = smart_memory(&node, MemoryConfig::default());
        let runtime = SimRuntime::new(model, actuator, memory_schedule(), node.clone());
        let report = runtime.run_for(SimDuration::from_secs(120)).unwrap();
        let stats = debug_bytes(&report.stats);
        let metrics = node.with(|n| {
            (debug_bytes(&n.local_batch_count()), debug_bytes(&n.recent_remote_fraction()))
        });
        (stats, metrics, report.ended_at)
    };
    assert_eq!(run(), run());
}

// ---------------------------------------------------------------------------
// Runtime equivalence: a single-agent NodeRuntime must reproduce SimRuntime
// byte for byte — same agent, same environment, same horizon, same seed.
// ---------------------------------------------------------------------------

#[test]
fn node_runtime_matches_sim_runtime_for_smart_overclock() {
    let make_node = || {
        Shared::new(CpuNode::new(
            OverclockWorkloadKind::Synthetic.build(8),
            CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
        ))
    };
    let horizon = SimDuration::from_secs(120);

    let sim_node = make_node();
    let (model, actuator) = smart_overclock(&sim_node, OverclockConfig::default());
    let sim = SimRuntime::new(model, actuator, overclock_schedule(), sim_node.clone())
        .run_for(horizon)
        .unwrap();

    let node_node = make_node();
    let (model, actuator) = smart_overclock(&node_node, OverclockConfig::default());
    let mut rt = NodeRuntime::new(node_node.clone());
    let id = rt.register_agent("smart-overclock", model, actuator, overclock_schedule());
    let node = rt.run_for(horizon).unwrap();

    assert_eq!(debug_bytes(&sim.stats), debug_bytes(&node.agent_report(id).unwrap().stats));
    assert_eq!(sim.ended_at, node.ended_at);
    let metrics =
        |n: &Shared<CpuNode>| n.with(|n| (debug_bytes(&n.energy_joules()), n.frequency_changes()));
    assert_eq!(metrics(&sim_node), metrics(&node_node));
}

#[test]
fn node_runtime_matches_sim_runtime_for_smart_harvest() {
    let make_node =
        || Shared::new(HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default()));
    let horizon = SimDuration::from_secs(60);

    let sim_node = make_node();
    let (model, actuator) = smart_harvest(&sim_node, HarvestConfig::default());
    let sim = SimRuntime::new(model, actuator, harvest_schedule(), sim_node.clone())
        .run_for(horizon)
        .unwrap();

    let node_node = make_node();
    let (model, actuator) = smart_harvest(&node_node, HarvestConfig::default());
    let mut rt = NodeRuntime::new(node_node.clone());
    let id = rt.register_agent("smart-harvest", model, actuator, harvest_schedule());
    let node = rt.run_for(horizon).unwrap();

    assert_eq!(debug_bytes(&sim.stats), debug_bytes(&node.agent_report(id).unwrap().stats));
    assert_eq!(sim.ended_at, node.ended_at);
    let metrics = |n: &Shared<HarvestNode>| {
        n.with(|n| (debug_bytes(&n.harvested_core_seconds()), debug_bytes(&n.mean_latency_ms())))
    };
    assert_eq!(metrics(&sim_node), metrics(&node_node));
}

#[test]
fn node_runtime_matches_sim_runtime_for_smart_memory() {
    let make_node = || {
        Shared::new(MemoryNode::new(
            MemoryWorkloadKind::Sql,
            MemoryNodeConfig { batches: 64, accesses_per_sec: 10_000.0, ..Default::default() },
        ))
    };
    let horizon = SimDuration::from_secs(120);

    let sim_node = make_node();
    let (model, actuator) = smart_memory(&sim_node, MemoryConfig::default());
    let sim = SimRuntime::new(model, actuator, memory_schedule(), sim_node.clone())
        .run_for(horizon)
        .unwrap();

    let node_node = make_node();
    let (model, actuator) = smart_memory(&node_node, MemoryConfig::default());
    let mut rt = NodeRuntime::new(node_node.clone());
    let id = rt.register_agent("smart-memory", model, actuator, memory_schedule());
    let node = rt.run_for(horizon).unwrap();

    assert_eq!(debug_bytes(&sim.stats), debug_bytes(&node.agent_report(id).unwrap().stats));
    assert_eq!(sim.ended_at, node.ended_at);
    let metrics = |n: &Shared<MemoryNode>| {
        n.with(|n| (debug_bytes(&n.local_batch_count()), debug_bytes(&n.recent_remote_fraction())))
    };
    assert_eq!(metrics(&sim_node), metrics(&node_node));
}

// ---------------------------------------------------------------------------
// Multi-agent determinism: same seed ⇒ byte-identical per-agent stats and
// environment metrics, including with a targeted intervention in flight.
// ---------------------------------------------------------------------------

/// The `ScenarioBuilder` front door must be a pure re-packaging of
/// `NodeRuntime::new` + `register_agent`: a builder-assembled two-agent node
/// (what `colocated_agents` produces) has to be byte-identical to the same
/// node wired by hand through the legacy registration API.
#[test]
fn builder_assembly_is_byte_identical_to_legacy_wiring() {
    let horizon = SimDuration::from_secs(60);

    // Legacy wiring: construct the substrates, environment, and runtime by
    // hand, registering each agent through the untyped API.
    let legacy = {
        let cpu = Shared::new(CpuNode::new(
            OverclockWorkloadKind::ObjectStore.build(8),
            CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
        ));
        let harvest_node =
            Shared::new(HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default()));
        let node = MultiNode::builder()
            .cpu(cpu.clone())
            .harvest(harvest_node.clone())
            .coupling(Coupling::FrequencyToDemand)
            .build()
            .unwrap();
        let mut rt = NodeRuntime::new(node);
        let (oc_model, oc_actuator) = smart_overclock(&cpu, OverclockConfig::default());
        let oc = rt.register_agent("smart-overclock", oc_model, oc_actuator, overclock_schedule());
        let (hv_model, hv_actuator) = smart_harvest(&harvest_node, HarvestConfig::default());
        let hv = rt.register_agent("smart-harvest", hv_model, hv_actuator, harvest_schedule());
        let report = rt.run_for(horizon).unwrap();
        (
            debug_bytes(&report.agent_report(oc).unwrap().stats),
            debug_bytes(&report.agent_report(hv).unwrap().stats),
            cpu.with(|n| debug_bytes(&n.energy_joules())),
            harvest_node.with(|n| debug_bytes(&n.harvested_core_seconds())),
            report.ended_at,
        )
    };

    // Builder wiring: the `colocated_agents` preset over `ScenarioBuilder`.
    let built = {
        let agents = colocated_agents(ColocationConfig::default());
        let (oc, hv) = (agents.overclock, agents.harvest);
        let report = agents.runtime.run_for(horizon).unwrap();
        (
            debug_bytes(report.agent(oc).stats()),
            debug_bytes(report.agent(hv).stats()),
            agents.cpu.with(|n| debug_bytes(&n.energy_joules())),
            agents.harvest_node.with(|n| debug_bytes(&n.harvested_core_seconds())),
            report.ended_at,
        )
    };

    assert_eq!(legacy, built);
}

#[test]
fn three_agent_runs_are_byte_identical_per_agent() {
    let run = || {
        let agents = three_agents(ThreeAgentConfig::default());
        let (oc, hv, mem) = (agents.overclock, agents.harvest, agents.memory);
        let report = agents.runtime.run_for(SimDuration::from_secs(45)).unwrap();
        (
            debug_bytes(report.agent(oc).stats()),
            debug_bytes(report.agent(hv).stats()),
            debug_bytes(report.agent(mem).stats()),
            agents.cpu.with(|n| debug_bytes(&n.energy_joules())),
            agents.memory_node.with(|n| debug_bytes(&n.recent_remote_fraction())),
            report.ended_at,
        )
    };
    assert_eq!(run(), run());
}

// ---------------------------------------------------------------------------
// Fleet determinism: a FleetReport is a pure function of (recipe, config,
// horizon) — the worker-thread count must never leak into the results.
// ---------------------------------------------------------------------------

/// The acceptance bar for the fleet runtime: the same recipe + seed produces
/// a byte-identical `FleetReport` (full `Debug` rendering, so every stat,
/// percentile, and metric is covered) for 1, 2, and 8 worker threads.
#[test]
fn fleet_report_is_byte_identical_across_worker_thread_counts() {
    let run = |threads: usize| {
        let preset = three_agents_recipe(ThreeAgentConfig::default());
        let config = FleetConfig { nodes: 5, threads, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(preset.recipe, config).unwrap();
        debug_bytes(&fleet.run(SimDuration::from_secs(20)).unwrap())
    };
    let single = run(1);
    assert_eq!(single, run(2), "2-thread fleet diverged from single-threaded");
    assert_eq!(single, run(8), "8-thread fleet diverged from single-threaded");
}

/// Re-running the same fleet twice (same thread count) is also byte-stable:
/// nothing about scheduling, channel timing, or map ordering may leak in.
#[test]
fn identical_fleet_runs_are_byte_identical() {
    let run = || {
        let preset = colocated_recipe(ColocationConfig::default());
        let config = FleetConfig { nodes: 6, threads: 3, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(preset.recipe, config).unwrap();
        debug_bytes(&fleet.run(SimDuration::from_secs(20)).unwrap())
    };
    assert_eq!(run(), run());
}

/// `run(horizon)` is sugar for `run_with(&mut NullController, horizon)`:
/// the two paths must produce byte-identical `FleetReport`s on a real
/// three-agent fleet (this is the PR 4 behaviour-preservation bar for the
/// programmable-barrier redesign).
#[test]
fn run_is_byte_identical_to_run_with_null_controller() {
    let preset = three_agents_recipe(ThreeAgentConfig::default());
    let config = FleetConfig { nodes: 4, threads: 2, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe, config).unwrap();
    let horizon = SimDuration::from_secs(15);
    let plain = debug_bytes(&fleet.run(horizon).unwrap());
    let null = debug_bytes(&fleet.run_with(&mut NullController, horizon).unwrap());
    assert_eq!(plain, null);
}

/// The placement acceptance bar: a `GreedyPacker` run with non-trivial
/// migration churn is byte-identical across 1, 2, and 8 worker threads and
/// across repeat runs — the controller runs on the coordinator against an
/// index-sorted view, so the thread layout can never leak into placement
/// decisions or node trajectories.
#[test]
fn greedy_packer_fleet_reports_are_byte_identical_across_worker_thread_counts() {
    let horizon = SimDuration::from_secs(20);
    let trace = || {
        ArrivalTrace::generate(
            0xBEEF,
            &ArrivalTraceConfig {
                workloads: 20,
                span: horizon,
                min_cores: 0.5,
                max_cores: 2.5,
                min_lifetime: SimDuration::from_secs(4),
                max_lifetime: SimDuration::from_secs(9),
            },
        )
    };
    let run = |threads: usize| {
        let preset = colocated_recipe(ColocationConfig {
            placeable_cores: 6.0,
            ..ColocationConfig::default()
        });
        let config = FleetConfig { nodes: 5, threads, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(preset.recipe, config).unwrap();
        let mut packer = GreedyPacker::new(trace());
        let report = fleet.run_with(&mut packer, horizon).unwrap();
        assert!(report.placement.migrated > 0, "the pinned run must migrate: {:?}", {
            &report.placement
        });
        assert!(report.placement.admitted > 0);
        debug_bytes(&report)
    };
    let single = run(1);
    assert_eq!(single, run(2), "2-thread placement run diverged from single-threaded");
    assert_eq!(single, run(8), "8-thread placement run diverged from single-threaded");
    assert_eq!(single, run(1), "repeat placement runs must be byte-stable");
}

/// The lifecycle acceptance bar: a fault-injected run with at least one
/// crash, one join, one drain, and one displaced re-placement is
/// byte-identical across 1, 2, and 8 worker threads and across repeat runs.
/// Lifecycle events are applied on the coordinator at epoch boundaries, so
/// neither the thread layout nor scheduling may leak into which node
/// crashes, where its evicted units land, or what the joined node learns.
#[test]
fn fault_injected_fleet_reports_are_byte_identical_across_worker_thread_counts() {
    let horizon = SimDuration::from_secs(20);
    let faults = || {
        FaultPlan::generate(
            0x0,
            5,
            &FaultPlanConfig { crashes: 1, joins: 1, drains: 1, span: horizon },
        )
    };
    let trace = || {
        ArrivalTrace::generate(
            0xBEEF,
            &ArrivalTraceConfig {
                workloads: 24,
                span: horizon,
                min_cores: 0.5,
                max_cores: 2.5,
                min_lifetime: SimDuration::from_secs(6),
                max_lifetime: SimDuration::from_secs(14),
            },
        )
    };
    let run = |threads: usize| {
        let preset = colocated_recipe(ColocationConfig {
            placeable_cores: 6.0,
            ..ColocationConfig::default()
        });
        let config = FleetConfig { nodes: 5, threads, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(preset.recipe, config).unwrap();
        let mut packer = GreedyPacker::new(trace());
        let report = fleet.run_with_faults(&mut packer, faults(), horizon).unwrap();
        // The pinned scenario must actually exercise every lifecycle path.
        let p = &report.placement;
        assert!(p.displaced > 0, "the crash must displace work: {p:?}");
        assert!(p.replaced > 0, "displaced work must be re-placed: {p:?}");
        assert_eq!(report.nodes.len(), 6, "the join must add a node");
        use sol_core::prelude::NodeState;
        let state_of =
            |s: NodeState| report.nodes.iter().filter(|n| n.lifecycle.state == s).count();
        assert_eq!(state_of(NodeState::Crashed), 1);
        assert_eq!(state_of(NodeState::Drained), 1);
        debug_bytes(&report)
    };
    let single = run(1);
    assert_eq!(single, run(2), "2-thread chaos run diverged from single-threaded");
    assert_eq!(single, run(8), "8-thread chaos run diverged from single-threaded");
    assert_eq!(single, run(1), "repeat chaos runs must be byte-stable");
}

/// A zero-event `FaultPlan` must be invisible: `run_with_faults` with
/// `FaultPlan::empty()` is byte-identical to `run_with` on the same
/// controller.
#[test]
fn empty_fault_plan_is_byte_identical_to_run_with() {
    let preset = three_agents_recipe(ThreeAgentConfig::default());
    let config = FleetConfig { nodes: 4, threads: 2, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe, config).unwrap();
    let horizon = SimDuration::from_secs(15);
    let plain = debug_bytes(&fleet.run_with(&mut NullController, horizon).unwrap());
    let faultless = debug_bytes(
        &fleet.run_with_faults(&mut NullController, FaultPlan::empty(), horizon).unwrap(),
    );
    assert_eq!(plain, faultless);
}

#[test]
fn colocated_runs_are_byte_identical_per_agent() {
    let run = || {
        let agents = colocated_agents(ColocationConfig::default());
        let (oc, hv) = (agents.overclock, agents.harvest);
        let mut runtime = agents.runtime;
        runtime.delay_model_at(oc, Timestamp::from_secs(20), SimDuration::from_secs(10));
        let report = runtime.run_for(SimDuration::from_secs(60)).unwrap();
        let oc_stats = debug_bytes(&report.agent(oc).stats());
        let hv_stats = debug_bytes(&report.agent(hv).stats());
        let cpu_metrics = agents.cpu.with(|n| debug_bytes(&n.energy_joules()));
        let hv_metrics = agents.harvest_node.with(|n| {
            (debug_bytes(&n.harvested_core_seconds()), debug_bytes(&n.mean_latency_ms()))
        });
        (oc_stats, hv_stats, cpu_metrics, hv_metrics, report.ended_at)
    };
    assert_eq!(run(), run());
}
