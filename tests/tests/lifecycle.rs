//! Chaos tests for the fleet lifecycle layer: crash, join, and drain as
//! first-class fleet events.
//!
//! * The `NodeRegistry` never admits an illegal transition, for arbitrary
//!   operation sequences (a proptest against an independent model of the
//!   legal edge set).
//! * Fleet aggregation under crashes is exactly the fold of the *surviving*
//!   per-node `run_node` reports: survivors stay byte-identical to their
//!   inline runs, crashed nodes are excluded from role aggregates and
//!   metric summaries but keep their full report.
//! * A drained node ends with zero residents (the packer evacuates it), and
//!   lifecycle programming errors — draining a node twice, crashing a node
//!   that already retired — abort the run loudly.
//! * The acceptance scenario: an 8-node `GreedyPacker` fleet survives a
//!   mid-run crash with every displaced unit re-placed or counted failed,
//!   byte-identical across 1, 2, and 8 worker threads.

use proptest::prelude::*;

use sol_agents::prelude::*;
use sol_core::error::{DataError, RuntimeError};
use sol_core::prelude::*;

/// Renders a value's full Debug output as bytes for exact comparison.
fn debug_bytes<T: std::fmt::Debug>(value: &T) -> Vec<u8> {
    format!("{value:#?}").into_bytes()
}

/// A deterministic toy model parameterized by its sampled value.
struct ToyModel {
    value: f64,
}

impl Model for ToyModel {
    type Data = f64;
    type Pred = f64;

    fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
        Ok(self.value)
    }
    fn validate_data(&self, d: &f64) -> bool {
        d.is_finite()
    }
    fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
    fn update_model(&mut self, _now: Timestamp) {}
    fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
        Some(Prediction::model(self.value, now, now + SimDuration::from_secs(1)))
    }
    fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
        Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
    }
    fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
        ModelAssessment::Healthy
    }
}

#[derive(Default)]
struct ToyActuator {
    actions: u64,
}

impl Actuator for ToyActuator {
    type Pred = f64;
    fn take_action(&mut self, _now: Timestamp, _pred: Option<&Prediction<f64>>) {
        self.actions += 1;
    }
    fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
        ActuatorAssessment::Acceptable
    }
    fn mitigate(&mut self, _now: Timestamp) {}
    fn clean_up(&mut self, _now: Timestamp) {}
}

fn toy_schedule(collect_ms: u64) -> Schedule {
    Schedule::builder()
        .data_per_epoch(2)
        .data_collect_interval(SimDuration::from_millis(collect_ms))
        .max_epoch_time(SimDuration::from_millis(collect_ms * 8))
        .assess_model_every_epochs(1)
        .max_actuation_delay(SimDuration::from_millis(collect_ms * 8))
        .assess_actuator_interval(SimDuration::from_millis(collect_ms * 2))
        .build()
        .unwrap()
}

/// A two-agent toy recipe whose per-node cadence is seed-derived, so fleets
/// are heterogeneous and crash truncation is visible in the stats.
fn toy_recipe() -> ScenarioRecipe<NullEnvironment> {
    ScenarioRecipe::new(|seed: &NodeSeed| {
        let mut builder = NodeRuntime::builder(NullEnvironment);
        let collect_ms = 40 + seed.stream(0) % 120;
        builder.agent("alpha", ToyModel { value: 1.0 }, ToyActuator::default(), {
            toy_schedule(collect_ms)
        });
        builder.agent("beta", ToyModel { value: 2.0 }, ToyActuator::default(), {
            toy_schedule(collect_ms * 2)
        });
        builder.build()
    })
    .with_metrics(|report| vec![("ended_secs".into(), report.ended_at.as_secs_f64())])
}

/// A placeable two-agent co-location recipe (6 of 8 cores placeable).
fn placeable_recipe() -> sol_agents::colocation::ColocatedRecipe {
    colocated_recipe(ColocationConfig { placeable_cores: 6.0, ..ColocationConfig::default() })
}

/// A churny arrival trace sized for short test horizons.
fn test_trace(arrivals: usize, horizon: SimDuration) -> ArrivalTrace {
    ArrivalTrace::generate(
        0xC0FFEE,
        &ArrivalTraceConfig {
            workloads: arrivals,
            span: horizon,
            min_cores: 0.5,
            max_cores: 2.5,
            min_lifetime: SimDuration::from_secs(3),
            max_lifetime: SimDuration::from_secs(8),
        },
    )
}

/// A controller that emits a fixed batch of lifecycle events at one epoch
/// and otherwise stays silent.
struct EventAt {
    epoch: u64,
    events: Vec<LifecycleEvent>,
}

impl FleetController for EventAt {
    fn plan(&mut self, view: &FleetView) -> PlacementPlan {
        let mut plan = PlacementPlan::new();
        if view.epoch == self.epoch {
            for &event in &self.events {
                plan.lifecycle(event);
            }
        }
        plan
    }
}

// ---------------------------------------------------------------------------
// Satellite (a): the registry never admits an illegal transition.
// ---------------------------------------------------------------------------

/// The legal edge set, written out independently of
/// `NodeState::can_transition` so the proptest checks the implementation
/// against a second opinion rather than against itself.
fn legal(from: NodeState, to: NodeState) -> bool {
    use NodeState::{Active, Crashed, Drained, Draining, Joining};
    matches!(
        (from, to),
        (Joining, Active)
            | (Joining, Crashed)
            | (Active, Draining)
            | (Active, Crashed)
            | (Draining, Drained)
            | (Draining, Crashed)
    )
}

const ALL_STATES: [NodeState; 5] = [
    NodeState::Joining,
    NodeState::Active,
    NodeState::Draining,
    NodeState::Drained,
    NodeState::Crashed,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary operation sequences (joins, in-range and out-of-range
    /// transitions to arbitrary states), the registry accepts exactly the
    /// legal edge set, rejects everything else untouched, and keeps record
    /// versions strictly increasing per accepted change.
    #[test]
    fn registry_never_admits_illegal_transitions(
        nodes in 1usize..6,
        ops in prop::collection::vec((0usize..10, 0usize..5), 0..48),
    ) {
        let mut registry = NodeRegistry::new(nodes);
        let mut model: Vec<NodeState> = vec![NodeState::Active; nodes];

        for (step, &(slot, state)) in ops.iter().enumerate() {
            let epoch = step as u64;
            let to = ALL_STATES[state];
            if slot == 9 {
                // Join op: always legal, always at the next free index.
                let index = registry.join(epoch);
                prop_assert_eq!(index, model.len());
                model.push(NodeState::Joining);
                prop_assert_eq!(registry.state(index), Some(NodeState::Joining));
                continue;
            }
            // Sometimes past the end: must be UnknownNode, never a panic.
            let node = slot % (model.len() + 2);
            let before = registry.records().to_vec();
            let outcome = registry.transition(node, to, epoch);
            if node >= model.len() {
                prop_assert!(matches!(outcome, Err(LifecycleError::UnknownNode(n)) if n == node));
                prop_assert_eq!(registry.records(), before.as_slice());
            } else if legal(model[node], to) {
                prop_assert!(outcome.is_ok(), "legal edge {} -> {} rejected", model[node], to);
                model[node] = to;
                let record = registry.records()[node];
                prop_assert_eq!(record.state, to);
                prop_assert_eq!(record.version, before[node].version + 1);
                prop_assert_eq!(record.updated_epoch, epoch);
            } else {
                prop_assert!(
                    matches!(
                        outcome,
                        Err(LifecycleError::IllegalTransition { node: n, from, to: t })
                            if n == node && from == model[node] && t == to
                    ),
                    "illegal edge {} -> {} admitted", model[node], to
                );
                // Rejected transitions leave the whole registry untouched.
                prop_assert_eq!(registry.records(), before.as_slice());
            }
        }

        // The model and the registry agree on every final state.
        prop_assert_eq!(registry.len(), model.len());
        for (node, &state) in model.iter().enumerate() {
            prop_assert_eq!(registry.state(node), Some(state));
        }
        let live = model.iter().filter(|s| s.is_live()).count();
        prop_assert_eq!(registry.live(), live);
    }

    // -----------------------------------------------------------------------
    // Satellite (b): aggregation under crashes folds exactly the survivors.
    // -----------------------------------------------------------------------

    /// Crashing a subset of nodes mid-run leaves every survivor's report
    /// byte-identical to its inline `run_node`, marks the crashed nodes'
    /// final lifecycle state, and folds role aggregates and metric summaries
    /// over the survivors only.
    #[test]
    fn crash_aggregation_is_the_fold_of_surviving_run_node_reports(
        nodes in 2usize..8,
        threads in 1usize..5,
        crash_picks in prop::collection::vec(0usize..8, 1..3),
        crash_epoch in 0u64..3,
        fleet_seed in 0u64..500,
    ) {
        let mut crashes: Vec<usize> = crash_picks.iter().map(|&pick| pick % nodes).collect();
        crashes.sort_unstable();
        crashes.dedup();
        crashes.truncate(nodes - 1); // keep at least one survivor

        let config = FleetConfig {
            nodes,
            threads,
            epoch: SimDuration::from_millis(500),
            seed: fleet_seed,
            ..FleetConfig::default()
        };
        let horizon = SimDuration::from_secs(2);
        let fleet = FleetRuntime::new(toy_recipe(), config).unwrap();
        let mut chaos = EventAt {
            epoch: crash_epoch,
            events: crashes.iter().map(|&node| LifecycleEvent::Crash { node }).collect(),
        };
        let report = fleet.run_with(&mut chaos, horizon).unwrap();

        prop_assert_eq!(report.nodes.len(), nodes);
        for index in 0..nodes {
            let node = &report.nodes[index];
            if crashes.contains(&index) {
                prop_assert_eq!(node.lifecycle.state, NodeState::Crashed);
                prop_assert_eq!(node.lifecycle.updated_epoch, crash_epoch);
                // The crashed node's trajectory was truncated at the crash
                // boundary, on its own clock.
                prop_assert_eq!(
                    node.ended_at,
                    Timestamp::ZERO + SimDuration::from_millis(500 * (crash_epoch + 1))
                );
            } else {
                let solo = fleet.run_node(index, horizon).unwrap();
                prop_assert_eq!(debug_bytes(node), debug_bytes(&solo));
            }
        }

        // Role aggregates and metric summaries fold the survivors only.
        let survivors: Vec<&FleetNodeReport> = report
            .nodes
            .iter()
            .filter(|n| n.lifecycle.state != NodeState::Crashed)
            .collect();
        for (role_idx, role) in report.roles.iter().enumerate() {
            let mut folded = AgentStats::default();
            for node in &survivors {
                folded.accumulate(&node.agents[role_idx].stats);
            }
            prop_assert_eq!(debug_bytes(&role.totals), debug_bytes(&folded));
            prop_assert_eq!(role.nodes, survivors.len());
        }
        let summary = report.metric("ended_secs").unwrap();
        let folded: f64 = survivors.iter().map(|n| n.metrics[0].1).sum();
        prop_assert_eq!(summary.nodes, survivors.len());
        prop_assert!((summary.total - folded).abs() < 1e-9);
    }

    // -----------------------------------------------------------------------
    // Satellite (c): a drained node ends empty, for arbitrary churn seeds.
    // -----------------------------------------------------------------------

    /// Draining a node of a packed fleet always ends with that node holding
    /// zero residents: the packer evacuates it, admissions are rejected from
    /// the drain boundary on, and the node retires as `Drained` once a
    /// barrier snapshot shows it empty.
    #[test]
    fn drained_nodes_end_with_zero_residents(trace_seed in 0u64..64) {
        let horizon = SimDuration::from_secs(16);
        let trace = ArrivalTrace::generate(
            trace_seed,
            &ArrivalTraceConfig {
                workloads: 12,
                span: horizon,
                min_cores: 0.5,
                max_cores: 2.0,
                min_lifetime: SimDuration::from_secs(6),
                max_lifetime: SimDuration::from_secs(14),
            },
        );
        let config = FleetConfig { nodes: 4, threads: 2, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(placeable_recipe().recipe, config).unwrap();
        let mut packer = GreedyPacker::new(trace);
        let faults = FaultPlan::from_events(vec![FaultEvent {
            at: Timestamp::from_secs(8),
            event: LifecycleEvent::Drain { node: 1 },
        }]);
        let report = fleet.run_with_faults(&mut packer, faults, horizon).unwrap();

        let drained = &report.nodes[1];
        prop_assert_eq!(drained.lifecycle.state, NodeState::Drained);
        prop_assert!(
            drained.workloads.is_empty(),
            "a drained node must end empty, found {:?}", drained.workloads
        );
        // Evacuation re-places, it never destroys: everything admitted
        // either departed on schedule or is still resident somewhere.
        let resident: u64 = report.nodes.iter().map(|n| n.workloads.len() as u64).sum();
        prop_assert_eq!(resident, report.placement.admitted - report.placement.departed);
    }
}

// ---------------------------------------------------------------------------
// Lifecycle programming errors are loud, not silent repairs.
// ---------------------------------------------------------------------------

#[test]
fn draining_a_node_twice_is_a_loud_error() {
    let config = FleetConfig { nodes: 2, threads: 1, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(toy_recipe(), config).unwrap();
    let mut chaos = EventAt {
        epoch: 0,
        events: vec![LifecycleEvent::Drain { node: 0 }, LifecycleEvent::Drain { node: 0 }],
    };
    let err = fleet.run_with(&mut chaos, SimDuration::from_secs(3)).unwrap_err();
    assert!(
        matches!(&err, RuntimeError::InvalidConfig(msg) if msg.contains("draining")),
        "expected an illegal-transition error, got {err:?}"
    );
}

#[test]
fn crashing_a_retired_node_is_a_loud_error() {
    // Node 0 drains at epoch 0 and (being empty on NullEnvironment) retires
    // as Drained at epoch 1; crashing it at epoch 2 is illegal.
    struct DrainThenCrash;
    impl FleetController for DrainThenCrash {
        fn plan(&mut self, view: &FleetView) -> PlacementPlan {
            let mut plan = PlacementPlan::new();
            match view.epoch {
                0 => plan.drain(0),
                2 => plan.crash(0),
                _ => {}
            }
            plan
        }
    }
    let config = FleetConfig { nodes: 2, threads: 2, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(toy_recipe(), config).unwrap();
    let err = fleet.run_with(&mut DrainThenCrash, SimDuration::from_secs(5)).unwrap_err();
    assert!(
        matches!(&err, RuntimeError::InvalidConfig(msg) if msg.contains("drained")),
        "expected an illegal-transition error, got {err:?}"
    );
}

#[test]
fn commands_against_crashed_nodes_fail_counted_not_fatal() {
    // Crash node 0 and, at the next boundary, try to admit to it: the
    // admission must be counted failed, never resurrect the node.
    struct CrashThenAdmit;
    impl FleetController for CrashThenAdmit {
        fn plan(&mut self, view: &FleetView) -> PlacementPlan {
            let mut plan = PlacementPlan::new();
            match view.epoch {
                0 => plan.crash(0),
                1 => plan.admit(0, WorkloadUnit::new(WorkloadId(7), 1.0)),
                _ => {}
            }
            plan
        }
    }
    let config = FleetConfig { nodes: 2, threads: 2, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(placeable_recipe().recipe, config).unwrap();
    let report = fleet.run_with(&mut CrashThenAdmit, SimDuration::from_secs(4)).unwrap();
    assert_eq!(report.placement.admitted, 0);
    assert_eq!(report.placement.failed_placements, 1);
    assert_eq!(report.nodes[0].lifecycle.state, NodeState::Crashed);
}

// ---------------------------------------------------------------------------
// Joins: fresh nodes enter mid-run and become first-class fleet members.
// ---------------------------------------------------------------------------

#[test]
fn joined_nodes_run_a_virgin_timeline_and_activate() {
    let config = FleetConfig {
        nodes: 3,
        threads: 2,
        epoch: SimDuration::from_secs(1),
        ..FleetConfig::default()
    };
    let horizon = SimDuration::from_secs(6);
    let fleet = FleetRuntime::new(toy_recipe(), config).unwrap();
    let mut chaos = EventAt { epoch: 1, events: vec![LifecycleEvent::Join] };
    let report = fleet.run_with(&mut chaos, horizon).unwrap();

    assert_eq!(report.nodes.len(), 4, "the joined node is a first-class report entry");
    let joined = &report.nodes[3];
    assert_eq!(joined.lifecycle.state, NodeState::Active);
    assert_eq!(joined.lifecycle.joined_epoch, 1);
    // The join landed at the epoch-1 boundary (t = 2s); the node's own clock
    // started there, so it ran 4 of the 6 fleet seconds.
    assert_eq!(joined.ended_at, Timestamp::from_secs(4));
    // The joined node's seed is the fleet's derivation at index 3 — exactly
    // what a 4-node fleet would have stamped.
    assert_eq!(joined.seed, fleet.node_seed(3).seed());
    assert!(
        joined.agents.iter().any(|a| a.stats.model.epochs_completed > 0),
        "the joined node must actually learn"
    );
    // Aggregates include the newcomer.
    for role in &report.roles {
        assert_eq!(role.nodes, 4);
    }
}

// ---------------------------------------------------------------------------
// Acceptance: an 8-node packed fleet survives a mid-run crash, with every
// displaced unit re-placed or counted failed, byte-identical across thread
// counts.
// ---------------------------------------------------------------------------

#[test]
fn eight_node_packer_fleet_survives_a_mid_run_crash() {
    let horizon = SimDuration::from_secs(20);
    let faults = FaultPlan::from_events(vec![FaultEvent {
        at: Timestamp::from_secs(9),
        event: LifecycleEvent::Crash { node: 3 },
    }]);

    let mut renders: Vec<Vec<u8>> = Vec::new();
    for threads in [1usize, 2, 8] {
        let config = FleetConfig { nodes: 8, threads, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(placeable_recipe().recipe, config).unwrap();
        let mut packer = GreedyPacker::new(test_trace(40, horizon));
        let report = fleet.run_with_faults(&mut packer, faults.clone(), horizon).unwrap();

        let p = &report.placement;
        assert!(p.displaced > 0, "the crashed node must have hosted work: {p:?}");
        assert!(p.replaced > 0, "displaced units must be re-placed: {p:?}");
        // Every displaced unit is re-placed or counted failed — the packer
        // itself never oversubscribes, so the only failures are displaced
        // units that could not return (e.g. departed while pooled).
        assert_eq!(p.failed_placements, p.displaced - p.replaced, "{p:?}");

        // The crashed node keeps its full report under its final lifecycle
        // state but is excluded from the role aggregates.
        let crashed = &report.nodes[3];
        assert_eq!(crashed.lifecycle.state, NodeState::Crashed);
        assert!(!crashed.agents.is_empty());
        assert_eq!(crashed.ended_at, Timestamp::from_secs(9));
        for role in &report.roles {
            assert_eq!(role.nodes, 7, "role aggregates must exclude the crashed node");
        }
        // Learning survives the churn: the surviving majority keeps
        // completing epochs after the crash.
        let survivors_learning = report
            .nodes
            .iter()
            .filter(|n| n.lifecycle.state == NodeState::Active)
            .filter(|n| n.agents.iter().any(|a| a.stats.model.epochs_completed > 0))
            .count();
        assert_eq!(survivors_learning, 7);

        renders.push(debug_bytes(&report));
    }
    assert_eq!(renders[0], renders[1], "1-thread and 2-thread runs must be byte-identical");
    assert_eq!(renders[0], renders[2], "1-thread and 8-thread runs must be byte-identical");
}
