//! Property-based tests of the node-simulator invariants.

use proptest::prelude::*;

use sol_core::runtime::Environment;
use sol_core::time::{SimDuration, Timestamp};
use sol_node_sim::cpu_node::{CpuNode, CpuNodeConfig};
use sol_node_sim::harvest_node::{BurstyService, HarvestNode, HarvestNodeConfig};
use sol_node_sim::memory_node::{MemoryNode, MemoryNodeConfig, MemoryWorkloadKind};
use sol_node_sim::workload::OverclockWorkloadKind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Energy, counters, and time advance monotonically no matter how the
    /// advance calls are chopped up.
    #[test]
    fn cpu_node_metrics_are_monotone(cuts in prop::collection::vec(1u64..2_000, 1..20)) {
        let mut node = CpuNode::new(
            OverclockWorkloadKind::ObjectStore.build(4),
            CpuNodeConfig { cores: 4, ..CpuNodeConfig::default() },
        );
        let mut now = Timestamp::ZERO;
        let mut last_energy = 0.0;
        for ms in cuts {
            now += SimDuration::from_millis(ms);
            node.advance_to(now);
            prop_assert!(node.energy_joules() >= last_energy);
            last_energy = node.energy_joules();
            prop_assert_eq!(node.now(), now);
            let sample = node.take_counter_sample().unwrap();
            prop_assert!(sample.ips >= 0.0);
            prop_assert!((0.0..=1.0).contains(&sample.alpha));
        }
    }

    /// Core accounting on the harvest node is conserved: primary + harvested
    /// always equals the total, for any sequence of assignments.
    #[test]
    fn harvest_node_core_accounting(assignments in prop::collection::vec(0usize..12, 1..30)) {
        let mut node = HarvestNode::new(BurstyService::moses(), HarvestNodeConfig::default());
        let mut now = Timestamp::ZERO;
        for cores in assignments {
            node.set_primary_cores(cores);
            now += SimDuration::from_millis(50);
            node.advance_to(now);
            prop_assert_eq!(node.primary_cores() + node.harvested_cores(), node.total_cores());
            prop_assert!(node.primary_cores() >= 1);
            prop_assert!(node.p99_latency_ms() >= BurstyService::moses().base_latency_ms - 1e-9);
        }
    }

    /// Memory-tier accounting is conserved and access routing matches tiers.
    #[test]
    fn memory_node_tier_accounting(
        moves in prop::collection::vec((0usize..64, any::<bool>()), 1..50),
    ) {
        let mut node = MemoryNode::new(
            MemoryWorkloadKind::Sql,
            MemoryNodeConfig { batches: 64, accesses_per_sec: 5_000.0, ..Default::default() },
        );
        let mut now = Timestamp::ZERO;
        for (batch, to_remote) in moves {
            if to_remote {
                node.migrate_to_remote(batch);
            } else {
                node.migrate_to_local(batch);
            }
            now += SimDuration::from_millis(200);
            node.advance_to(now);
            prop_assert_eq!(node.local_batch_count() + node.remote_batch_count(), 64);
            let recent = node.recent_remote_fraction();
            prop_assert!((0.0..=1.0).contains(&recent));
        }
        // With everything restored local, no further remote accesses accrue.
        node.restore_all_local(None);
        let remote_before = node.remote_accesses();
        node.advance_to(now + SimDuration::from_secs(5));
        prop_assert_eq!(node.remote_accesses(), remote_before);
    }
}
