//! `ReplayDriver` end to end: record a SmartOverclock run's actuation
//! sequence and replay it through the builder's `.driver(...)` path on a
//! fresh node, verifying the replayed node reproduces the same sequence of
//! frequency actuations.

use sol_agents::prelude::*;
use sol_core::prelude::*;
use sol_node_sim::prelude::*;

fn fresh_cpu() -> Shared<CpuNode> {
    let node = Shared::new(CpuNode::new(
        OverclockWorkloadKind::ObjectStore.build(8),
        CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
    ));
    node.with(|n| n.enable_trace());
    node
}

/// Extracts the frequency actuation sequence from a node's trace: one entry
/// per transition, stamped with the trace point where the new frequency first
/// became visible.
fn frequency_transitions(node: &Shared<CpuNode>) -> Vec<ReplayEntry<f64>> {
    node.with(|n| {
        let mut out = Vec::new();
        let mut last = n.nominal_frequency_ghz();
        for p in n.trace() {
            if (p.frequency_ghz - last).abs() > 1e-9 {
                out.push(ReplayEntry::new(p.at, p.frequency_ghz));
                last = p.frequency_ghz;
            }
        }
        out
    })
}

#[test]
fn replaying_smart_overclock_trace_reproduces_actuation_sequence() {
    let horizon = SimDuration::from_secs(60);

    // 1. Record: SmartOverclock learns on a CPU-bound workload.
    let recorded_node = fresh_cpu();
    let mut builder = NodeRuntime::builder(recorded_node.clone());
    builder.register(overclock_blueprint(&recorded_node, OverclockConfig::default()));
    builder.build().run_for(horizon).unwrap();
    let trace = frequency_transitions(&recorded_node);
    assert!(trace.len() >= 5, "the learner should change frequency, got {} changes", trace.len());

    // 2. Replay the recorded actuations through a ReplayDriver on a fresh
    //    node — no learner involved.
    let replay_node = fresh_cpu();
    let mut builder = NodeRuntime::builder(replay_node.clone());
    let driver = builder.driver(
        "overclock-replay",
        ReplayDriver::new(trace.clone(), |env: &mut Shared<CpuNode>, _now, ghz: &f64| {
            env.with(|n| n.set_frequency_ghz(*ghz));
        }),
    );
    // Keep the environment advancing as finely as the CPU node integrates so
    // replayed transitions become visible promptly.
    let runtime = builder.max_environment_step(SimDuration::from_millis(25)).unwrap().build();
    let report = runtime.run_for(horizon).unwrap();

    // Every recorded action was replayed...
    let replay = report.driver(driver);
    assert!(replay.finished());
    assert_eq!(replay.actions_replayed(), trace.len() as u64);
    assert_eq!(report.agent_report(driver).unwrap().stats.actions_taken(), trace.len() as u64);

    // ...and the replayed node went through the exact same frequency
    // sequence, each transition within one integration step of the original.
    let replayed = frequency_transitions(&replay_node);
    assert_eq!(replayed.len(), trace.len(), "same number of transitions");
    assert_eq!(replay_node.with(|n| n.frequency_changes()), trace.len() as u64);
    for (original, replayed) in trace.iter().zip(&replayed) {
        assert_eq!(original.action, replayed.action, "same frequency, in order");
        let drift = replayed.at.duration_since(original.at);
        assert!(
            drift <= SimDuration::from_millis(100),
            "transition to {} GHz drifted {drift}",
            original.action
        );
    }
    assert_eq!(
        recorded_node.with(|n| n.frequency_ghz()),
        replay_node.with(|n| n.frequency_ghz()),
        "both nodes end at the same frequency"
    );
}
