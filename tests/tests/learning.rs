//! Cross-crate properties of the fleet learning plane.
//!
//! * The robust aggregation rules must match straightforward scalar
//!   references, coordinate by coordinate, for any peer count and shape.
//! * Export → import must round-trip byte-identically for every exchangeable
//!   learner: a warm-started node computes exactly what the exporter knew.
//! * A poisoned fleet under churn must stay a pure function of its seeds:
//!   byte-identical `FleetReport`s across 1, 2, and 8 worker threads.
//! * The headline claims are pinned: sign-flip poisoning degrades a
//!   mean-aggregating fleet but not a median/trimmed one, and a warm-started
//!   joiner trips its model safeguard strictly less than a cold one.

use proptest::prelude::*;

use sol_agents::poison::{poisoned_overclock_recipe, PoisonAttack, PoisonedOverclockConfig};
use sol_core::prelude::*;
use sol_ml::exchange::{AggregationRule, BlendPolicy, LearnedExchange, LearnedState, StateKind};
use sol_ml::linear::OnlineLinearRegression;
use sol_ml::online_stats::RunningStats;
use sol_ml::qlearning::{QConfig, QLearner};
use sol_ml::thompson::ThompsonSampler;

// ---------------------------------------------------------------------------
// Aggregation rules vs scalar references
// ---------------------------------------------------------------------------

fn mean_ref(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn median_ref(xs: &[f64]) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        (s[n / 2 - 1] + s[n / 2]) / 2.0
    }
}

fn trimmed_ref(xs: &[f64], k: usize) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let k = k.min((s.len() - 1) / 2);
    let kept = &s[k..s.len() - k];
    kept.iter().sum::<f64>() / kept.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Each rule equals its scalar reference applied per coordinate.
    #[test]
    fn aggregation_rules_match_scalar_references(
        n_peers in 1usize..8,
        len in 1usize..12,
        pool in proptest::collection::vec(-1e6f64..1e6, 96..97),
        k in 0usize..4,
    ) {
        // The vendored proptest has no flat_map, so peer vectors are sliced
        // out of one fixed-size pool.
        let peers: Vec<Vec<f64>> =
            (0..n_peers).map(|p| pool[p * len..(p + 1) * len].to_vec()).collect();
        let states: Vec<LearnedState> = peers
            .iter()
            .map(|v| {
                LearnedState::new(StateKind::LinearWeights, vec![v.len()], v.clone()).unwrap()
            })
            .collect();
        let len = peers[0].len();
        for (rule, reference) in [
            (AggregationRule::Mean, Box::new(mean_ref) as Box<dyn Fn(&[f64]) -> f64>),
            (AggregationRule::CoordinateWiseMedian, Box::new(median_ref)),
            (AggregationRule::TrimmedMean { k }, Box::new(move |xs: &[f64]| trimmed_ref(xs, k))),
        ] {
            let aggregate = rule.aggregate(&states).unwrap();
            prop_assert_eq!(aggregate.shape(), &[len]);
            for i in 0..len {
                let column: Vec<f64> = peers.iter().map(|v| v[i]).collect();
                let expected = reference(&column);
                prop_assert!(
                    (aggregate.values()[i] - expected).abs() <= 1e-9 * expected.abs().max(1.0),
                    "rule {:?} coordinate {} got {} want {}",
                    rule, i, aggregate.values()[i], expected
                );
            }
        }
    }

    /// The k-clamp, pinned: once `n <= 2k`, [`AggregationRule::TrimmedMean`]
    /// clamps `k` to `(n - 1) / 2` and degrades exactly — bit for bit — to
    /// the coordinate-wise median (one surviving value for odd `n`, the
    /// averaged middle pair for even `n`). The trust plane's consensus math
    /// (`robust_z_scores`) leans on this: its median/MAD centre is the same
    /// `CoordinateWiseMedian::combine` this property pins.
    #[test]
    fn trimmed_mean_degrades_to_the_median_when_k_saturates(
        pool in proptest::collection::vec(-1e9f64..1e9, 1..12),
        extra_k in 0usize..8,
    ) {
        let n = pool.len();
        // Smallest k with n <= 2k, plus arbitrary slack: every such k must
        // clamp to the same survivor set.
        let k = n.div_ceil(2) + extra_k;
        prop_assert!(n <= 2 * k);
        let trimmed = AggregationRule::TrimmedMean { k }.combine(&mut pool.clone());
        let median = AggregationRule::CoordinateWiseMedian.combine(&mut pool.clone());
        prop_assert_eq!(trimmed, median);
    }

    /// Even-count medians average the two middle values and land between
    /// them; no element of the sample below the lower middle or above the
    /// upper one can move the result.
    #[test]
    fn even_count_median_averages_the_middle_pair(
        pool in proptest::collection::vec(-1e9f64..1e9, 2..13),
    ) {
        let n = pool.len() & !1; // truncate to an even count (>= 2)
        let mut column = pool[..n].to_vec();
        let median = AggregationRule::CoordinateWiseMedian.combine(&mut column);
        let mut sorted = pool[..n].to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (sorted[n / 2 - 1], sorted[n / 2]);
        prop_assert_eq!(median, (lo + hi) / 2.0);
        prop_assert!((lo..=hi).contains(&median), "median {} outside [{}, {}]", median, lo, hi);
    }

    /// Robustness bound: with a minority of arbitrarily poisoned peers, the
    /// median stays within the honest value range.
    #[test]
    fn median_is_bounded_by_honest_values(
        honest in 3usize..8,
        poison in proptest::collection::vec(-1e12f64..1e12, 1..3),
        value in -100.0f64..100.0,
    ) {
        // poison.len() <= 2 < 3 <= honest: always a strict honest majority.
        let mut states: Vec<LearnedState> = (0..honest)
            .map(|_| LearnedState::new(StateKind::QTable, vec![1], vec![value]).unwrap())
            .collect();
        for p in &poison {
            states.push(LearnedState::new(StateKind::QTable, vec![1], vec![*p]).unwrap());
        }
        let aggregate = AggregationRule::CoordinateWiseMedian.aggregate(&states).unwrap();
        let lo = value.min(poison.iter().cloned().fold(value, f64::min));
        let hi = value.max(poison.iter().cloned().fold(value, f64::max));
        prop_assert!((lo..=hi).contains(&aggregate.values()[0]));
        // A strict majority of honest peers pins the median exactly.
        prop_assert_eq!(aggregate.values()[0], value);
    }

    /// Export → import → export round-trips byte-identically for all four
    /// exchangeable learners, after arbitrary training histories.
    #[test]
    fn exports_round_trip_byte_identically(
        seed in any::<u64>(),
        rewards in prop::collection::vec(-1.0f64..1.0, 1..40),
    ) {
        // Q-learner: train on a random reward stream.
        let config = QConfig::new(3, 4);
        let mut q = QLearner::with_seed(config.clone(), seed);
        for (i, r) in rewards.iter().enumerate() {
            let s = i % 3;
            let a = q.choose_action(s).action;
            q.update(s, a, *r, (i + 1) % 3);
        }
        let exported = q.export_learned();
        let mut fresh = QLearner::with_seed(config, seed.wrapping_add(1));
        fresh.import_learned(&exported).unwrap();
        prop_assert_eq!(fresh.export_learned(), exported);

        // Online linear regression.
        let mut lin = OnlineLinearRegression::new(3, 0.05);
        for (i, r) in rewards.iter().enumerate() {
            lin.update(&[i as f64 % 5.0, *r, 1.0 - r], r * 2.0);
        }
        let exported = lin.export_learned();
        let mut fresh = OnlineLinearRegression::new(3, 0.05);
        fresh.import_learned(&exported).unwrap();
        prop_assert_eq!(fresh.export_learned(), exported);

        // Thompson sampler.
        let mut ts = ThompsonSampler::with_seed(4, seed);
        for (i, r) in rewards.iter().enumerate() {
            ts.record(i % 4, *r > 0.0);
        }
        let exported = ts.export_learned();
        let mut fresh = ThompsonSampler::with_seed(4, seed.wrapping_add(1));
        fresh.import_learned(&exported).unwrap();
        prop_assert_eq!(fresh.export_learned(), exported);

        // Running moments.
        let mut stats = RunningStats::new();
        for r in &rewards {
            stats.push(*r);
        }
        let exported = stats.export_learned();
        let mut fresh = RunningStats::new();
        fresh.import_learned(&exported).unwrap();
        prop_assert_eq!(fresh.export_learned(), exported);
    }
}

// ---------------------------------------------------------------------------
// Fleet-level pinned claims
// ---------------------------------------------------------------------------

const NODES: usize = 8;
const VICTIMS: usize = 2;
const HORIZON: SimDuration = SimDuration::from_secs(240);
const FLEET_SEED: u64 = 0x1EA2;

fn poisoned_fleet(
    victims: usize,
    learning: Option<LearningPlane>,
    threads: usize,
) -> FleetRuntime<sol_node_sim::shared::Shared<sol_node_sim::cpu_node::CpuNode>> {
    let preset = poisoned_overclock_recipe(PoisonedOverclockConfig {
        victims,
        attack: PoisonAttack::SignFlip { gain: 4.0 },
        nodes: NODES,
        ..PoisonedOverclockConfig::default()
    });
    let config =
        FleetConfig { nodes: NODES, threads, seed: FLEET_SEED, learning, ..FleetConfig::default() };
    FleetRuntime::new(preset.recipe, config).unwrap()
}

fn plane(rule: AggregationRule) -> LearningPlane {
    LearningPlane { exchange_every: 5, rule, blend: BlendPolicy::Replace }
}

fn interceptions(report: &FleetReport) -> u64 {
    report.roles[0].totals.model.intercepted_predictions
}

/// The robustness claim, pinned: a two-node sign-flip minority degrades a
/// mean-aggregating fleet's safeguard rate well past the clean baseline,
/// while the median and trimmed-mean fleets stay near it.
#[test]
fn robust_rules_contain_poisoning_where_mean_degrades() {
    let clean = interceptions(
        &poisoned_fleet(0, Some(plane(AggregationRule::Mean)), 4).run(HORIZON).unwrap(),
    );
    let mean = interceptions(
        &poisoned_fleet(VICTIMS, Some(plane(AggregationRule::Mean)), 4).run(HORIZON).unwrap(),
    );
    let median = interceptions(
        &poisoned_fleet(VICTIMS, Some(plane(AggregationRule::CoordinateWiseMedian)), 4)
            .run(HORIZON)
            .unwrap(),
    );
    let trimmed = interceptions(
        &poisoned_fleet(VICTIMS, Some(plane(AggregationRule::TrimmedMean { k: VICTIMS })), 4)
            .run(HORIZON)
            .unwrap(),
    );

    // Mean lets the poison through: at least 50% more safeguard interceptions
    // than the unpoisoned baseline.
    assert!(
        mean as f64 >= clean as f64 * 1.5,
        "poisoned mean fleet must degrade: clean {clean}, mean {mean}"
    );
    // The robust rules hold the line: within 25% of the clean baseline and
    // strictly better than the mean.
    for (label, robust) in [("median", median), ("trimmed", trimmed)] {
        assert!(robust < mean, "{label} must beat the poisoned mean: {robust} vs {mean}");
        assert!(
            (robust as f64) <= clean as f64 * 1.25,
            "{label} must stay near the clean baseline: {robust} vs clean {clean}"
        );
    }
}

fn three_joins() -> FaultPlan {
    FaultPlan::from_events(
        [120u64, 150, 180]
            .iter()
            .map(|&secs| FaultEvent {
                at: Timestamp::ZERO + SimDuration::from_secs(secs),
                event: LifecycleEvent::Join,
            })
            .collect(),
    )
}

fn joined_interceptions(learning: Option<LearningPlane>) -> (u64, u64) {
    let fleet = poisoned_fleet(0, learning, 4);
    let report = fleet.run_with_faults(&mut NullController, three_joins(), HORIZON).unwrap();
    let joined: Vec<_> = report.nodes.iter().filter(|n| n.lifecycle.joined_epoch > 0).collect();
    assert_eq!(joined.len(), 3, "all three joins must land");
    let total = joined.iter().map(|n| n.agents[0].stats.model.intercepted_predictions).sum();
    (total, report.learning.warm_starts)
}

/// The warm-start claim, pinned: joiners that import the fleet aggregate trip
/// their model safeguard strictly less than cold-started joiners in the
/// otherwise-identical fleet.
#[test]
fn warm_started_joiners_trip_fewer_safeguards_than_cold_ones() {
    let (cold, cold_warm_starts) = joined_interceptions(None);
    let (warm, warm_starts) = joined_interceptions(Some(LearningPlane {
        exchange_every: 1,
        rule: AggregationRule::CoordinateWiseMedian,
        blend: BlendPolicy::Replace,
    }));
    assert_eq!(cold_warm_starts, 0, "no learning plane, no warm starts");
    assert_eq!(warm_starts, 3, "every joiner must warm-start");
    assert!(
        warm < cold,
        "warm-started joiners must trip fewer safeguards: warm {warm} vs cold {cold}"
    );
}

/// Determinism under the works: a poisoned fleet with a learning plane AND
/// churn (crash + joins) must produce byte-identical reports across 1, 2,
/// and 8 worker threads.
#[test]
fn poisoned_churning_learning_fleet_is_byte_identical_across_thread_counts() {
    let horizon = SimDuration::from_secs(90);
    let faults = || {
        FaultPlan::generate(
            0xFEED,
            NODES,
            &FaultPlanConfig { crashes: 1, joins: 2, drains: 0, span: horizon },
        )
    };
    let learning = Some(LearningPlane {
        exchange_every: 2,
        rule: AggregationRule::TrimmedMean { k: 1 },
        blend: BlendPolicy::Mix { weight: 0.5 },
    });
    let run = |threads: usize| {
        let fleet = poisoned_fleet(VICTIMS, learning, threads);
        let report = fleet.run_with_faults(&mut NullController, faults(), horizon).unwrap();
        format!("{report:#?}")
    };
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(one, two, "1-thread and 2-thread reports must be byte-identical");
    assert_eq!(one, eight, "1-thread and 8-thread reports must be byte-identical");

    // The learning plane actually ran: rounds fired and state moved.
    let fleet = poisoned_fleet(VICTIMS, learning, 4);
    let report = fleet.run_with_faults(&mut NullController, faults(), horizon).unwrap();
    assert!(report.learning.rounds > 0, "learning rounds must fire");
    assert!(report.learning.participants > 0, "nodes must export state");
    assert!(report.learning.redistributed > 0, "aggregates must be redistributed");
    assert!(report.learning.bytes_exchanged > 0, "exchange must move bytes");
    assert!(report.learning.warm_starts > 0, "joiners must warm-start");
}

/// Quiet learners ship nothing: a fleet whose models never export (the toy
/// models of the fleet tests have no learned state) runs a learning plane
/// with zero traffic and zero redistribution.
#[test]
fn quiet_models_produce_empty_learning_rounds() {
    use sol_core::error::DataError;

    struct SilentModel;
    impl Model for SilentModel {
        type Data = f64;
        type Pred = f64;
        fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
            Ok(1.0)
        }
        fn validate_data(&self, d: &f64) -> bool {
            d.is_finite()
        }
        fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
        fn update_model(&mut self, _now: Timestamp) {}
        fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
            Some(Prediction::model(1.0, now, now + SimDuration::from_secs(1)))
        }
        fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
            Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
        }
        fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
            ModelAssessment::Healthy
        }
    }

    struct SilentActuator;
    impl Actuator for SilentActuator {
        type Pred = f64;
        fn take_action(&mut self, _now: Timestamp, _pred: Option<&Prediction<f64>>) {}
        fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
            ActuatorAssessment::Acceptable
        }
        fn mitigate(&mut self, _now: Timestamp) {}
        fn clean_up(&mut self, _now: Timestamp) {}
    }

    let recipe = ScenarioRecipe::new(|_seed: &NodeSeed| {
        let mut builder = NodeRuntime::builder(NullEnvironment);
        let schedule = Schedule::builder()
            .data_per_epoch(2)
            .data_collect_interval(SimDuration::from_millis(100))
            .max_epoch_time(SimDuration::from_secs(1))
            .build()
            .unwrap();
        builder.agent("silent", SilentModel, SilentActuator, schedule);
        builder.build()
    });
    let config = FleetConfig {
        nodes: 4,
        threads: 2,
        learning: Some(LearningPlane::default()),
        ..FleetConfig::default()
    };
    let report = FleetRuntime::new(recipe, config).unwrap().run(SimDuration::from_secs(5)).unwrap();
    assert!(report.learning.rounds > 0, "rounds still fire on cadence");
    assert_eq!(report.learning.participants, 0, "quiet learners ship nothing");
    assert_eq!(report.learning.bytes_exchanged, 0);
    assert_eq!(report.learning.redistributed, 0);
    assert_eq!(report.learning.rejected, 0);
}
