//! Cross-crate tests of the programmable epoch barrier: `FleetController`,
//! workload placement, and the segmentation corner cases the redesign must
//! not perturb.
//!
//! * `run(horizon)` must stay byte-identical to `run_with(&mut
//!   NullController, horizon)` — and to a controller that issues zero
//!   commands — across the epoch-grid corner cases (horizon not divisible by
//!   the epoch, single-epoch horizon).
//! * The `GreedyPacker` must actually place, migrate, and drain VMs on a
//!   real placeable co-location fleet, and the placement dashboard must
//!   reflect it.
//! * Placement failures (no placeable slots, out-of-capacity) are counted,
//!   never fatal; controller programming errors (bad node index) are loud.

use sol_agents::prelude::*;
use sol_core::error::{DataError, RuntimeError};
use sol_core::prelude::*;

/// Renders a value's full Debug output as bytes for exact comparison.
fn debug_bytes<T: std::fmt::Debug>(value: &T) -> Vec<u8> {
    format!("{value:#?}").into_bytes()
}

/// A deterministic toy model/actuator pair for placement-free recipes.
struct ToyModel;

impl Model for ToyModel {
    type Data = f64;
    type Pred = f64;
    fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
        Ok(1.0)
    }
    fn validate_data(&self, d: &f64) -> bool {
        d.is_finite()
    }
    fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
    fn update_model(&mut self, _now: Timestamp) {}
    fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
        Some(Prediction::model(1.0, now, now + SimDuration::from_secs(1)))
    }
    fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
        Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
    }
    fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
        ModelAssessment::Healthy
    }
}

#[derive(Default)]
struct ToyActuator;

impl Actuator for ToyActuator {
    type Pred = f64;
    fn take_action(&mut self, _now: Timestamp, _pred: Option<&Prediction<f64>>) {}
    fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
        ActuatorAssessment::Acceptable
    }
    fn mitigate(&mut self, _now: Timestamp) {}
    fn clean_up(&mut self, _now: Timestamp) {}
}

fn toy_schedule() -> Schedule {
    Schedule::builder()
        .data_per_epoch(2)
        .data_collect_interval(SimDuration::from_millis(100))
        .max_epoch_time(SimDuration::from_secs(1))
        .build()
        .unwrap()
}

/// A single-agent recipe over `NullEnvironment` (no placeable slots).
fn toy_recipe() -> ScenarioRecipe<NullEnvironment> {
    ScenarioRecipe::new(|_seed: &NodeSeed| {
        let mut builder = NodeRuntime::builder(NullEnvironment);
        builder.agent("toy", ToyModel, ToyActuator, toy_schedule());
        builder.build()
    })
}

/// A placeable two-agent co-location recipe (6 of 8 cores placeable).
fn placeable_preset() -> sol_agents::colocation::ColocatedRecipe {
    colocated_recipe(ColocationConfig { placeable_cores: 6.0, ..ColocationConfig::default() })
}

/// A churny arrival trace sized for short test horizons.
fn test_trace(arrivals: usize, horizon: SimDuration) -> ArrivalTrace {
    ArrivalTrace::generate(
        0xC0FFEE,
        &ArrivalTraceConfig {
            workloads: arrivals,
            span: horizon,
            min_cores: 0.5,
            max_cores: 2.5,
            min_lifetime: SimDuration::from_secs(3),
            max_lifetime: SimDuration::from_secs(8),
        },
    )
}

/// A controller that always returns an empty plan but counts invocations and
/// remembers what it saw.
struct CountingController {
    invocations: u64,
    boundaries: Vec<Timestamp>,
    telemetry_names: Vec<String>,
}

impl CountingController {
    fn new() -> Self {
        CountingController { invocations: 0, boundaries: Vec::new(), telemetry_names: Vec::new() }
    }
}

impl FleetController for CountingController {
    fn plan(&mut self, view: &FleetView) -> PlacementPlan {
        self.invocations += 1;
        self.boundaries.push(view.now);
        if self.telemetry_names.is_empty() {
            if let Some(node) = view.nodes.first() {
                self.telemetry_names =
                    node.telemetry.iter().map(|(name, _)| name.clone()).collect();
            }
        }
        PlacementPlan::new()
    }
}

// ---------------------------------------------------------------------------
// Satellite: epoch segmentation corner cases must stay byte-identical to the
// pre-redesign run() path.
// ---------------------------------------------------------------------------

#[test]
fn run_equals_null_controller_and_zero_command_controller_across_epoch_grids() {
    // (horizon, epoch) pairs covering: not divisible, single-epoch (epoch ==
    // horizon), and the everyday divisible case.
    let cases = [
        (SimDuration::from_secs(7), SimDuration::from_secs(3)), // 3,6,7 — not divisible
        (SimDuration::from_secs(4), SimDuration::from_secs(4)), // single epoch
        (SimDuration::from_secs(6), SimDuration::from_secs(2)), // divisible
    ];
    for (horizon, epoch) in cases {
        let config = FleetConfig { nodes: 3, threads: 2, epoch, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(toy_recipe(), config).unwrap();
        let plain = fleet.run(horizon).unwrap();
        let null = fleet.run_with(&mut NullController, horizon).unwrap();
        assert_eq!(
            debug_bytes(&plain),
            debug_bytes(&null),
            "run() must equal run_with(NullController) for epoch {epoch}, horizon {horizon}"
        );
        let mut counting = CountingController::new();
        let counted = fleet.run_with(&mut counting, horizon).unwrap();
        assert_eq!(
            debug_bytes(&plain),
            debug_bytes(&counted),
            "a zero-command controller must not perturb the run"
        );
        // The controller is invoked at every epoch boundary, ending exactly
        // at the horizon.
        assert_eq!(counting.invocations, plain.epochs);
        assert_eq!(*counting.boundaries.last().unwrap(), Timestamp::ZERO + horizon);
        assert_eq!(plain.ended_at, Timestamp::ZERO + horizon);
    }
}

// ---------------------------------------------------------------------------
// The programmable barrier on a real placeable fleet.
// ---------------------------------------------------------------------------

#[test]
fn greedy_packer_places_migrates_and_drains_on_a_real_fleet() {
    let horizon = SimDuration::from_secs(20);
    let preset = placeable_preset();
    let config = FleetConfig { nodes: 4, threads: 2, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe, config).unwrap();
    let mut packer = GreedyPacker::new(test_trace(24, horizon));
    let report = fleet.run_with(&mut packer, horizon).unwrap();

    let p = &report.placement;
    assert!(p.admitted > 0, "VMs must be admitted: {p:?}");
    assert!(p.departed > 0, "short-lived VMs must depart: {p:?}");
    assert!(p.migrated > 0, "rebalancing must migrate at least one VM: {p:?}");
    assert_eq!(p.failed_placements, 0, "the packer never oversubscribes: {p:?}");
    assert!(p.commands >= p.admitted + p.departed + p.migrated);
    assert!(p.packing_efficiency > 0.0 && p.packing_efficiency <= 1.0);
    assert!(p.occupancy.max > 0.0, "occupancy must be visible: {p:?}");
    assert!(p.occupancy.min <= p.occupancy.p50 && p.occupancy.p50 <= p.occupancy.max);

    // Final per-node placement is reported and consistent with the counts:
    // admitted minus departed minus still-pending-in-trace equals resident.
    let resident: usize = report.nodes.iter().map(|n| n.workloads.len()).sum();
    assert_eq!(resident as u64, p.admitted - p.departed);
    // Resident units respect per-node capacity.
    for node in &report.nodes {
        let used: f64 = node.workloads.iter().map(|u| u.cores).sum();
        assert!(used <= 6.0 + 1e-9, "node {} over capacity: {used}", node.node);
    }
}

#[test]
fn fleet_view_carries_stats_telemetry_and_placement() {
    let horizon = SimDuration::from_secs(6);
    let preset = placeable_preset();
    let config = FleetConfig { nodes: 2, threads: 2, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe, config).unwrap();

    /// Asserts the view's shape at every barrier.
    struct Inspector {
        saw_progress: bool,
    }
    impl FleetController for Inspector {
        fn plan(&mut self, view: &FleetView) -> PlacementPlan {
            assert_eq!(view.nodes.len(), 2);
            for (i, node) in view.nodes.iter().enumerate() {
                assert_eq!(node.node, i, "views must be sorted by node index");
                assert_eq!(node.agents.len(), 2);
                assert_eq!(node.agents[0].name, "smart-overclock");
                assert_eq!(node.agents[1].name, "smart-harvest");
                assert!(node.reading("p99_latency_ms").is_some());
                assert!(node.reading("avg_power_watts").is_some());
                assert_eq!(node.placement.capacity, 6.0);
                if node.agents[0].stats.model.samples_committed > 0 {
                    self.saw_progress = true;
                }
            }
            PlacementPlan::new()
        }
    }
    let mut inspector = Inspector { saw_progress: false };
    fleet.run_with(&mut inspector, horizon).unwrap();
    assert!(inspector.saw_progress, "barrier snapshots must carry live agent stats");
}

// ---------------------------------------------------------------------------
// Failure accounting and controller programming errors.
// ---------------------------------------------------------------------------

#[test]
fn placement_failures_are_counted_not_fatal() {
    // NullEnvironment has no placeable slots: every admit fails and is
    // counted; migrations of unknown units count once per failed half.
    struct Pusher;
    impl FleetController for Pusher {
        fn plan(&mut self, view: &FleetView) -> PlacementPlan {
            let mut plan = PlacementPlan::new();
            if view.epoch == 0 {
                plan.admit(0, WorkloadUnit::new(WorkloadId(1), 1.0));
                plan.depart(1, WorkloadId(2));
                plan.migrate(0, 1, WorkloadId(3));
            }
            plan
        }
    }
    let config = FleetConfig { nodes: 2, threads: 2, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(toy_recipe(), config).unwrap();
    let report = fleet.run_with(&mut Pusher, SimDuration::from_secs(3)).unwrap();
    assert_eq!(report.placement.commands, 3);
    assert_eq!(report.placement.admitted, 0);
    assert_eq!(report.placement.departed, 0);
    assert_eq!(report.placement.migrated, 0);
    // The admit failed, the depart failed, and the migrate failed at its
    // detach half (so its attach never ran): three failures.
    assert_eq!(report.placement.failed_placements, 3);
    // No capacity anywhere: occupancy and packing efficiency stay zeroed.
    assert_eq!(report.placement.occupancy, Percentiles::ZEROED);
    assert_eq!(report.placement.packing_efficiency, 0.0);
}

#[test]
fn over_capacity_admissions_fail_without_aborting_the_run() {
    struct Oversubscriber;
    impl FleetController for Oversubscriber {
        fn plan(&mut self, view: &FleetView) -> PlacementPlan {
            let mut plan = PlacementPlan::new();
            if view.epoch == 0 {
                // 6 placeable cores: the first two 2.5-core VMs fit, the
                // third does not.
                for i in 0..3u64 {
                    plan.admit(0, WorkloadUnit::new(WorkloadId(i), 2.5));
                }
            }
            plan
        }
    }
    let preset = placeable_preset();
    let config = FleetConfig { nodes: 1, threads: 1, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe, config).unwrap();
    let report = fleet.run_with(&mut Oversubscriber, SimDuration::from_secs(3)).unwrap();
    assert_eq!(report.placement.admitted, 2);
    assert_eq!(report.placement.failed_placements, 1);
    assert_eq!(report.nodes[0].workloads.len(), 2);
}

#[test]
fn failed_migration_attach_rolls_the_unit_back_to_its_source() {
    // Epoch 0: place a unit on node 0 and fill node 1 to capacity.
    // Epoch 1: migrate the unit 0 → 1; the attach must fail (node 1 is
    // full), and the unit must be restored to node 0 instead of vanishing.
    struct BadMigrator;
    impl FleetController for BadMigrator {
        fn plan(&mut self, view: &FleetView) -> PlacementPlan {
            let mut plan = PlacementPlan::new();
            match view.epoch {
                0 => {
                    plan.admit(0, WorkloadUnit::new(WorkloadId(0), 2.0));
                    plan.admit(1, WorkloadUnit::new(WorkloadId(1), 6.0));
                }
                1 => plan.migrate(0, 1, WorkloadId(0)),
                _ => {}
            }
            plan
        }
    }
    let preset = placeable_preset();
    let config = FleetConfig { nodes: 2, threads: 2, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe, config).unwrap();
    let report = fleet.run_with(&mut BadMigrator, SimDuration::from_secs(4)).unwrap();
    assert_eq!(report.placement.admitted, 2);
    assert_eq!(report.placement.migrated, 0);
    assert_eq!(report.placement.failed_placements, 1, "the rejected migration is counted");
    // The unit survived on its source node.
    assert!(report.nodes[0].workloads.iter().any(|u| u.id == WorkloadId(0)));
    assert_eq!(report.nodes[1].workloads.len(), 1);
}

#[test]
fn controller_addressing_a_bad_node_is_a_loud_config_error() {
    struct OutOfRange;
    impl FleetController for OutOfRange {
        fn plan(&mut self, _view: &FleetView) -> PlacementPlan {
            let mut plan = PlacementPlan::new();
            plan.admit(99, WorkloadUnit::new(WorkloadId(0), 1.0));
            plan
        }
    }
    let config = FleetConfig { nodes: 2, threads: 2, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(toy_recipe(), config).unwrap();
    match fleet.run_with(&mut OutOfRange, SimDuration::from_secs(2)) {
        Err(RuntimeError::InvalidConfig(message)) => {
            assert!(message.contains("node 99"), "message was {message:?}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Satellite: FleetConfig validation names the offending field.
// ---------------------------------------------------------------------------

#[test]
fn fleet_config_validation_names_the_field() {
    let message = |config: FleetConfig| -> String {
        match FleetRuntime::new(toy_recipe(), config) {
            Err(RuntimeError::InvalidConfig(message)) => message,
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    };
    assert!(message(FleetConfig { threads: 0, ..FleetConfig::default() }).contains("threads"));
    assert!(message(FleetConfig { nodes: 0, ..FleetConfig::default() }).contains("nodes"));
    assert!(message(FleetConfig { epoch: SimDuration::ZERO, ..FleetConfig::default() })
        .contains("epoch"));
    // epoch > horizon is a run-time check (the horizon is a run argument).
    let config = FleetConfig { epoch: SimDuration::from_secs(9), ..FleetConfig::default() };
    let fleet = FleetRuntime::new(toy_recipe(), config).unwrap();
    match fleet.run(SimDuration::from_secs(4)) {
        Err(RuntimeError::InvalidConfig(message)) => {
            assert!(message.contains("epoch") && message.contains("horizon"));
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Learner safety holds under churn: the paper's safeguards neither trip more
// often nor vanish when the platform reshuffles work mid-run.
// ---------------------------------------------------------------------------

#[test]
fn safeguard_activation_rates_hold_steady_under_migration_churn() {
    let horizon = SimDuration::from_secs(20);
    let preset = placeable_preset();
    let config = FleetConfig { nodes: 3, threads: 3, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe, config).unwrap();

    let baseline = fleet.run(horizon).unwrap();
    let mut packer = GreedyPacker::new(test_trace(18, horizon));
    let churned = fleet.run_with(&mut packer, horizon).unwrap();
    assert!(churned.placement.migrated > 0, "the run must actually churn");

    for handle in [AgentId::from(preset.overclock), AgentId::from(preset.harvest)] {
        let calm = baseline.role(handle);
        let busy = churned.role(handle);
        assert_eq!(
            calm.safeguard_activation_rate, busy.safeguard_activation_rate,
            "safeguard activation must hold steady under churn for {}",
            calm.name
        );
        // The learners keep learning at the same cadence.
        assert_eq!(calm.totals.model.epochs_completed, busy.totals.model.epochs_completed);
    }
}
