//! Cross-crate properties of the `FleetRuntime`.
//!
//! * Fleet aggregation must be exactly the fold of per-node reports: the
//!   dashboard adds information, never invents it (a proptest over toy
//!   fleets of varying size, thread count, and epoch quantum).
//! * Per-node seed derivation must never collide for any fleet seed up to
//!   4096 nodes.
//! * The real-agent recipes must produce heterogeneous fleets whose handles
//!   key the fleet dashboard.

use proptest::prelude::*;

use sol_agents::prelude::*;
use sol_core::error::DataError;
use sol_core::prelude::*;

/// A deterministic toy model parameterized by its sampled value.
struct ToyModel {
    value: f64,
}

impl Model for ToyModel {
    type Data = f64;
    type Pred = f64;

    fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
        Ok(self.value)
    }
    fn validate_data(&self, d: &f64) -> bool {
        d.is_finite()
    }
    fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
    fn update_model(&mut self, _now: Timestamp) {}
    fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
        Some(Prediction::model(self.value, now, now + SimDuration::from_secs(1)))
    }
    fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
        Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
    }
    fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
        ModelAssessment::Healthy
    }
}

#[derive(Default)]
struct ToyActuator {
    actions: u64,
}

impl Actuator for ToyActuator {
    type Pred = f64;
    fn take_action(&mut self, _now: Timestamp, _pred: Option<&Prediction<f64>>) {
        self.actions += 1;
    }
    fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
        ActuatorAssessment::Acceptable
    }
    fn mitigate(&mut self, _now: Timestamp) {}
    fn clean_up(&mut self, _now: Timestamp) {}
}

fn toy_schedule(collect_ms: u64) -> Schedule {
    Schedule::builder()
        .data_per_epoch(2)
        .data_collect_interval(SimDuration::from_millis(collect_ms))
        .max_epoch_time(SimDuration::from_millis(collect_ms * 8))
        .assess_model_every_epochs(1)
        .max_actuation_delay(SimDuration::from_millis(collect_ms * 8))
        .assess_actuator_interval(SimDuration::from_millis(collect_ms * 2))
        .build()
        .unwrap()
}

/// A two-agent toy recipe whose per-node cadence is seed-derived, so fleets
/// are heterogeneous.
fn toy_recipe() -> ScenarioRecipe<NullEnvironment> {
    ScenarioRecipe::new(|seed: &NodeSeed| {
        let mut builder = NodeRuntime::builder(NullEnvironment);
        let collect_ms = 40 + seed.stream(0) % 120;
        builder.agent("alpha", ToyModel { value: 1.0 }, ToyActuator::default(), {
            toy_schedule(collect_ms)
        });
        builder.agent("beta", ToyModel { value: 2.0 }, ToyActuator::default(), {
            toy_schedule(collect_ms * 2)
        });
        builder.build()
    })
    .with_metrics(|report| vec![("ended_secs".into(), report.ended_at.as_secs_f64())])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fleet dashboard is exactly the fold of per-node outcomes: every
    /// `nodes[i]` matches an inline `run_node(i)`, and the per-role totals
    /// equal the sum over nodes — for any fleet shape.
    #[test]
    fn fleet_aggregation_is_the_fold_of_per_node_reports(
        nodes in 1usize..10,
        threads in 1usize..5,
        epoch_ms in 200u64..2_000,
        fleet_seed in 0u64..1_000,
    ) {
        let config = FleetConfig {
            nodes,
            threads,
            epoch: SimDuration::from_millis(epoch_ms),
            seed: fleet_seed,
            ..FleetConfig::default()
        };
        let horizon = SimDuration::from_secs(3);
        let fleet = FleetRuntime::new(toy_recipe(), config).unwrap();
        let report = fleet.run(horizon).unwrap();

        prop_assert_eq!(report.nodes.len(), nodes);
        for index in 0..nodes {
            let solo = fleet.run_node(index, horizon).unwrap();
            prop_assert_eq!(format!("{:#?}", report.nodes[index]), format!("{solo:#?}"));
        }

        // Role totals are the fold of the per-node stats.
        for (role_idx, role) in report.roles.iter().enumerate() {
            let mut folded = AgentStats::default();
            for node in &report.nodes {
                folded.accumulate(&node.agents[role_idx].stats);
            }
            prop_assert_eq!(format!("{:#?}", role.totals), format!("{folded:#?}"));
            prop_assert_eq!(role.nodes, nodes);
        }

        // Metric summaries fold the per-node metrics.
        let summary = report.metric("ended_secs").unwrap();
        let folded: f64 = report.nodes.iter().map(|n| n.metrics[0].1).sum();
        prop_assert_eq!(summary.nodes, nodes);
        prop_assert!((summary.total - folded).abs() < 1e-9);
    }

    /// Per-node seed derivation never collides, for any master seed, up to
    /// 4096 nodes.
    #[test]
    fn per_node_seeds_never_collide(fleet_seed in any::<u64>()) {
        let mut seen = std::collections::HashSet::with_capacity(4096);
        for index in 0..4096u64 {
            let seed = NodeSeed::derive(fleet_seed, index);
            prop_assert_eq!(seed.index(), index);
            prop_assert!(
                seen.insert(seed.seed()),
                "seed collision at node {} for fleet seed {}", index, fleet_seed
            );
        }
    }
}

/// The real three-agent recipe drives a heterogeneous fleet whose dashboard
/// is keyed by the preset's typed handles.
#[test]
fn three_agent_fleet_dashboard_is_keyed_by_handles() {
    let preset = three_agents_recipe(ThreeAgentConfig::default());
    let config = FleetConfig { nodes: 4, threads: 2, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe, config).unwrap();
    let report = fleet.run(SimDuration::from_secs(45)).unwrap();

    let overclock = report.role(preset.overclock);
    let harvest = report.role(preset.harvest);
    let memory = report.role(preset.memory);
    assert_eq!(overclock.name, "smart-overclock");
    assert_eq!(harvest.name, "smart-harvest");
    assert_eq!(memory.name, "smart-memory");
    assert!(overclock.totals.model.epochs_completed >= 4 * 35);
    assert!(harvest.totals.model.epochs_completed >= 4 * 800);
    assert!(memory.totals.model.epochs_completed >= 4);

    // Heterogeneity: seeded Q-learners diverge across nodes, visible in the
    // fleet percentiles and in the per-node substrate metrics.
    let energies: std::collections::HashSet<String> = report
        .nodes
        .iter()
        .map(|n| format!("{:?}", n.metrics.iter().find(|(k, _)| k == "avg_power_watts").unwrap()))
        .collect();
    assert!(energies.len() > 1, "per-node seeds must differentiate the substrate outcomes");

    // The memory SLO dashboard counts violating nodes fleet-wide.
    let violations = report.metric("memory_slo_violations").unwrap();
    assert_eq!(violations.nodes, 4);
    assert!(violations.total <= 4.0);
}

// ---------------------------------------------------------------------------
// Work-stealing determinism: a forced load imbalance (one node carrying ~8×
// the agent work of its peers) makes stealing actually fire, and the results
// must still be a pure function of (recipe, config, horizon).
// ---------------------------------------------------------------------------

/// Eight identically-named roles on every node — same population, so fleet
/// aggregation accepts it — but node 0 runs dense schedules while every
/// other node runs sparse ones. Under static round-robin sharding this
/// scenario pinned one worker at ~8× its siblings' work; work stealing
/// rebalances it, and this recipe is the regression net proving the
/// rebalancing never leaks into results.
fn imbalanced_recipe() -> ScenarioRecipe<NullEnvironment> {
    ScenarioRecipe::new(|seed: &NodeSeed| {
        let mut builder = NodeRuntime::builder(NullEnvironment);
        let collect_ms = if seed.index() == 0 { 20 } else { 160 };
        for role in 0..8 {
            builder.agent(
                format!("role-{role}"),
                ToyModel { value: role as f64 },
                ToyActuator::default(),
                toy_schedule(collect_ms),
            );
        }
        builder.build()
    })
}

/// The work-stealing acceptance bar: with one node 8× heavier than the
/// rest, the `FleetReport` stays byte-identical across 1, 2, and 8 worker
/// threads, across repeat runs, and equal to the inline `run_node` fold —
/// whichever worker ends up advancing a node can never affect what the node
/// computes.
#[test]
fn imbalanced_fleet_reports_are_byte_identical_across_worker_thread_counts() {
    let horizon = SimDuration::from_secs(5);
    let config = |threads: usize| FleetConfig {
        nodes: 6,
        threads,
        epoch: SimDuration::from_millis(500),
        seed: 0xD15B,
        ..FleetConfig::default()
    };
    let run = |threads: usize| {
        let fleet = FleetRuntime::new(imbalanced_recipe(), config(threads)).unwrap();
        format!("{:#?}", fleet.run(horizon).unwrap())
    };
    let single = run(1);
    assert_eq!(single, run(2), "2-thread imbalanced fleet diverged from single-threaded");
    assert_eq!(single, run(8), "8-thread imbalanced fleet diverged from single-threaded");
    assert_eq!(single, run(8), "repeat imbalanced runs must be byte-stable");

    // Every node's fleet entry equals its inline, stealing-free solo run.
    let fleet = FleetRuntime::new(imbalanced_recipe(), config(3)).unwrap();
    let report = fleet.run(horizon).unwrap();
    for index in 0..6 {
        let solo = fleet.run_node(index, horizon).unwrap();
        assert_eq!(format!("{:#?}", report.nodes[index]), format!("{solo:#?}"));
    }
}
