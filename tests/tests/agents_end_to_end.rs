//! End-to-end integration tests: each paper agent running on the full stack
//! (framework + simulator + ML), exercising the cross-crate seams.

use sol_agents::prelude::*;
use sol_core::prelude::*;
use sol_node_sim::prelude::*;

#[test]
fn smart_overclock_full_stack_improves_perf_per_watt() {
    let node = Shared::new(CpuNode::new(
        OverclockWorkloadKind::Synthetic.build(8),
        CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
    ));
    let (model, actuator) = smart_overclock(&node, OverclockConfig::default());
    let runtime = SimRuntime::new(model, actuator, overclock_schedule(), node.clone());
    let report = runtime.run_for(SimDuration::from_secs(300)).unwrap();
    let agent_score = node.with(|n| n.performance().score);
    let agent_power = node.with(|n| n.average_power_watts());

    // Static overclocking baseline.
    let turbo = Shared::new(CpuNode::new(
        OverclockWorkloadKind::Synthetic.build(8),
        CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
    ));
    turbo.with(|n| {
        n.set_frequency_ghz(2.3);
        n.advance_to(Timestamp::from_secs(300));
    });
    let turbo_score = turbo.with(|n| n.performance().score);
    let turbo_power = turbo.with(|n| n.average_power_watts());

    assert!(report.stats.model.epochs_completed > 200);
    assert!(agent_score > 0.8 * turbo_score, "close to static-overclock performance");
    assert!(agent_power < turbo_power, "at lower power than static overclocking");
    assert!(
        agent_score / agent_power > turbo_score / turbo_power,
        "better performance per watt than static overclocking"
    );
}

#[test]
fn smart_harvest_full_stack_harvests_and_respects_wait_safeguard() {
    let node =
        Shared::new(HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default()));
    let (model, actuator) = smart_harvest(&node, HarvestConfig::default());
    let runtime = SimRuntime::new(model, actuator, harvest_schedule(), node.clone());
    let report = runtime.run_for(SimDuration::from_secs(60)).unwrap();
    assert!(node.with(|n| n.harvested_core_seconds()) > 20.0);
    assert!(node.with(|n| n.mean_latency_ms()) < 1.3 * BurstyService::image_dnn().base_latency_ms);
    assert!(report.stats.actions_taken() > 1000);
}

#[test]
fn smart_memory_full_stack_offloads_and_meets_slo() {
    let node = Shared::new(MemoryNode::new(
        MemoryWorkloadKind::ObjectStore,
        MemoryNodeConfig { batches: 128, accesses_per_sec: 20_000.0, ..Default::default() },
    ));
    let (model, actuator) = smart_memory(&node, MemoryConfig::default());
    let runtime = SimRuntime::new(model, actuator, memory_schedule(), node.clone());
    let report = runtime.run_for(SimDuration::from_secs(400)).unwrap();
    assert!(report.stats.model.epochs_completed >= 8);
    assert!(node.with(|n| n.remote_batch_count()) > 20);
    assert!(node.with(|n| n.slo_attainment(0.8)) > 0.8);
}

#[test]
fn all_agents_clean_up_to_a_safe_node_state() {
    // SmartOverclock: frequency back to nominal.
    let cpu = Shared::new(CpuNode::new(
        OverclockWorkloadKind::ObjectStore.build(8),
        CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
    ));
    let (_, mut actuator) = smart_overclock(&cpu, OverclockConfig::default());
    cpu.with(|n| n.set_frequency_ghz(2.3));
    actuator.clean_up(Timestamp::from_secs(1));
    actuator.clean_up(Timestamp::from_secs(2));
    assert_eq!(cpu.with(|n| n.frequency_ghz()), 1.5);

    // SmartHarvest: all cores back to the primary VM.
    let harvest =
        Shared::new(HarvestNode::new(BurstyService::moses(), HarvestNodeConfig::default()));
    let (_, mut actuator) = smart_harvest(&harvest, HarvestConfig::default());
    harvest.with(|n| n.set_primary_cores(2));
    actuator.clean_up(Timestamp::from_secs(1));
    actuator.clean_up(Timestamp::from_secs(2));
    assert_eq!(harvest.with(|n| n.primary_cores()), 8);

    // SmartMemory: every batch back in the first tier.
    let memory = Shared::new(MemoryNode::new(
        MemoryWorkloadKind::Sql,
        MemoryNodeConfig { batches: 64, ..Default::default() },
    ));
    let (_, mut actuator) = smart_memory(&memory, MemoryConfig::default());
    memory.with(|n| {
        n.migrate_to_remote(1);
        n.migrate_to_remote(2);
    });
    actuator.clean_up(Timestamp::from_secs(1));
    actuator.clean_up(Timestamp::from_secs(2));
    assert_eq!(memory.with(|n| n.remote_batch_count()), 0);
}

#[test]
fn deterministic_experiments_reproduce_exactly() {
    let run = || {
        let node = Shared::new(CpuNode::new(
            OverclockWorkloadKind::ObjectStore.build(8),
            CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
        ));
        let (model, actuator) = smart_overclock(&node, OverclockConfig::default());
        let runtime = SimRuntime::new(model, actuator, overclock_schedule(), node.clone());
        let report = runtime.run_for(SimDuration::from_secs(60)).unwrap();
        (report.stats, node.with(|n| n.energy_joules()))
    };
    let (stats_a, energy_a) = run();
    let (stats_b, energy_b) = run();
    assert_eq!(stats_a, stats_b);
    assert_eq!(energy_a, energy_b);
}
