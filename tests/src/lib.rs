//! Cross-crate integration and property tests for the SOL reproduction.
//!
//! The actual tests live in `tests/tests/`; this library only exists to make
//! the directory a workspace member.
