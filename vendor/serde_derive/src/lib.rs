//! Offline stand-in for `serde_derive`.
//!
//! The workspace runs in an environment without access to crates.io, and
//! nothing in the codebase actually serializes data yet — the derives exist so
//! the public types are serialization-ready the moment a real backend is
//! wired in. The companion `serde` stub blanket-implements its marker traits,
//! so these derives can expand to nothing.

use proc_macro::TokenStream;

/// No-op derive for `Serialize`; the `serde` stub's blanket impl covers every
/// type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive for `Deserialize`; the `serde` stub's blanket impl covers
/// every type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
