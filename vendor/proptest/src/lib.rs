//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API the integration suites use — the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, range / tuple /
//! collection / `any::<T>()` strategies, and [`ProptestConfig`] — backed by a
//! deterministic RNG. Unlike real proptest there is no shrinking and no
//! persistence file: every run draws the same cases because the per-test seed
//! is derived from a fixed constant and the test's name (override the constant
//! with `SOL_PROPTEST_SEED` to explore a different fixed stream). This
//! determinism is deliberate: the tier-1 pipeline must be reproducible.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{Arbitrary, Strategy};

/// Base seed mixed with each test's name to pin the case stream. All suites
/// are reproducible run-to-run because this never changes within a build.
pub const DEFAULT_BASE_SEED: u64 = 0x501_CAFE_F00D;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case: carries the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives the cases of one property: owns the RNG and the case budget.
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
}

impl TestRunner {
    /// Creates a runner whose RNG is seeded from the fixed base seed and the
    /// property's name, so each property sees a stable but distinct stream.
    pub fn new(config: &ProptestConfig, test_name: &str) -> Self {
        let base = std::env::var("SOL_PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_BASE_SEED);
        // FNV-1a over the test name keeps seeds stable across runs and rustc
        // versions (unlike `DefaultHasher`, which is unspecified).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        TestRunner { rng: StdRng::seed_from_u64(base ^ h), cases: config.cases }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The runner's RNG, handed to strategies when sampling a case.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Defines property tests: each `fn` is run against `cases` sampled inputs.
///
/// Supports the standard proptest surface used in this repo:
/// `#![proptest_config(...)]`, doc comments, `#[test]` attributes, and
/// `pattern in strategy` argument lists.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner = $crate::TestRunner::new(&config, stringify!($name));
            for case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::sample(&($strat), runner.rng());)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        runner.cases(),
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// A weighted choice between strategies yielding one value type
/// (`proptest::prop_oneof!`). Weights are optional; unweighted arms weigh 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, ::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Like `assert!`, but reports the failure through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but reports the failure through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Like `assert_ne!`, but reports the failure through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}
