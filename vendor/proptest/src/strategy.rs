//! Strategies: deterministic value generators for property cases.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of values for one property argument.
///
/// Unlike real proptest there is no value tree or shrinking; a strategy just
/// samples a concrete value from the runner's RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps this strategy's values through `f`
    /// (`proptest::strategy::Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A weighted union of strategies over one value type; built by the
/// [`prop_oneof!`](crate::prop_oneof) macro.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positively weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick is bounded by the total");
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// A strategy that always yields clones of one value (`proptest::prelude::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
