//! Collection strategies (`prop::collection::vec`).

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

use crate::strategy::Strategy;

/// Strategy producing `Vec`s whose elements come from an inner strategy and
/// whose length is drawn from a half-open range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vectors of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
