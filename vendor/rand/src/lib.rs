//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds without crates.io access, so this crate provides the
//! subset of the `rand` 0.8 API the reproduction uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`], and uniform
//! sampling over primitive ranges. The generator is xoshiro256++ seeded via
//! SplitMix64, so every draw is deterministic given the seed — which the
//! reproduction relies on for reproducible experiments.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Seeding support for reproducible generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A distribution that can produce values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over the type's natural domain
/// (`[0, 1)` for floats, all values for integers and `bool`).
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range of values that supports uniform sampling.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u: f64 = Standard.sample(rng);
                self.start + (self.end - self.start) * u as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let u: f64 = Standard.sample(rng);
                start + (end - start) * u as $t
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, the stand-in for `rand`'s
    /// `StdRng`. Identical seeds always produce identical streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
