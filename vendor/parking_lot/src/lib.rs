//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides `Mutex`/`MutexGuard` and `RwLock` with parking_lot's
//! non-poisoning API (locking never returns `Result`); a poisoned std lock is
//! recovered rather than propagated, matching parking_lot's behaviour of not
//! tracking panics.

#![warn(missing_docs)]

use std::sync;

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never fails (panics in other holders are absorbed).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
