//! Offline stand-in for `parking_lot`.
//!
//! Provides `Mutex`/`MutexGuard` and `RwLock` with parking_lot's
//! non-poisoning API (locking never returns `Result`). The mutex is a
//! word-sized spin lock with the same shape as parking_lot's fast path: an
//! uncontended acquire is one inlined compare-and-swap, release is one
//! store. That matters here — simulation substrates sit behind these locks
//! and are locked several times per event, always uncontended (the fleet
//! protocol hands each node to exactly one thread at a time), so lock
//! overhead is pure per-event tax. Under actual contention the lock spins
//! briefly and then yields to the scheduler rather than parking, the right
//! trade for the short critical sections in this codebase.
//!
//! `RwLock` stays backed by `std::sync` (poison-recovering): nothing
//! performance-sensitive uses it.

#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::sync;
use std::sync::atomic::{AtomicBool, Ordering};

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never fails and whose uncontended acquire is a
/// single compare-and-swap.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// Exclusive access is enforced by the `locked` flag, so the usual mutex
// bounds apply: sharing the lock across threads needs `T: Send`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { locked: AtomicBool::new(false), value: UnsafeCell::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.lock_contended();
        }
        MutexGuard { lock: self }
    }

    /// The slow path: spin briefly (critical sections here are short), then
    /// yield so a same-core holder can run — the host may be single-core.
    #[cold]
    fn lock_contended(&self) {
        let mut spins = 0u32;
        loop {
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if self.locked.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_ok() {
            Some(MutexGuard { lock: self })
        } else {
            None
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // Sound: the guard holds the lock, so access is exclusive.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock whose acquisitions never fail (panics in other
/// holders are absorbed).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(0);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn contended_increments_are_not_lost() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 40_000);
    }

    #[test]
    fn debug_formats_value_or_locked() {
        let m = Mutex::new(7);
        assert_eq!(format!("{m:?}"), "Mutex(7)");
        let guard = m.lock();
        assert_eq!(format!("{m:?}"), "Mutex(<locked>)");
        drop(guard);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
