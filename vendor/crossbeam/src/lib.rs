//! Offline stand-in for `crossbeam`, covering the channel and deque APIs the
//! threaded runtime uses. `std::sync::mpsc` provides the same unbounded MPSC
//! semantics and an identical `RecvTimeoutError`, so the channel mapping is
//! direct; the deque is a mutex-guarded `VecDeque` behind the
//! `crossbeam-deque` worker/stealer surface.

#![warn(missing_docs)]

/// Multi-producer single-consumer channels (crossbeam-channel subset).
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Work-stealing deques (crossbeam-deque subset).
///
/// A [`Worker`](deque::Worker) owns one end of a deque; any number of
/// [`Stealer`](deque::Stealer) handles
/// can take tasks from the other end. The real crate is lock-free; this
/// stand-in serializes each deque behind a mutex, which preserves the API
/// and the semantics (every pushed task is claimed exactly once) at the cost
/// of contention the in-tree workloads never exercise hard — a steal only
/// happens when a worker's own deque runs dry.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The outcome of one [`Stealer::steal`] attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was empty at the time of the attempt.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }
    }

    /// The owning end of a work-stealing deque.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO deque: the owner pops from the same end stealers
        /// take from, so tasks are claimed in push order.
        pub fn new_fifo() -> Worker<T> {
            Worker { inner: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Pushes a task onto the deque.
        pub fn push(&self, task: T) {
            self.lock().push_back(task);
        }

        /// Pops a task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        /// Whether the deque was empty at the time of the call.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        /// Number of tasks in the deque at the time of the call.
        pub fn len(&self) -> usize {
            self.lock().len()
        }

        /// Creates a new stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { inner: Arc::clone(&self.inner) }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(|poison| poison.into_inner())
        }
    }

    impl<T> std::fmt::Debug for Worker<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Worker").field("len", &self.len()).finish()
        }
    }

    /// A handle that takes tasks from a [`Worker`]'s deque.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Attempts to steal one task.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.try_lock() {
                Ok(mut deque) => match deque.pop_front() {
                    Some(task) => Steal::Success(task),
                    None => Steal::Empty,
                },
                Err(std::sync::TryLockError::WouldBlock) => Steal::Retry,
                Err(std::sync::TryLockError::Poisoned(poison)) => {
                    match poison.into_inner().pop_front() {
                        Some(task) => Steal::Success(task),
                        None => Steal::Empty,
                    }
                }
            }
        }

        /// Whether the deque was empty at the time of the call.
        pub fn is_empty(&self) -> bool {
            match self.inner.try_lock() {
                Ok(deque) => deque.is_empty(),
                Err(std::sync::TryLockError::WouldBlock) => false,
                Err(std::sync::TryLockError::Poisoned(poison)) => poison.into_inner().is_empty(),
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> std::fmt::Debug for Stealer<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Stealer").finish_non_exhaustive()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_is_push_order() {
            let worker = Worker::new_fifo();
            for task in 0..4 {
                worker.push(task);
            }
            assert_eq!(worker.len(), 4);
            assert_eq!(worker.pop(), Some(0));
            let stealer = worker.stealer();
            assert_eq!(stealer.steal(), Steal::Success(1));
            assert_eq!(worker.pop(), Some(2));
            assert_eq!(stealer.steal().success(), Some(3));
            assert_eq!(stealer.steal(), Steal::Empty);
            assert!(worker.is_empty() && stealer.is_empty());
        }

        #[test]
        fn every_task_is_claimed_exactly_once() {
            let worker = Worker::new_fifo();
            for task in 0..1000u32 {
                worker.push(task);
            }
            let stealer = worker.stealer();
            let thief = std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match stealer.steal() {
                        Steal::Success(task) => got.push(task),
                        Steal::Retry => continue,
                        Steal::Empty => return got,
                    }
                }
            });
            let mut mine = Vec::new();
            while let Some(task) = worker.pop() {
                mine.push(task);
            }
            let stolen = thief.join().unwrap();
            let mut all: Vec<u32> = mine.into_iter().chain(stolen).collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<u32>>());
        }
    }
}
