//! Offline stand-in for `crossbeam`, covering the channel API the threaded
//! runtime uses. `std::sync::mpsc` provides the same unbounded MPSC semantics
//! and an identical `RecvTimeoutError`, so the mapping is direct.

#![warn(missing_docs)]

/// Multi-producer single-consumer channels (crossbeam-channel subset).
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
