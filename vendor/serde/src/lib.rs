//! Offline stand-in for `serde`.
//!
//! The repository builds in an environment without crates.io access, and no
//! code path serializes anything yet. This stub keeps the `#[derive(Serialize,
//! Deserialize)]` annotations on the public types compiling so a real serde
//! can be dropped in later without touching the domain crates: the traits are
//! markers with blanket impls, and the derives (re-exported from the sibling
//! `serde_derive` stub) expand to nothing.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
