//! Offline stand-in for `criterion`.
//!
//! Implements the small slice of the criterion API the `micro` bench target
//! uses: [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is a simple
//! mean-of-samples over wall-clock batches — adequate for spotting
//! order-of-magnitude regressions, with no statistics, plots, or baselines.

#![warn(missing_docs)]

use std::hint::black_box;
use std::time::Instant;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { total_nanos: 0.0, iters: 0 };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let per_iter = bencher.total_nanos / bencher.iters.max(1) as f64;
        println!("bench: {name:<45} {per_iter:>12.1} ns/iter ({} iters)", bencher.iters);
        self
    }
}

/// Times the closure handed to [`Criterion::bench_function`].
pub struct Bencher {
    total_nanos: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` in a timed batch, accumulating into the sample mean.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // A fixed batch size amortizes the Instant overhead; black_box keeps
        // the result (and thus the routine) from being optimized away.
        const BATCH: u64 = 100;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos() as f64;
        self.iters += BATCH;
    }
}

/// Declares a benchmark group as a plain function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running every group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
