//! Regenerates Figure 3: the model safeguard against a broken model that
//! always selects the highest frequency.

use sol_bench::overclock_experiments::fig3;
use sol_bench::report::{fmt, print_table};
use sol_core::time::SimDuration;

fn main() {
    let horizon = SimDuration::from_secs(
        std::env::var("SOL_HORIZON_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(300),
    );
    let rows: Vec<Vec<String>> = fig3(horizon)
        .into_iter()
        .map(|r| {
            vec![
                r.workload,
                if r.model_safeguard { "with model safeguard" } else { "without safeguard" }
                    .to_string(),
                format!("{:+.1}%", r.power_increase_pct),
                fmt(r.normalized_performance),
                r.intercepted_predictions.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 3: broken model (always overclock) vs the model safeguard (relative to correct agent)",
        &["Workload", "Variant", "Power increase", "Norm. performance", "Intercepted"],
        &rows,
    );
}
