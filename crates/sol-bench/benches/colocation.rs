//! Beyond the paper: the co-location interference table. SmartOverclock and
//! SmartHarvest solo, co-located on separate frequency domains, co-located on
//! a shared frequency domain, with a targeted Model-thread delay, and the
//! full three-agent population (SmartMemory joins via the
//! frequency→memory-bandwidth coupling).
//!
//! `SOL_HORIZON_SECS` shortens the horizon (CI runs this in quick mode).

use sol_bench::colocation_experiments::interference_table;
use sol_bench::report::{fmt, print_table};
use sol_core::time::SimDuration;

fn main() {
    let horizon = SimDuration::from_secs(horizon_secs());
    let opt = |v: Option<f64>| v.map(fmt).unwrap_or_else(|| "-".into());
    let rows: Vec<Vec<String>> = interference_table(horizon)
        .into_iter()
        .map(|r| {
            let oc = r.overclock_stats;
            let hv = r.harvest_stats;
            let mem = r.memory_stats;
            vec![
                r.scenario,
                opt(r.perf_score),
                opt(r.avg_power_watts),
                opt(r.p99_latency_ms),
                opt(r.harvested_core_seconds),
                opt(r.slo_attainment),
                oc.map(|s| s.model.epochs_completed.to_string()).unwrap_or_else(|| "-".into()),
                hv.map(|s| {
                    format!("{} / {}", s.model.default_predictions, s.actuator.safeguard_triggers)
                })
                .unwrap_or_else(|| "-".into()),
                mem.zip(r.remote_batches)
                    .map(|(s, remote)| format!("{} / {remote}", s.model.epochs_completed))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print_table(
        "Co-location: per-agent outcomes on one shared node",
        &[
            "Scenario",
            "Perf score",
            "Avg power W",
            "P99 latency ms",
            "Harvested core-s",
            "Mem SLO",
            "OC epochs",
            "HV defaults/trips",
            "Mem epochs/remote",
        ],
        &rows,
    );
}

fn horizon_secs() -> u64 {
    std::env::var("SOL_HORIZON_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(120)
}
