//! Regenerates Table 1: the taxonomy of production node agents in Azure.

use sol_bench::report::{pct, print_table};
use sol_core::taxonomy;

fn main() {
    let rows: Vec<Vec<String>> = taxonomy::table1()
        .into_iter()
        .map(|r| {
            vec![
                r.class.name().to_string(),
                r.count.to_string(),
                r.description.to_string(),
                r.examples.to_string(),
                if r.benefits_from_learning { "Yes" } else { "No" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1: taxonomy of production agents",
        &["Class", "Count", "Description", "Examples", "Benefit?"],
        &rows,
    );
    println!(
        "\nTotal agents: {}   Fraction that can benefit from learning: {}",
        taxonomy::total_agents(),
        pct(taxonomy::learning_benefit_fraction())
    );
}
