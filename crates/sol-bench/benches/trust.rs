//! Trust-plane detection quality: how fast the fleet identifies persistent
//! sign-flip poisoners, and what it costs honest nodes, at 64 and 256 nodes.
//!
//! Two fleets per size, same shape and default [`TrustPolicy`]: a poisoned
//! one (one victim per eight nodes, sign-flip ×4 exports) measuring detection
//! latency — the worst victim's scored-round count, since scoring stops at
//! quarantine — and a clean one measuring the false-positive floor. Honest
//! nodes flagged in either run count as false positives.
//!
//! The rows are merged into the committed `BENCH_fleet.json` artifact under
//! `trust_*` keys. The keys deliberately do not collide with the fleet
//! scaling rows' `nodes`/`threads`/`wall_ms_per_node_minute` cells, so the
//! trajectory diff (`compare_fleet_rows`) skips them by construction.
//!
//! Quick-mode knobs:
//! * `SOL_TRUST_HORIZON_SECS` — virtual horizon per fleet run (default 60).
//!
//! [`TrustPolicy`]: sol_core::runtime::trust::TrustPolicy

use std::time::Instant;

use sol_agents::poison::{poisoned_overclock_recipe, PoisonAttack, PoisonedOverclockConfig};
use sol_bench::report::{env_u64, fmt, json_rows, pct, print_table};
use sol_bench::trajectory::merge_artifact_rows;
use sol_core::prelude::*;
use sol_ml::exchange::{AggregationRule, BlendPolicy};

const SCHEMA_VERSION: f64 = 2.0;
const ARTIFACT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
const FLEET_SEED: u64 = 0x1EA2;

fn run(nodes: usize, victims: usize, horizon_secs: u64) -> (FleetReport, Vec<usize>) {
    let preset = poisoned_overclock_recipe(PoisonedOverclockConfig {
        victims,
        attack: PoisonAttack::SignFlip { gain: 4.0 },
        nodes,
        ..PoisonedOverclockConfig::default()
    });
    let config = FleetConfig {
        nodes,
        threads: 8,
        seed: FLEET_SEED,
        learning: Some(LearningPlane {
            exchange_every: 5,
            rule: AggregationRule::CoordinateWiseMedian,
            blend: BlendPolicy::Replace,
        }),
        trust: Some(TrustPolicy::default()),
        ..FleetConfig::default()
    };
    let report = FleetRuntime::new(preset.recipe, config)
        .expect("trust bench config is valid")
        .run(SimDuration::from_secs(horizon_secs))
        .expect("trust bench fleet runs");
    (report, preset.plan.victims().to_vec())
}

fn main() {
    let horizon_secs = env_u64("SOL_TRUST_HORIZON_SECS", 60).max(1);

    let mut json: Vec<Vec<(&str, f64)>> = Vec::new();
    let mut table: Vec<Vec<String>> = Vec::new();
    for nodes in [64usize, 256] {
        let victims = nodes / 8;
        let start = Instant::now();
        let (poisoned, victim_set) = run(nodes, victims, horizon_secs);
        let (clean, _) = run(nodes, 0, horizon_secs);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;

        // Worst-case detection latency: a quarantined node stops being
        // scored, so its scored-round count is the rounds the detector needed.
        let detect_rounds = poisoned
            .nodes
            .iter()
            .filter(|n| victim_set.contains(&n.node))
            .map(|n| n.trust.rounds_scored)
            .max()
            .unwrap_or(0);
        assert_eq!(
            poisoned.trust.quarantines, victims as u64,
            "{nodes}-node bench fleet must quarantine every victim"
        );

        // False positives: honest nodes flagged in either run. The clean
        // fleet contributes its entire population; the poisoned one its
        // honest majority.
        let flagged = |report: &FleetReport, victims: &[usize]| {
            report
                .nodes
                .iter()
                .filter(|n| !victims.contains(&n.node))
                .filter(|n| n.trust.verdict != TrustVerdict::Trusted)
                .count()
        };
        let false_positives = flagged(&poisoned, &victim_set) + flagged(&clean, &[]);
        let honest_population = (nodes - victims) + nodes;
        let fp_rate = false_positives as f64 / honest_population as f64;

        json.push(vec![
            ("schema_version", SCHEMA_VERSION),
            ("trust_nodes", nodes as f64),
            ("trust_victims", victims as f64),
            ("trust_detect_rounds", detect_rounds as f64),
            ("trust_quarantines", poisoned.trust.quarantines as f64),
            ("trust_false_positive_rate", fp_rate),
            ("trust_wall_ms", wall_ms),
        ]);
        table.push(vec![
            nodes.to_string(),
            victims.to_string(),
            detect_rounds.to_string(),
            format!("{}/{}", poisoned.trust.quarantines, victims),
            pct(fp_rate),
            fmt(wall_ms),
        ]);
    }

    let existing = std::fs::read_to_string(ARTIFACT).unwrap_or_else(|_| "[\n]\n".to_string());
    match merge_artifact_rows(&existing, &json_rows(&json), "trust_nodes")
        .and_then(|merged| std::fs::write(ARTIFACT, merged).map_err(|e| e.to_string()))
    {
        Ok(()) => eprintln!("merged {} trust rows into {ARTIFACT}", json.len()),
        Err(e) => eprintln!("could not update {ARTIFACT}: {e}"),
    }

    print_table(
        "Trust plane: sign-flip detection latency and false-positive floor",
        &["Nodes", "Victims", "Detect rounds", "Quarantined", "FP rate", "Wall ms"],
        &table,
    );
}
