//! Regenerates Figure 1: SmartOverclock vs static frequency policies
//! (normalized performance and power on Synthetic, ObjectStore, DiskSpeed).

use sol_bench::overclock_experiments::fig1;
use sol_bench::report::{fmt, print_table};
use sol_core::time::SimDuration;

fn main() {
    let horizon = SimDuration::from_secs(horizon_secs());
    let rows: Vec<Vec<String>> = fig1(horizon)
        .into_iter()
        .map(|r| vec![r.workload, r.policy, fmt(r.normalized_performance), fmt(r.normalized_power)])
        .collect();
    print_table(
        "Figure 1: SmartOverclock vs static overclocking (normalized to static 1.5 GHz)",
        &["Workload", "Policy", "Norm. performance", "Norm. power"],
        &rows,
    );
}

fn horizon_secs() -> u64 {
    std::env::var("SOL_HORIZON_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(300)
}
