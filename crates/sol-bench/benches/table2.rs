//! Regenerates Table 2: examples of on-node learning resource-control agents.

use sol_bench::report::print_table;
use sol_core::taxonomy;

fn main() {
    let rows: Vec<Vec<String>> = taxonomy::table2()
        .into_iter()
        .map(|r| {
            vec![
                r.agent.to_string(),
                r.goal.to_string(),
                r.action.to_string(),
                r.frequency.to_string(),
                r.inputs.to_string(),
                r.model.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 2: examples of on-node learning resource control agents",
        &["Agent", "Goal", "Action", "Frequency", "Inputs", "Model"],
        &rows,
    );
}
