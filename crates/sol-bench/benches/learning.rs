//! Learning-plane aggregation cost: what one fleet-wide exchange round costs
//! the coordinator, per aggregation rule, at 64 and 256 participating nodes.
//!
//! Each participant ships a Q-table shaped like SmartOverclock's (16 states ×
//! 4 actions); one round folds all of them coordinate-by-coordinate. The
//! robust rules sort each coordinate's column, so their cost grows
//! `O(n log n)` in the node count where the mean grows `O(n)` — this table
//! keeps that premium visible.
//!
//! The rows are merged into the committed `BENCH_fleet.json` artifact under
//! `learning_*` keys. The keys deliberately do not collide with the fleet
//! scaling rows' `nodes`/`threads`/`wall_ms_per_node_minute` cells, so the
//! trajectory diff (`compare_fleet_rows`) skips them by construction.
//!
//! Quick-mode knobs:
//! * `SOL_LEARNING_ROUNDS` — timed aggregation rounds per cell (default 200).

use std::time::Instant;

use sol_bench::report::{env_u64, fmt, json_rows, print_table};
use sol_bench::trajectory::merge_artifact_rows;
use sol_ml::exchange::{AggregationRule, LearnedState, StateKind};

const SCHEMA_VERSION: f64 = 2.0;
const ARTIFACT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");

/// Deterministic pseudo-table for one node: varied values, no RNG needed.
fn q_table(node: usize, values: usize) -> LearnedState {
    let values: Vec<f64> =
        (0..values).map(|i| ((node * values + i) as f64 * 0.137).sin()).collect();
    LearnedState::new(StateKind::QTable, vec![16, 4], values).unwrap()
}

fn main() {
    let rounds = env_u64("SOL_LEARNING_ROUNDS", 200).max(1);
    let node_counts = [64usize, 256];
    let rules = [
        (0.0, "mean", AggregationRule::Mean),
        (1.0, "median", AggregationRule::CoordinateWiseMedian),
        (2.0, "trimmed(k=2)", AggregationRule::TrimmedMean { k: 2 }),
    ];

    let mut json: Vec<Vec<(&str, f64)>> = Vec::new();
    let mut table: Vec<Vec<String>> = Vec::new();
    for &nodes in &node_counts {
        let states: Vec<LearnedState> = (0..nodes).map(|n| q_table(n, 64)).collect();
        for (rule_id, label, rule) in &rules {
            let start = Instant::now();
            let mut sink = 0.0;
            for _ in 0..rounds {
                sink += rule.aggregate(&states).unwrap().values()[0];
            }
            let ms_per_round = start.elapsed().as_secs_f64() * 1e3 / rounds as f64;
            assert!(sink.is_finite());
            json.push(vec![
                ("schema_version", SCHEMA_VERSION),
                ("learning_nodes", nodes as f64),
                ("learning_rule", *rule_id),
                ("learning_agg_ms_per_round", ms_per_round),
            ]);
            table.push(vec![
                nodes.to_string(),
                (*label).to_string(),
                fmt(ms_per_round),
                fmt(ms_per_round * 1e3 / nodes as f64),
            ]);
        }
    }

    let existing = std::fs::read_to_string(ARTIFACT).unwrap_or_else(|_| "[\n]\n".to_string());
    match merge_artifact_rows(&existing, &json_rows(&json), "learning_nodes")
        .and_then(|merged| std::fs::write(ARTIFACT, merged).map_err(|e| e.to_string()))
    {
        Ok(()) => eprintln!("merged {} learning rows into {ARTIFACT}", json.len()),
        Err(e) => eprintln!("could not update {ARTIFACT}: {e}"),
    }

    print_table(
        "Learning plane: one aggregation round over 64-value Q-tables",
        &["Nodes", "Rule", "Round ms", "µs/node"],
        &table,
    );
}
