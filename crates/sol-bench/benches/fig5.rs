//! Regenerates Figure 5: the Actuator safeguard disabling overclocking during
//! long idle phases.

use sol_bench::overclock_experiments::fig5;
use sol_bench::report::{fmt, pct, print_table};
use sol_core::time::SimDuration;

fn main() {
    let horizon = SimDuration::from_secs(
        std::env::var("SOL_HORIZON_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(900),
    );
    let rows: Vec<Vec<String>> = fig5(horizon)
        .into_iter()
        .map(|r| {
            vec![
                if r.actuator_safeguard { "with actuator safeguard" } else { "without safeguard" }
                    .to_string(),
                fmt(r.idle_power_watts),
                fmt(r.active_power_watts),
                pct(r.idle_overclocked_fraction),
                r.safeguard_triggers.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 5: Actuator safeguard during long idle phases",
        &["Variant", "Idle power (W)", "Active power (W)", "Idle time overclocked", "Triggers"],
        &rows,
    );
}
