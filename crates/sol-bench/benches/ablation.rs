//! Ablation of SmartOverclock design choices called out in DESIGN.md:
//! exploration rate and Actuator-safeguard threshold.

use sol_agents::overclock::OverclockConfig;
use sol_bench::overclock_experiments::run_smart_overclock;
use sol_bench::report::{fmt, print_table};
use sol_core::time::SimDuration;
use sol_node_sim::workload::OverclockWorkloadKind;

fn main() {
    let horizon = SimDuration::from_secs(
        std::env::var("SOL_HORIZON_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(200),
    );
    let mut rows = Vec::new();
    for exploration in [0.0, 0.05, 0.1, 0.25] {
        let config = OverclockConfig { exploration, ..Default::default() };
        let (outcome, _) = run_smart_overclock(OverclockWorkloadKind::ObjectStore, config, horizon);
        rows.push(vec![
            format!("exploration = {exploration}"),
            fmt(outcome.performance),
            fmt(outcome.power_watts),
        ]);
    }
    for threshold in [0.01, 0.05, 0.2] {
        let config = OverclockConfig { alpha_threshold: threshold, ..Default::default() };
        let (outcome, _) = run_smart_overclock(OverclockWorkloadKind::Synthetic, config, horizon);
        rows.push(vec![
            format!("alpha threshold = {threshold}"),
            fmt(outcome.performance),
            fmt(outcome.power_watts),
        ]);
    }
    print_table(
        "Ablation: SmartOverclock design parameters",
        &["Configuration", "Performance score", "Average power (W)"],
        &rows,
    );
}
