//! Regenerates Figure 7: SmartMemory vs static access-bit scanning
//! (reset reduction, local memory size reduction, SLO attainment).

use sol_bench::memory_experiments::fig7;
use sol_bench::report::{pct, print_table};
use sol_core::time::SimDuration;

fn main() {
    let horizon = SimDuration::from_secs(
        std::env::var("SOL_HORIZON_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(600),
    );
    let rows: Vec<Vec<String>> = fig7(horizon)
        .into_iter()
        .map(|r| {
            vec![
                r.workload,
                r.policy,
                format!("{:.1}%", r.reset_reduction_pct),
                format!("{:.1}%", r.local_size_reduction_pct),
                pct(r.slo_attainment),
            ]
        })
        .collect();
    print_table(
        "Figure 7: SmartMemory vs static access-bit scanning",
        &[
            "Workload",
            "Policy",
            "Reset reduction vs 300 ms",
            "Local size reduction",
            "SLO attainment",
        ],
        &rows,
    );
}
