//! Churn-under-failure sweep: the placeable co-location fleet under the
//! `GreedyPacker` while a seeded `FaultPlan` crashes, joins, and drains
//! servers mid-run. One row per crash count (each crash matched by a join,
//! plus one drain), reporting the displaced/re-placed accounting and the
//! surviving fleet's safety dashboard — learning must survive the churn.
//!
//! Quick-mode knobs (used by CI so the table cannot silently rot):
//! * `SOL_HORIZON_SECS` — virtual horizon per fleet run (default 60).
//! * `SOL_FAILURE_NODES` — initial fleet size (default 8).

use sol_bench::fleet_experiments::failure_sweep;
use sol_bench::report::{env_u64, fmt, pct, print_table};
use sol_core::time::SimDuration;

fn main() {
    let horizon = SimDuration::from_secs(env_u64("SOL_HORIZON_SECS", 60));
    let nodes = env_u64("SOL_FAILURE_NODES", 8) as usize;
    let arrivals = nodes * 4;
    // Crash up to half the fleet (leaving room for the matched drain).
    let crash_counts: Vec<usize> = [0usize, 1, 2, 4].into_iter().filter(|&c| c < nodes).collect();

    let rows: Vec<Vec<String>> = failure_sweep(nodes, 4, arrivals, horizon, &crash_counts)
        .into_iter()
        .map(|r| {
            vec![
                format!("{}/{}/{}", r.crashes, r.joins, r.drains),
                r.fleet_size.to_string(),
                r.surviving_nodes.to_string(),
                r.displaced.to_string(),
                r.replaced.to_string(),
                r.failed_placements.to_string(),
                pct(r.harvest_safeguard_rate),
                fmt(r.mean_p99_latency_ms),
                fmt(r.wall_ms_per_virtual_minute),
            ]
        })
        .collect();

    print_table(
        &format!("Churn under failure: {nodes}-node fleet, {arrivals} VM arrivals"),
        &[
            "Crash/Join/Drain",
            "Fleet size",
            "Surviving",
            "Displaced",
            "Re-placed",
            "Failed",
            "HV safeguard rate",
            "P99 ms mean",
            "Wall ms/virt-min",
        ],
        &rows,
    );
}
