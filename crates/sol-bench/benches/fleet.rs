//! Fleet scaling table: the default two-agent co-location recipe stamped out
//! across 1/8/64/256 simulated servers, crossed with worker-thread counts,
//! reporting wall-clock per virtual minute (total and per node). The fleet
//! outcome columns are thread-count independent by construction — only the
//! wall-clock columns may vary between thread counts (and only show a
//! speedup when the host actually has spare cores).
//!
//! Quick-mode knobs (used by CI so the table cannot silently rot):
//! * `SOL_HORIZON_SECS` — virtual horizon per fleet run (default 60).
//! * `SOL_FLEET_MAX_NODES` — drop fleet sizes above this bound (default 256;
//!   CI uses 8).

use sol_bench::fleet_experiments::scaling_table;
use sol_bench::report::{env_u64, fmt, json_rows, print_table};
use sol_core::time::SimDuration;

fn main() {
    let horizon = SimDuration::from_secs(env_u64("SOL_HORIZON_SECS", 60));
    let max_nodes = env_u64("SOL_FLEET_MAX_NODES", 256) as usize;
    let node_counts: Vec<usize> =
        [1usize, 8, 64, 256].into_iter().filter(|&n| n <= max_nodes).collect();
    let thread_counts = [1usize, 2, 4, 8];

    let table = scaling_table(&node_counts, &thread_counts, horizon);

    // The machine-readable artifact CI uploads: one flat object per
    // nodes × threads combination.
    let json = json_rows(
        &table
            .iter()
            .map(|r| {
                vec![
                    ("nodes", r.nodes as f64),
                    ("threads", r.threads as f64),
                    ("wall_ms_per_virtual_minute", r.wall_ms_per_virtual_minute),
                ]
            })
            .collect::<Vec<_>>(),
    );
    match std::fs::write("BENCH_fleet.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_fleet.json ({} rows)", table.len()),
        Err(e) => eprintln!("could not write BENCH_fleet.json: {e}"),
    }

    let rows: Vec<Vec<String>> = table
        .into_iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                r.threads.to_string(),
                fmt(r.wall_ms_per_virtual_minute),
                fmt(r.wall_ms_per_node_minute),
                r.epochs.to_string(),
                r.overclock_epochs.to_string(),
                fmt(r.harvest_safeguard_rate),
                format!("{} / {}", fmt(r.mean_p99_latency_ms), fmt(r.max_p99_latency_ms)),
                fmt(r.total_harvested_core_seconds),
            ]
        })
        .collect();

    print_table(
        "Fleet scaling: wall-clock per virtual minute vs fleet size and threads",
        &[
            "Nodes",
            "Threads",
            "Wall ms/virt-min",
            "Wall ms/node-min",
            "Sync epochs",
            "OC epochs",
            "HV safeguard rate",
            "P99 ms mean/max",
            "Harvested core-s",
        ],
        &rows,
    );
}
