//! Fleet scaling table: the default two-agent co-location recipe stamped out
//! across 1/8/64/256/1024/4096 simulated servers (65536 on demand), crossed
//! with worker-thread counts, reporting wall-clock per virtual minute (total
//! and per node) and the peak per-node memory footprint. The fleet outcome
//! columns are thread-count independent by construction — only the
//! wall-clock columns may vary between thread counts (and only show a
//! speedup when the host actually has spare cores).
//!
//! The machine-readable artifact is committed at the repo root as
//! `BENCH_fleet.json` (schema v3: one flat object per nodes × threads cell,
//! with total and per-node wall costs plus `mem_bytes_per_node`), so every
//! PR carries the perf trajectory in-history and CI can diff a branch
//! against its parent. This bench owns only the rows keyed `"nodes"`: it
//! merges into the artifact, leaving the learning and memory benches' rows
//! untouched.
//!
//! Quick-mode knobs (used by CI so the table cannot silently rot):
//! * `SOL_HORIZON_SECS` — virtual horizon per fleet run (default 60).
//! * `SOL_FLEET_MAX_NODES` — drop fleet sizes above this bound (default
//!   4096; CI's quick tier uses 1024, the nightly/manual tier raises it to
//!   65536 to exercise the top cell).

use sol_bench::fleet_experiments::scaling_table;
use sol_bench::report::{env_u64, fmt, json_rows, print_table};
use sol_bench::trajectory::merge_artifact_rows;
use sol_core::time::SimDuration;

/// Version of the `BENCH_fleet.json` row layout; bump when adding, removing,
/// or re-interpreting fields so trajectory tooling can refuse mismatches
/// instead of misreading them. v3 added `mem_bytes_per_node`.
const SCHEMA_VERSION: f64 = 3.0;

/// The committed artifact lives at the repo root, not the crate root — the
/// bench is always run from a workspace checkout, so the manifest-relative
/// path is stable no matter the invoking directory.
const ARTIFACT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");

fn main() {
    let horizon = SimDuration::from_secs(env_u64("SOL_HORIZON_SECS", 60));
    let max_nodes = env_u64("SOL_FLEET_MAX_NODES", 4096) as usize;
    let node_counts: Vec<usize> =
        [1usize, 8, 64, 256, 1024, 4096, 65536].into_iter().filter(|&n| n <= max_nodes).collect();
    let thread_counts = [1usize, 2, 4, 8];

    let table = scaling_table(&node_counts, &thread_counts, horizon);

    let json = json_rows(
        &table
            .iter()
            .map(|r| {
                vec![
                    ("schema_version", SCHEMA_VERSION),
                    ("nodes", r.nodes as f64),
                    ("threads", r.threads as f64),
                    ("wall_ms_per_virtual_minute", r.wall_ms_per_virtual_minute),
                    ("wall_ms_per_node_minute", r.wall_ms_per_node_minute),
                    ("mem_bytes_per_node", r.mem_bytes_per_node as f64),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let existing = std::fs::read_to_string(ARTIFACT).unwrap_or_else(|_| "[\n]\n".to_string());
    match merge_artifact_rows(&existing, &json, "nodes")
        .and_then(|merged| std::fs::write(ARTIFACT, merged).map_err(|e| e.to_string()))
    {
        Ok(()) => eprintln!("merged {} fleet rows into {ARTIFACT}", table.len()),
        Err(e) => eprintln!("could not update {ARTIFACT}: {e}"),
    }

    let rows: Vec<Vec<String>> = table
        .into_iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                r.threads.to_string(),
                fmt(r.wall_ms_per_virtual_minute),
                fmt(r.wall_ms_per_node_minute),
                fmt(r.mem_bytes_per_node as f64 / 1024.0),
                r.epochs.to_string(),
                r.overclock_epochs.to_string(),
                fmt(r.harvest_safeguard_rate),
                format!("{} / {}", fmt(r.mean_p99_latency_ms), fmt(r.max_p99_latency_ms)),
                fmt(r.total_harvested_core_seconds),
            ]
        })
        .collect();

    print_table(
        "Fleet scaling: wall-clock per virtual minute vs fleet size and threads",
        &[
            "Nodes",
            "Threads",
            "Wall ms/virt-min",
            "Wall ms/node-min",
            "Mem KiB/node",
            "Sync epochs",
            "OC epochs",
            "HV safeguard rate",
            "P99 ms mean/max",
            "Harvested core-s",
        ],
        &rows,
    );
}
