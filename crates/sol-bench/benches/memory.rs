//! Per-node memory budget: what one simulated server costs to keep resident,
//! measured at fleet scale over a quick horizon.
//!
//! Wall-clock cells need a long horizon to rise above measurement noise, but
//! the memory footprint is a pure function of the trajectory and saturates
//! within a few virtual seconds (the latency windows fill, the wheel's slot
//! buffers reach steady state) — so this bench runs a short horizon and
//! large fleets, where the full scaling table would be prohibitively slow.
//!
//! The rows are merged into the committed `BENCH_fleet.json` artifact under
//! `memory_*` keys. The keys deliberately do not collide with the fleet
//! scaling rows' `nodes`/`threads` cells, so the wall-time trajectory diff
//! (`compare_fleet_rows`) skips them by construction — a quick-horizon wall
//! number must never be compared against a full-horizon baseline.
//!
//! Quick-mode knobs:
//! * `SOL_MEMORY_HORIZON_SECS` — virtual horizon per run (default 5).
//! * `SOL_MEMORY_MAX_NODES` — drop fleet sizes above this bound (default
//!   1024, CI's quick tier; the nightly/manual tier raises it to 65536 to
//!   pin the memory ceiling's top cell).

use sol_bench::fleet_experiments::fleet_scaling_row;
use sol_bench::report::{env_u64, fmt, json_rows, print_table};
use sol_bench::trajectory::merge_artifact_rows;
use sol_core::time::SimDuration;

const SCHEMA_VERSION: f64 = 3.0;
const ARTIFACT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");

fn main() {
    let horizon = SimDuration::from_secs(env_u64("SOL_MEMORY_HORIZON_SECS", 5));
    let max_nodes = env_u64("SOL_MEMORY_MAX_NODES", 1024) as usize;
    let node_counts: Vec<usize> =
        [1024usize, 65536].into_iter().filter(|&n| n <= max_nodes).collect();

    let mut json: Vec<Vec<(&str, f64)>> = Vec::new();
    let mut table: Vec<Vec<String>> = Vec::new();
    for &nodes in &node_counts {
        // Memory is thread-count independent (the footprint is per node);
        // 4 workers just finishes the big fleets sooner.
        let row = fleet_scaling_row(nodes, 4, horizon);
        json.push(vec![
            ("schema_version", SCHEMA_VERSION),
            ("memory_nodes", nodes as f64),
            ("memory_horizon_secs", horizon.as_secs_f64()),
            ("mem_bytes_per_node", row.mem_bytes_per_node as f64),
        ]);
        table.push(vec![
            nodes.to_string(),
            fmt(row.mem_bytes_per_node as f64 / 1024.0),
            fmt(nodes as f64 * row.mem_bytes_per_node as f64 / (1024.0 * 1024.0)),
            fmt(row.wall_ms_per_virtual_minute),
        ]);
    }

    let existing = std::fs::read_to_string(ARTIFACT).unwrap_or_else(|_| "[\n]\n".to_string());
    match merge_artifact_rows(&existing, &json_rows(&json), "memory_nodes")
        .and_then(|merged| std::fs::write(ARTIFACT, merged).map_err(|e| e.to_string()))
    {
        Ok(()) => eprintln!("merged {} memory rows into {ARTIFACT}", json.len()),
        Err(e) => eprintln!("could not update {ARTIFACT}: {e}"),
    }

    print_table(
        "Per-node memory budget (quick horizon)",
        &["Nodes", "Peak KiB/node", "Fleet MiB (sim state)", "Wall ms/virt-min"],
        &table,
    );
}
