//! Placement churn sweep: a placeable co-location fleet driven by the
//! harvest-aware `GreedyPacker` over seeded VM arrival traces of rising
//! intensity, with the zero-arrivals row as the churn-free baseline. The
//! safety columns (safeguard-activation rates, mean p99 latency) show how
//! the on-node learners hold up while the platform admits, drains, and
//! migrates VMs under them; the placement columns show what the packer did.
//!
//! Quick-mode knobs (used by CI so the table cannot silently rot):
//! * `SOL_HORIZON_SECS` — virtual horizon per fleet run (default 60).
//! * `SOL_PLACEMENT_NODES` — fleet size (default 8; CI uses 4).

use sol_bench::placement_experiments::churn_sweep;
use sol_bench::report::{env_u64, fmt, print_table};
use sol_core::time::SimDuration;

fn main() {
    let horizon = SimDuration::from_secs(env_u64("SOL_HORIZON_SECS", 60));
    let nodes = env_u64("SOL_PLACEMENT_NODES", 8) as usize;
    let threads = 4;
    // Churn levels scale with the fleet so the quick mode stays meaningful.
    let arrival_counts = [0, nodes, nodes * 4, nodes * 8];

    let rows: Vec<Vec<String>> = churn_sweep(nodes, threads, horizon, &arrival_counts)
        .into_iter()
        .map(|r| {
            vec![
                r.arrivals.to_string(),
                r.commands.to_string(),
                r.admitted.to_string(),
                r.departed.to_string(),
                r.migrated.to_string(),
                r.failed_placements.to_string(),
                fmt(r.packing_efficiency),
                format!("{} / {}", fmt(r.occupancy_p50), fmt(r.occupancy_max)),
                format!("{} / {}", fmt(r.overclock_safeguard_rate), fmt(r.harvest_safeguard_rate)),
                fmt(r.mean_p99_latency_ms),
            ]
        })
        .collect();

    print_table(
        &format!("Placement churn sweep: {nodes} nodes, horizon {horizon}"),
        &[
            "Arrivals",
            "Commands",
            "Admitted",
            "Departed",
            "Migrated",
            "Failed",
            "Packing eff",
            "Occupancy p50/max",
            "Safeguard rate OC/HV",
            "P99 ms mean",
        ],
        &rows,
    );
}
