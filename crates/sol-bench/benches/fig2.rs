//! Regenerates Figure 2: the data-validation safeguard under injected
//! out-of-range IPS readings (Synthetic workload).

use sol_bench::overclock_experiments::fig2;
use sol_bench::report::{fmt, pct, print_table};
use sol_core::time::SimDuration;

fn main() {
    let horizon = SimDuration::from_secs(
        std::env::var("SOL_HORIZON_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(300),
    );
    let rows: Vec<Vec<String>> = fig2(horizon, &[0.0, 0.05, 0.10, 0.20])
        .into_iter()
        .map(|r| {
            vec![
                pct(r.bad_data_fraction),
                if r.validation { "with validation" } else { "without validation" }.to_string(),
                fmt(r.normalized_performance),
                fmt(r.normalized_power),
                r.samples_discarded.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 2: invalid IPS readings vs the data validation safeguard (normalized to fault-free agent)",
        &["Bad data", "Variant", "Norm. performance", "Norm. power", "Samples discarded"],
        &rows,
    );
}
