//! Regenerates Figure 6: the SmartHarvest safeguards (invalid data, broken
//! model, delayed predictions) on image-dnn and moses.

use sol_bench::harvest_experiments::fig6;
use sol_bench::report::{fmt, pct, print_table};
use sol_core::time::SimDuration;

fn main() {
    let horizon = SimDuration::from_secs(
        std::env::var("SOL_HORIZON_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(120),
    );
    let rows: Vec<Vec<String>> = fig6(horizon)
        .into_iter()
        .map(|r| {
            vec![
                r.scenario,
                r.workload,
                r.variant,
                fmt(r.normalized_mean_latency),
                fmt(r.normalized_p99_latency),
                pct(r.starvation_fraction),
                format!("{:.0}", r.harvested_core_seconds),
            ]
        })
        .collect();
    print_table(
        "Figure 6: SmartHarvest safeguards (latency relative to a no-harvesting baseline)",
        &[
            "Scenario",
            "Workload",
            "Variant",
            "Norm. mean latency",
            "Norm. P99 latency",
            "Starved time",
            "Harvested core-s",
        ],
        &rows,
    );
}
