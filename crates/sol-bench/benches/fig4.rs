//! Regenerates Figure 4: non-blocking vs blocking Actuator under a 30-second
//! Model scheduling delay at a workload phase change.

use sol_bench::overclock_experiments::fig4;
use sol_bench::report::print_table;
use sol_core::time::SimDuration;

fn main() {
    let horizon = SimDuration::from_secs(
        std::env::var("SOL_HORIZON_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(280),
    );
    let rows: Vec<Vec<String>> = fig4(horizon)
        .into_iter()
        .map(|r| {
            vec![
                r.actuator,
                format!("{:+.1}%", r.power_increase_pct),
                r.actuation_timeouts.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 4: 30 s Model delay at a phase change (power relative to delay-free run)",
        &["Actuator", "Power increase", "Timeout actions"],
        &rows,
    );
}
