//! Criterion micro-benchmarks of the framework and ML kernels: the per-epoch
//! cost an agent adds to a node (paper §6.1 notes the runtime requires very
//! few resources), plus the event-queue hot path of the node runtime.

use std::collections::BinaryHeap;

use criterion::{criterion_group, criterion_main, Criterion};
use sol_core::error::DataError;
use sol_core::prelude::*;
use sol_core::runtime::wheel::TimeWheel;
use sol_ml::cost_sensitive::{CostSensitiveClassifier, CostSensitiveExample};
use sol_ml::features::DistributionalFeatures;
use sol_ml::qlearning::{QConfig, QLearner};
use sol_ml::thompson::ThompsonSampler;
use sol_node_sim::shared::Shared;

fn ml_kernels(c: &mut Criterion) {
    c.bench_function("qlearning_choose_and_update", |b| {
        let mut q = QLearner::with_seed(QConfig::new(12, 3), 1);
        b.iter(|| {
            let a = q.choose_action(5).action;
            q.update(5, a, 1.0, 6);
        });
    });

    c.bench_function("cost_sensitive_update_and_predict", |b| {
        let mut clf = CostSensitiveClassifier::new(9, 9, 0.05);
        let example = CostSensitiveExample::from_ordinal_truth(vec![0.5; 9], 4, 9, 8.0, 1.0);
        b.iter(|| {
            clf.update(&example);
            clf.predict(&example.features)
        });
    });

    c.bench_function("thompson_select_and_record", |b| {
        let mut bandit = ThompsonSampler::with_seed(6, 1);
        b.iter(|| {
            let arm = bandit.select();
            bandit.record(arm, arm == 2);
        });
    });

    c.bench_function("distributional_features_25_samples", |b| {
        let samples: Vec<f64> = (0..25).map(|i| (i as f64 * 0.37).sin().abs() * 8.0).collect();
        b.iter(|| DistributionalFeatures::extract(&samples));
    });
}

/// A trivial model/actuator pair: the bench measures the runtime's event
/// dispatch, not agent work.
struct NoopModel;

impl Model for NoopModel {
    type Data = f64;
    type Pred = f64;
    fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
        Ok(1.0)
    }
    fn validate_data(&self, _d: &f64) -> bool {
        true
    }
    fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
    fn update_model(&mut self, _now: Timestamp) {}
    fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
        Some(Prediction::model(1.0, now, now + SimDuration::from_secs(1)))
    }
    fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
        Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
    }
    fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
        ModelAssessment::Healthy
    }
}

struct NoopActuator;

impl Actuator for NoopActuator {
    type Pred = f64;
    fn take_action(&mut self, _now: Timestamp, _pred: Option<&Prediction<f64>>) {}
    fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
        ActuatorAssessment::Acceptable
    }
    fn mitigate(&mut self, _now: Timestamp) {}
    fn clean_up(&mut self, _now: Timestamp) {}
}

fn bench_schedule() -> Schedule {
    Schedule::builder()
        .data_per_epoch(5)
        .data_collect_interval(SimDuration::from_millis(10))
        .max_epoch_time(SimDuration::from_secs(1))
        .assess_model_every_epochs(1)
        .max_actuation_delay(SimDuration::from_millis(100))
        .assess_actuator_interval(SimDuration::from_millis(50))
        .build()
        .expect("static schedule is valid")
}

/// The event-queue hot path: one virtual minute of ticks (6 000 collects per
/// agent plus actuator deadlines and environment-step boundaries), with no
/// agent work to drown out the scheduler itself.
fn runtime_event_queue(c: &mut Criterion) {
    c.bench_function("node_runtime_1_agent_60s_virtual", |b| {
        b.iter(|| {
            let mut rt = NodeRuntime::new(NullEnvironment);
            rt.register_agent("solo", NoopModel, NoopActuator, bench_schedule());
            rt.run_for(SimDuration::from_secs(60)).expect("non-empty horizon")
        });
    });

    c.bench_function("node_runtime_8_agents_60s_virtual", |b| {
        b.iter(|| {
            let mut rt = NodeRuntime::new(NullEnvironment);
            for i in 0..8 {
                rt.register_agent(format!("agent-{i}"), NoopModel, NoopActuator, bench_schedule());
            }
            rt.run_for(SimDuration::from_secs(60)).expect("non-empty horizon")
        });
    });

    c.bench_function("node_runtime_delay_interventions_60s_virtual", |b| {
        b.iter(|| {
            let mut rt = NodeRuntime::new(NullEnvironment);
            let id = rt.register_agent("solo", NoopModel, NoopActuator, bench_schedule());
            for s in 0..30 {
                rt.delay_model_at(id, Timestamp::from_secs(2 * s), SimDuration::from_millis(500));
            }
            rt.run_for(SimDuration::from_secs(60)).expect("non-empty horizon")
        });
    });
}

/// The binary-heap scheduling discipline the node runtime used before the
/// time wheel: one globally sequenced entry per event, one `O(log n)`
/// rebalance per push and per pop. Kept here (the runtime no longer has it)
/// so the wheel's win stays measurable instead of anecdotal.
struct OldHeap {
    heap: BinaryHeap<HeapEntry>,
    seq: u64,
}

struct HeapEntry {
    at: u64,
    seq: u64,
    kind: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, the scheduler pops earliest.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl OldHeap {
    fn new() -> Self {
        OldHeap { heap: BinaryHeap::new(), seq: 0 }
    }

    fn schedule(&mut self, at: Timestamp, kind: u32) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapEntry { at: at.as_nanos(), seq, kind });
    }

    fn pop_due(&mut self, out: &mut Vec<u32>) -> Option<Timestamp> {
        let next = Timestamp::from_nanos(self.heap.peek()?.at);
        while self.heap.peek().is_some_and(|e| e.at <= next.as_nanos()) {
            out.push(self.heap.pop().expect("peeked").kind);
        }
        Some(next)
    }
}

/// The scheduler traffic both queue benches replay: `streams`
/// self-rescheduling wakes on a 10 ms cadence (the shape of agent collect
/// loops — almost every event fires within one wheel granule of now), until
/// `events` pops have been served.
const QUEUE_STREAMS: u64 = 8;
const QUEUE_EVENTS: usize = 48_000; // 8 streams × 6 000 wakes = 60 virtual s.

/// Raw event-queue cost, old discipline vs new: the same 48 000-event
/// cadence workload through the pre-refactor global-sequence binary heap and
/// through the two-level time wheel that replaced it. Divide by 48 000 for
/// ns/event.
fn scheduler_queue(c: &mut Criterion) {
    let cadence = SimDuration::from_millis(10);

    c.bench_function("event_queue_heap_48k_events", |b| {
        b.iter(|| {
            let mut q = OldHeap::new();
            for s in 0..QUEUE_STREAMS {
                q.schedule(Timestamp::from_micros(s), s as u32);
            }
            let mut popped = 0usize;
            let mut due = Vec::new();
            while popped < QUEUE_EVENTS {
                let next = q.pop_due(&mut due).expect("streams self-reschedule");
                popped += due.len();
                for &k in &due {
                    q.schedule(next + cadence, k);
                }
                due.clear();
            }
            std::hint::black_box(popped)
        });
    });

    c.bench_function("event_queue_wheel_48k_events", |b| {
        b.iter(|| {
            let mut q: TimeWheel<u32> = TimeWheel::new();
            for s in 0..QUEUE_STREAMS {
                q.schedule(Timestamp::from_micros(s), s as u32);
            }
            let mut popped = 0usize;
            let mut due = Vec::new();
            while popped < QUEUE_EVENTS {
                let next = q.peek(|_| true).expect("streams self-reschedule");
                q.drain_due(next, &mut due);
                popped += due.len();
                for &k in &due {
                    q.schedule(next + cadence, k);
                }
                due.clear();
            }
            std::hint::black_box(popped)
        });
    });
}

/// Lock traffic on a shared node, per-call vs scoped: 1 000 accesses each
/// paying a full acquire/release round-trip, against the same 1 000 under
/// one open `Shared::scope` guard (the owner fast path the runtime takes
/// for a whole event batch). Divide by 1 000 for ns/access.
fn shared_lock_traffic(c: &mut Criterion) {
    c.bench_function("shared_lock_per_call_1k_accesses", |b| {
        let shared = Shared::new(0u64);
        b.iter(|| {
            let mut last = 0;
            for _ in 0..1_000 {
                last = shared.with(|v| {
                    *v += 1;
                    *v
                });
            }
            std::hint::black_box(last)
        });
    });

    c.bench_function("shared_guard_scope_1k_accesses", |b| {
        let shared = Shared::new(0u64);
        b.iter(|| {
            let scope = shared.scope();
            let mut last = 0;
            for _ in 0..1_000 {
                last = shared.with(|v| {
                    *v += 1;
                    *v
                });
            }
            drop(scope);
            std::hint::black_box(last)
        });
    });
}

/// A minimal hosting environment: a bin of placeable cores and nothing else,
/// so the packer-churn bench measures barrier machinery rather than
/// substrate simulation.
struct BinEnvironment {
    capacity: f64,
    resident: Vec<WorkloadUnit>,
}

impl Environment for BinEnvironment {
    fn advance_to(&mut self, _now: Timestamp) {}

    fn attach_workload(&mut self, unit: WorkloadUnit) -> Result<(), PlacementError> {
        let used: f64 = self.resident.iter().map(|u| u.cores).sum();
        if used + unit.cores > self.capacity {
            return Err(PlacementError::CapacityExceeded {
                requested: unit.cores,
                free: self.capacity - used,
            });
        }
        if self.resident.iter().any(|u| u.id == unit.id) {
            return Err(PlacementError::DuplicateWorkload(unit.id));
        }
        self.resident.push(unit);
        Ok(())
    }

    fn detach_workload(&mut self, id: WorkloadId) -> Result<WorkloadUnit, PlacementError> {
        match self.resident.iter().position(|u| u.id == id) {
            Some(pos) => Ok(self.resident.remove(pos)),
            None => Err(PlacementError::UnknownWorkload(id)),
        }
    }

    fn placement(&self) -> NodePlacement {
        NodePlacement { capacity: self.capacity, resident: self.resident.clone() }
    }
}

/// One synthetic `NodeView` with a realistic width: three agents and four
/// telemetry readings.
fn synthetic_view(node: usize) -> NodeView {
    NodeView {
        node,
        agents: (0..3)
            .map(|role| AgentTelemetry {
                name: format!("agent-{role}"),
                stats: AgentStats::default(),
            })
            .collect(),
        telemetry: (0..4).map(|slot| (format!("reading-{slot}"), slot as f64)).collect(),
        placement: NodePlacement::none(),
        state: NodeState::Active,
    }
}

/// The per-barrier view cost, old way vs new way: cloning a full 64-node
/// snapshot vector (what every epoch boundary used to pay) against
/// diff-and-patch of a single changed node (what a barrier pays now when one
/// node's counters moved and 63 stayed quiet).
fn view_construction(c: &mut Criterion) {
    let base: Vec<NodeView> = (0..64).map(synthetic_view).collect();

    c.bench_function("view_construction_full_clone_64_nodes", |b| {
        b.iter(|| std::hint::black_box(base.clone()));
    });

    c.bench_function("view_construction_delta_patch_64_nodes", |b| {
        let mut next = base[17].clone();
        next.agents[1].stats.model.samples_committed += 1;
        next.telemetry[2].1 += 0.5;
        let mut mirror = base.clone();
        b.iter(|| {
            let delta = NodeDelta::diff(&base[17], &next);
            delta.apply(&mut mirror[17]);
            std::hint::black_box(&mirror);
        });
    });
}

/// The recipe behind the barrier-overhead benches: eight no-op agents per
/// node on a plain core bin, so virtually all wall time is epoch-barrier
/// machinery (task fan-out, delta collection, controller invocation).
fn barrier_recipe() -> ScenarioRecipe<BinEnvironment> {
    ScenarioRecipe::new(|_seed: &NodeSeed| {
        let mut builder =
            NodeRuntime::builder(BinEnvironment { capacity: 8.0, resident: Vec::new() });
        for i in 0..8 {
            builder.agent(format!("agent-{i}"), NoopModel, NoopActuator, bench_schedule());
        }
        builder.build()
    })
}

/// Barrier overhead with 0 commands vs under packer churn: the
/// `NullController` row is the floor every `run()` pays per epoch (its
/// declined view makes delta extraction skippable), the `GreedyPacker` row
/// adds view collection plus admit/depart command traffic at every boundary.
fn barrier_overhead(c: &mut Criterion) {
    let horizon = SimDuration::from_secs(10);
    let config = || FleetConfig {
        nodes: 8,
        threads: 2,
        epoch: SimDuration::from_millis(500),
        seed: 7,
        ..FleetConfig::default()
    };

    c.bench_function("barrier_overhead_null_controller_8_nodes_20_epochs", |b| {
        b.iter(|| {
            let fleet = FleetRuntime::new(barrier_recipe(), config()).unwrap();
            fleet.run(horizon).unwrap()
        });
    });

    c.bench_function("barrier_overhead_packer_churn_8_nodes_20_epochs", |b| {
        b.iter(|| {
            let fleet = FleetRuntime::new(barrier_recipe(), config()).unwrap();
            let trace = ArrivalTrace::generate(
                11,
                &ArrivalTraceConfig {
                    workloads: 24,
                    span: horizon,
                    min_cores: 0.5,
                    max_cores: 2.0,
                    min_lifetime: SimDuration::from_secs(2),
                    max_lifetime: SimDuration::from_secs(6),
                },
            );
            let mut packer = GreedyPacker::new(trace);
            fleet.run_with(&mut packer, horizon).unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = ml_kernels, runtime_event_queue, scheduler_queue, shared_lock_traffic,
        view_construction, barrier_overhead
}
criterion_main!(benches);
