//! Criterion micro-benchmarks of the framework and ML kernels: the per-epoch
//! cost an agent adds to a node (paper §6.1 notes the runtime requires very
//! few resources).

use criterion::{criterion_group, criterion_main, Criterion};
use sol_ml::cost_sensitive::{CostSensitiveClassifier, CostSensitiveExample};
use sol_ml::features::DistributionalFeatures;
use sol_ml::qlearning::{QConfig, QLearner};
use sol_ml::thompson::ThompsonSampler;

fn ml_kernels(c: &mut Criterion) {
    c.bench_function("qlearning_choose_and_update", |b| {
        let mut q = QLearner::with_seed(QConfig::new(12, 3), 1);
        b.iter(|| {
            let a = q.choose_action(5).action;
            q.update(5, a, 1.0, 6);
        });
    });

    c.bench_function("cost_sensitive_update_and_predict", |b| {
        let mut clf = CostSensitiveClassifier::new(9, 9, 0.05);
        let example = CostSensitiveExample::from_ordinal_truth(vec![0.5; 9], 4, 9, 8.0, 1.0);
        b.iter(|| {
            clf.update(&example);
            clf.predict(&example.features)
        });
    });

    c.bench_function("thompson_select_and_record", |b| {
        let mut bandit = ThompsonSampler::with_seed(6, 1);
        b.iter(|| {
            let arm = bandit.select();
            bandit.record(arm, arm == 2);
        });
    });

    c.bench_function("distributional_features_25_samples", |b| {
        let samples: Vec<f64> = (0..25).map(|i| (i as f64 * 0.37).sin().abs() * 8.0).collect();
        b.iter(|| DistributionalFeatures::extract(&samples));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = ml_kernels
}
criterion_main!(benches);
