//! Criterion micro-benchmarks of the framework and ML kernels: the per-epoch
//! cost an agent adds to a node (paper §6.1 notes the runtime requires very
//! few resources), plus the event-queue hot path of the node runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use sol_core::error::DataError;
use sol_core::prelude::*;
use sol_ml::cost_sensitive::{CostSensitiveClassifier, CostSensitiveExample};
use sol_ml::features::DistributionalFeatures;
use sol_ml::qlearning::{QConfig, QLearner};
use sol_ml::thompson::ThompsonSampler;

fn ml_kernels(c: &mut Criterion) {
    c.bench_function("qlearning_choose_and_update", |b| {
        let mut q = QLearner::with_seed(QConfig::new(12, 3), 1);
        b.iter(|| {
            let a = q.choose_action(5).action;
            q.update(5, a, 1.0, 6);
        });
    });

    c.bench_function("cost_sensitive_update_and_predict", |b| {
        let mut clf = CostSensitiveClassifier::new(9, 9, 0.05);
        let example = CostSensitiveExample::from_ordinal_truth(vec![0.5; 9], 4, 9, 8.0, 1.0);
        b.iter(|| {
            clf.update(&example);
            clf.predict(&example.features)
        });
    });

    c.bench_function("thompson_select_and_record", |b| {
        let mut bandit = ThompsonSampler::with_seed(6, 1);
        b.iter(|| {
            let arm = bandit.select();
            bandit.record(arm, arm == 2);
        });
    });

    c.bench_function("distributional_features_25_samples", |b| {
        let samples: Vec<f64> = (0..25).map(|i| (i as f64 * 0.37).sin().abs() * 8.0).collect();
        b.iter(|| DistributionalFeatures::extract(&samples));
    });
}

/// A trivial model/actuator pair: the bench measures the runtime's event
/// dispatch, not agent work.
struct NoopModel;

impl Model for NoopModel {
    type Data = f64;
    type Pred = f64;
    fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
        Ok(1.0)
    }
    fn validate_data(&self, _d: &f64) -> bool {
        true
    }
    fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
    fn update_model(&mut self, _now: Timestamp) {}
    fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
        Some(Prediction::model(1.0, now, now + SimDuration::from_secs(1)))
    }
    fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
        Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
    }
    fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
        ModelAssessment::Healthy
    }
}

struct NoopActuator;

impl Actuator for NoopActuator {
    type Pred = f64;
    fn take_action(&mut self, _now: Timestamp, _pred: Option<&Prediction<f64>>) {}
    fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
        ActuatorAssessment::Acceptable
    }
    fn mitigate(&mut self, _now: Timestamp) {}
    fn clean_up(&mut self, _now: Timestamp) {}
}

fn bench_schedule() -> Schedule {
    Schedule::builder()
        .data_per_epoch(5)
        .data_collect_interval(SimDuration::from_millis(10))
        .max_epoch_time(SimDuration::from_secs(1))
        .assess_model_every_epochs(1)
        .max_actuation_delay(SimDuration::from_millis(100))
        .assess_actuator_interval(SimDuration::from_millis(50))
        .build()
        .expect("static schedule is valid")
}

/// The event-queue hot path: one virtual minute of ticks (6 000 collects per
/// agent plus actuator deadlines and environment-step boundaries), with no
/// agent work to drown out the scheduler itself.
fn runtime_event_queue(c: &mut Criterion) {
    c.bench_function("node_runtime_1_agent_60s_virtual", |b| {
        b.iter(|| {
            let mut rt = NodeRuntime::new(NullEnvironment);
            rt.register_agent("solo", NoopModel, NoopActuator, bench_schedule());
            rt.run_for(SimDuration::from_secs(60)).expect("non-empty horizon")
        });
    });

    c.bench_function("node_runtime_8_agents_60s_virtual", |b| {
        b.iter(|| {
            let mut rt = NodeRuntime::new(NullEnvironment);
            for i in 0..8 {
                rt.register_agent(format!("agent-{i}"), NoopModel, NoopActuator, bench_schedule());
            }
            rt.run_for(SimDuration::from_secs(60)).expect("non-empty horizon")
        });
    });

    c.bench_function("node_runtime_delay_interventions_60s_virtual", |b| {
        b.iter(|| {
            let mut rt = NodeRuntime::new(NullEnvironment);
            let id = rt.register_agent("solo", NoopModel, NoopActuator, bench_schedule());
            for s in 0..30 {
                rt.delay_model_at(id, Timestamp::from_secs(2 * s), SimDuration::from_millis(500));
            }
            rt.run_for(SimDuration::from_secs(60)).expect("non-empty horizon")
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = ml_kernels, runtime_event_queue
}
criterion_main!(benches);
