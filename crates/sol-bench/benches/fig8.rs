//! Regenerates Figure 8: SmartMemory Model and Actuator safeguards on the
//! oscillating SpecJBB workload.

use sol_bench::memory_experiments::fig8;
use sol_bench::report::{pct, print_table};
use sol_core::time::SimDuration;

fn main() {
    let horizon = SimDuration::from_secs(
        std::env::var("SOL_HORIZON_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(1000),
    );
    let rows: Vec<Vec<String>> = fig8(horizon)
        .into_iter()
        .map(|r| {
            vec![
                r.safeguards,
                pct(r.slo_attainment),
                pct(r.mean_remote_fraction),
                r.mitigations.to_string(),
                r.intercepted_predictions.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 8: SmartMemory safeguard ablation on oscillating SpecJBB (80% local-access SLO)",
        &[
            "Safeguards",
            "SLO attainment",
            "Mean remote fraction",
            "Mitigations",
            "Intercepted preds",
        ],
        &rows,
    );
}
