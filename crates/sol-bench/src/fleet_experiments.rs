//! Fleet-scale experiments: many recipe-stamped servers under one virtual
//! clock.
//!
//! Beyond the paper's single-node evaluation, SOL's deployment story is
//! fleet-wide. These experiments drive `FleetRuntime` over the co-location
//! recipes and measure two things at once:
//!
//! * **Scaling** — wall-clock cost per virtual minute as the fleet grows
//!   (1/8/64/256 nodes) and as worker threads are added, the
//!   `benches/fleet.rs` table.
//! * **Safety dashboards** — the fleet-level aggregates a platform operator
//!   would watch: safeguard-activation rates, SLO-violation counts, and
//!   per-role percentiles across heterogeneous (per-node seeded) servers.
//!
//! Fleet results are deterministic: the same `(recipe, config, horizon)`
//! produces a byte-identical `FleetReport` regardless of the thread count,
//! so the printed dashboards are reproducible run to run.

use std::time::Instant;

use sol_agents::colocation::{colocated_recipe, ColocationConfig};
use sol_core::prelude::*;

/// One row of the fleet scaling table: a fleet size × thread count
/// combination plus the dashboard readings of that run.
#[derive(Debug, Clone)]
pub struct FleetScalingRow {
    /// Number of simulated servers.
    pub nodes: usize,
    /// Worker threads the nodes were sharded across.
    pub threads: usize,
    /// Wall-clock milliseconds spent per virtual minute of fleet time.
    pub wall_ms_per_virtual_minute: f64,
    /// Wall-clock milliseconds per virtual minute *per node* (the per-server
    /// simulation cost; flat means linear scaling).
    pub wall_ms_per_node_minute: f64,
    /// Epoch-boundary synchronizations performed.
    pub epochs: u64,
    /// Total learning epochs completed by the SmartOverclock role.
    pub overclock_epochs: u64,
    /// Fraction of nodes on which a SmartHarvest safeguard activated.
    pub harvest_safeguard_rate: f64,
    /// Fleet-wide mean of the per-node p99 request latency (ms).
    pub mean_p99_latency_ms: f64,
    /// Worst per-node p99 request latency in the fleet (ms).
    pub max_p99_latency_ms: f64,
    /// Total core-seconds harvested across the fleet.
    pub total_harvested_core_seconds: f64,
    /// Largest per-node simulation-state footprint in the fleet, in bytes
    /// (see [`FleetReport::mem_bytes_per_node`]).
    pub mem_bytes_per_node: usize,
}

/// Runs a `nodes` × `threads` fleet of the default two-agent co-location
/// recipe for `horizon` and reports the scaling row.
pub fn fleet_scaling_row(nodes: usize, threads: usize, horizon: SimDuration) -> FleetScalingRow {
    let preset = colocated_recipe(ColocationConfig::default());
    let config = FleetConfig { nodes, threads, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe, config).expect("valid fleet config");

    let start = Instant::now();
    let report = fleet.run(horizon).expect("fleet run succeeds");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let virtual_minutes = horizon.as_secs_f64() / 60.0;
    let overclock = report.role(preset.overclock);
    let harvest = report.role(preset.harvest);
    let p99 = report.metric("p99_latency_ms").expect("recipe reports p99 latency");
    let harvested =
        report.metric("harvested_core_seconds").expect("recipe reports harvested core-seconds");
    FleetScalingRow {
        nodes,
        threads,
        wall_ms_per_virtual_minute: wall_ms / virtual_minutes,
        wall_ms_per_node_minute: wall_ms / virtual_minutes / nodes as f64,
        epochs: report.epochs,
        overclock_epochs: overclock.totals.model.epochs_completed,
        harvest_safeguard_rate: harvest.safeguard_activation_rate,
        mean_p99_latency_ms: p99.mean,
        max_p99_latency_ms: p99.max,
        total_harvested_core_seconds: harvested.total,
        mem_bytes_per_node: report.mem_bytes_per_node,
    }
}

/// The full scaling table: every fleet size crossed with every thread count.
pub fn scaling_table(
    node_counts: &[usize],
    thread_counts: &[usize],
    horizon: SimDuration,
) -> Vec<FleetScalingRow> {
    let mut rows = Vec::new();
    for &nodes in node_counts {
        for &threads in thread_counts {
            rows.push(fleet_scaling_row(nodes, threads, horizon));
        }
    }
    rows
}

/// One row of the churn-under-failure sweep: a fault-plan intensity crossed
/// with the lifecycle, placement, and safety readings of the run — the
/// `benches/failure.rs` table.
#[derive(Debug, Clone)]
pub struct FailureSweepRow {
    /// Crashes injected by the fault plan.
    pub crashes: usize,
    /// Joins injected by the fault plan.
    pub joins: usize,
    /// Drains injected by the fault plan.
    pub drains: usize,
    /// Final fleet size (initial nodes plus joins).
    pub fleet_size: usize,
    /// Nodes contributing to the role aggregates (everything non-crashed).
    pub surviving_nodes: usize,
    /// Workload units evicted by crashes.
    pub displaced: u64,
    /// Displaced units the packer successfully re-placed.
    pub replaced: u64,
    /// Placements that failed (including displaced units nobody re-placed).
    pub failed_placements: u64,
    /// Fraction of surviving nodes on which a SmartHarvest safeguard
    /// activated.
    pub harvest_safeguard_rate: f64,
    /// Mean p99 request latency across surviving nodes (ms).
    pub mean_p99_latency_ms: f64,
    /// Wall-clock milliseconds spent per virtual minute of fleet time.
    pub wall_ms_per_virtual_minute: f64,
}

/// Runs a placeable co-location fleet under the `GreedyPacker` while a
/// seeded [`FaultPlan`] injects `faults`, and reports the sweep row. The
/// run is deterministic: the row is a pure function of the arguments.
pub fn failure_sweep_row(
    nodes: usize,
    threads: usize,
    arrivals: usize,
    faults: &FaultPlanConfig,
    fault_seed: u64,
    horizon: SimDuration,
) -> FailureSweepRow {
    use crate::placement_experiments::{churn_trace, PLACEABLE_CORES};

    let preset = colocated_recipe(ColocationConfig {
        placeable_cores: PLACEABLE_CORES,
        ..ColocationConfig::default()
    });
    let config = FleetConfig { nodes, threads, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe, config).expect("valid fleet config");
    let mut packer = GreedyPacker::new(churn_trace(arrivals, horizon));
    let plan = FaultPlan::generate(fault_seed, nodes, faults);

    let start = Instant::now();
    let report = fleet.run_with_faults(&mut packer, plan, horizon).expect("chaos run succeeds");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let virtual_minutes = horizon.as_secs_f64() / 60.0;
    let harvest = report.role(preset.harvest);
    let p99 = report.metric("p99_latency_ms").expect("recipe reports p99 latency");
    FailureSweepRow {
        crashes: faults.crashes,
        joins: faults.joins,
        drains: faults.drains,
        fleet_size: report.nodes.len(),
        surviving_nodes: harvest.nodes,
        displaced: report.placement.displaced,
        replaced: report.placement.replaced,
        failed_placements: report.placement.failed_placements,
        harvest_safeguard_rate: harvest.safeguard_activation_rate,
        mean_p99_latency_ms: p99.mean,
        wall_ms_per_virtual_minute: wall_ms / virtual_minutes,
    }
}

/// The full churn-under-failure sweep: one row per crash count, each crash
/// matched by a like-for-like join (capacity is replaced, not shrunk) plus
/// one drain whenever faults are injected at all. Include 0 for the
/// fault-free baseline row.
pub fn failure_sweep(
    nodes: usize,
    threads: usize,
    arrivals: usize,
    horizon: SimDuration,
    crash_counts: &[usize],
) -> Vec<FailureSweepRow> {
    crash_counts
        .iter()
        .map(|&crashes| {
            let faults = FaultPlanConfig {
                crashes,
                joins: crashes,
                drains: usize::from(crashes > 0),
                span: horizon,
            };
            failure_sweep_row(nodes, threads, arrivals, &faults, 0xFA11, horizon)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_row_reports_the_dashboard() {
        let row = fleet_scaling_row(2, 2, SimDuration::from_secs(10));
        assert_eq!(row.nodes, 2);
        assert_eq!(row.threads, 2);
        assert_eq!(row.epochs, 10, "default 1 s fleet epoch over a 10 s horizon");
        assert!(row.overclock_epochs > 0, "both overclock agents must learn");
        assert!(row.wall_ms_per_virtual_minute > 0.0);
        assert!(row.mean_p99_latency_ms > 0.0);
        assert!(row.mean_p99_latency_ms <= row.max_p99_latency_ms);
        assert!(row.total_harvested_core_seconds > 0.0);
        assert!((0.0..=1.0).contains(&row.harvest_safeguard_rate));
        assert!(row.mem_bytes_per_node > 0, "footprint accounting must surface");
    }

    #[test]
    fn failure_sweep_reports_chaos_and_safety() {
        let rows = failure_sweep(4, 2, 16, SimDuration::from_secs(15), &[0, 1]);
        assert_eq!(rows.len(), 2);

        let calm = &rows[0];
        assert_eq!((calm.crashes, calm.joins, calm.drains), (0, 0, 0));
        assert_eq!(calm.fleet_size, 4);
        assert_eq!(calm.surviving_nodes, 4);
        assert_eq!(calm.displaced, 0);
        assert_eq!(calm.replaced, 0);

        let chaos = &rows[1];
        assert_eq!((chaos.crashes, chaos.joins, chaos.drains), (1, 1, 1));
        assert_eq!(chaos.fleet_size, 5, "the join must add a node");
        assert_eq!(chaos.surviving_nodes, 4, "the crash must be excluded from aggregates");
        assert!(chaos.mean_p99_latency_ms > 0.0);
        assert!((0.0..=1.0).contains(&chaos.harvest_safeguard_rate));
    }

    #[test]
    fn scaling_table_crosses_nodes_and_threads() {
        let rows = scaling_table(&[1, 2], &[1, 2], SimDuration::from_secs(5));
        assert_eq!(rows.len(), 4);
        let combos: Vec<(usize, usize)> = rows.iter().map(|r| (r.nodes, r.threads)).collect();
        assert_eq!(combos, vec![(1, 1), (1, 2), (2, 1), (2, 2)]);
        // The fleet outcome is thread-count independent; only wall-clock may
        // differ between the two 2-node rows.
        assert_eq!(rows[2].overclock_epochs, rows[3].overclock_epochs);
        assert_eq!(rows[2].mean_p99_latency_ms, rows[3].mean_p99_latency_ms);
        assert_eq!(rows[2].total_harvested_core_seconds, rows[3].total_harvested_core_seconds);
    }
}
