//! # sol-bench — the experiment harness
//!
//! One module per group of paper experiments. Each figure or table of the
//! paper's evaluation has a bench target (`cargo bench -p sol-bench`) that
//! regenerates the corresponding rows or series by calling into these
//! modules:
//!
//! | Target | Paper artifact | Module |
//! |---|---|---|
//! | `table1`, `table2` | Tables 1 and 2 | [`sol_core::taxonomy`] |
//! | `fig1` … `fig5` | Figures 1–5 (SmartOverclock) | [`overclock_experiments`] |
//! | `fig6` | Figure 6 (SmartHarvest) | [`harvest_experiments`] |
//! | `fig7`, `fig8` | Figures 7–8 (SmartMemory) | [`memory_experiments`] |
//! | `ablation` | design-choice ablations | [`overclock_experiments`] |
//! | `colocation` | beyond the paper: agents co-located on one node | [`colocation_experiments`] |
//! | `fleet` | beyond the paper: recipe-stamped fleets under one clock | [`fleet_experiments`] |
//! | `placement` | beyond the paper: fleet-level VM placement under churn | [`placement_experiments`] |
//! | `failure` | beyond the paper: placement churn under crash/join/drain chaos | [`fleet_experiments`] |
//! | `micro` | framework/ML/runtime micro-benchmarks (Criterion) | — |
//!
//! Experiments run on the deterministic simulation runtime, so the printed
//! numbers are reproducible run to run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod colocation_experiments;
pub mod fleet_experiments;
pub mod harvest_experiments;
pub mod memory_experiments;
pub mod overclock_experiments;
pub mod placement_experiments;
pub mod report;
pub mod trajectory;
