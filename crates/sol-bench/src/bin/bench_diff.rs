//! Diffs two committed `BENCH_fleet.json` artifacts and *warns* on per-node
//! perf regressions — CI's trajectory tripwire.
//!
//! ```text
//! bench_diff <parent.json> <branch.json> [threshold]
//! ```
//!
//! Prints one `::warning::` line (GitHub Actions annotation syntax, harmless
//! plain text elsewhere) per nodes × threads cell whose
//! `wall_ms_per_node_minute` regressed by more than `threshold` (default
//! 0.2, i.e. 20%). Always exits 0 on a successful comparison: bench numbers
//! from shared CI runners are too noisy to gate merges on, but a silent
//! slowdown should at least be staring the reviewer in the face. Unreadable
//! or unparseable artifacts exit non-zero — a broken trajectory file is a
//! real failure, not noise.

use sol_bench::trajectory::{compare_fleet_rows, parse_rows};

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(parent_path), Some(branch_path)) = (args.next(), args.next()) else {
        eprintln!("usage: bench_diff <parent.json> <branch.json> [threshold]");
        std::process::exit(2);
    };
    let threshold: f64 = match args.next() {
        Some(raw) => match raw.parse() {
            Ok(value) => value,
            Err(_) => {
                eprintln!("bench_diff: threshold {raw:?} is not a number");
                std::process::exit(2);
            }
        },
        None => 0.2,
    };

    let load = |path: &str| -> Vec<_> {
        let raw = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot read {path}: {e}");
            std::process::exit(2);
        });
        parse_rows(&raw).unwrap_or_else(|e| {
            eprintln!("bench_diff: cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let parent = load(&parent_path);
    let branch = load(&branch_path);

    let regressions = compare_fleet_rows(&parent, &branch, threshold);
    for r in &regressions {
        println!(
            "::warning::fleet bench regression at {} nodes / {} threads: \
             {:.3} -> {:.3} ms per node-minute (+{:.1}%)",
            r.nodes,
            r.threads,
            r.before,
            r.after,
            r.slowdown() * 100.0
        );
    }
    if regressions.is_empty() {
        println!(
            "bench_diff: no cell regressed more than {:.0}% ({} baseline cells)",
            threshold * 100.0,
            parent.len()
        );
    }
}
