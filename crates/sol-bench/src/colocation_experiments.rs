//! Co-location experiments: SOL agent populations sharing one node.
//!
//! The paper evaluates its agents one at a time; its deployment story (§4.2)
//! is several agents per node. These experiments measure what co-location
//! does to each agent's workload outcome and safety counters:
//!
//! * each agent **solo** on its own node (the paper's setup),
//! * both CPU-side agents **co-located** with separate frequency domains (no
//!   physical interference — any change is runtime overhead, which must be
//!   nil),
//! * both CPU-side agents co-located on a **shared frequency domain**, where
//!   overclocking speeds up the primary VM and enlarges the harvestable
//!   pool,
//! * a targeted failure injection: the overclock Model thread is delayed
//!   mid-run while the harvest agent keeps running beside it, and
//! * all **three** paper agents on one node (SmartMemory joins through the
//!   frequency→memory-bandwidth coupling).
//!
//! Every scenario assembles its node through the typed `ScenarioBuilder` and
//! reads reports back through `AgentHandle`s — no downcasts.

use sol_agents::colocation::{colocated_agents, three_agents, ColocationConfig, ThreeAgentConfig};
use sol_agents::harvest::{harvest_blueprint, HarvestConfig};
use sol_agents::overclock::{overclock_blueprint, OverclockConfig};
use sol_core::prelude::*;
use sol_node_sim::cpu_node::{CpuNode, CpuNodeConfig};
use sol_node_sim::harvest_node::{BurstyService, HarvestNode, HarvestNodeConfig};
use sol_node_sim::shared::Shared;
use sol_node_sim::workload::OverclockWorkloadKind;

/// Number of cores used by the co-location experiments.
const CORES: usize = 8;

/// Outcome of one co-location scenario.
#[derive(Debug, Clone, Default)]
pub struct ColocationRow {
    /// Scenario name.
    pub scenario: String,
    /// Overclocked workload performance score (if the agent ran).
    pub perf_score: Option<f64>,
    /// Average node power of the CPU substrate in watts (if the agent ran).
    pub avg_power_watts: Option<f64>,
    /// P99 request latency of the harvest-side primary VM in ms (if the
    /// agent ran).
    pub p99_latency_ms: Option<f64>,
    /// Core-seconds delivered to the ElasticVM (if the agent ran).
    pub harvested_core_seconds: Option<f64>,
    /// SmartMemory 80%-local SLO attainment (if the agent ran).
    pub slo_attainment: Option<f64>,
    /// Batches offloaded to the second memory tier at the end of the run (if
    /// the agent ran).
    pub remote_batches: Option<usize>,
    /// SmartOverclock runtime counters (if the agent ran).
    pub overclock_stats: Option<AgentStats>,
    /// SmartHarvest runtime counters (if the agent ran).
    pub harvest_stats: Option<AgentStats>,
    /// SmartMemory runtime counters (if the agent ran).
    pub memory_stats: Option<AgentStats>,
}

/// Runs SmartOverclock alone on its own node (the paper's setup).
pub fn solo_overclock(horizon: SimDuration) -> ColocationRow {
    let node = Shared::new(CpuNode::new(
        OverclockWorkloadKind::ObjectStore.build(CORES),
        CpuNodeConfig { cores: CORES, ..Default::default() },
    ));
    let mut builder = NodeRuntime::builder(node.clone());
    let agent = builder.register(overclock_blueprint(&node, OverclockConfig::default()));
    let report = builder.build().run_for(horizon).expect("non-empty horizon");
    let (perf, power) = node.with(|n| (n.performance().score, n.average_power_watts()));
    ColocationRow {
        scenario: "overclock solo".into(),
        perf_score: Some(perf),
        avg_power_watts: Some(power),
        overclock_stats: Some(report.agent(agent).stats().clone()),
        ..ColocationRow::default()
    }
}

/// Runs SmartHarvest alone on its own node (the paper's setup).
pub fn solo_harvest(horizon: SimDuration) -> ColocationRow {
    let node =
        Shared::new(HarvestNode::new(BurstyService::image_dnn(), HarvestNodeConfig::default()));
    let mut builder = NodeRuntime::builder(node.clone());
    let agent = builder.register(harvest_blueprint(&node, HarvestConfig::default()));
    let report = builder.build().run_for(horizon).expect("non-empty horizon");
    let (latency, harvested) = node.with(|n| (n.p99_latency_ms(), n.harvested_core_seconds()));
    ColocationRow {
        scenario: "harvest solo".into(),
        p99_latency_ms: Some(latency),
        harvested_core_seconds: Some(harvested),
        harvest_stats: Some(report.agent(agent).stats().clone()),
        ..ColocationRow::default()
    }
}

/// Runs both CPU-side agents co-located on one node.
///
/// `couple_frequency` selects a shared frequency domain (overclocking speeds
/// up the primary VM) versus separate domains; `delay_overclock_model`
/// optionally injects a `(at, duration)` scheduling delay into the overclock
/// Model thread only.
pub fn colocated(
    horizon: SimDuration,
    couple_frequency: bool,
    delay_overclock_model: Option<(Timestamp, SimDuration)>,
    scenario: impl Into<String>,
) -> ColocationRow {
    let agents = colocated_agents(ColocationConfig { couple_frequency, ..Default::default() });
    let (oc, hv) = (agents.overclock, agents.harvest);
    let mut runtime = agents.runtime;
    if let Some((at, duration)) = delay_overclock_model {
        runtime.delay_model_at(oc, at, duration);
    }
    let report = runtime.run_for(horizon).expect("non-empty horizon");
    let (perf, power) = agents.cpu.with(|n| (n.performance().score, n.average_power_watts()));
    let (latency, harvested) =
        agents.harvest_node.with(|n| (n.p99_latency_ms(), n.harvested_core_seconds()));
    ColocationRow {
        scenario: scenario.into(),
        perf_score: Some(perf),
        avg_power_watts: Some(power),
        p99_latency_ms: Some(latency),
        harvested_core_seconds: Some(harvested),
        overclock_stats: Some(report.agent(oc).stats().clone()),
        harvest_stats: Some(report.agent(hv).stats().clone()),
        ..ColocationRow::default()
    }
}

/// Runs all three paper agents co-located on one fully coupled node.
pub fn three_agent_colocated(horizon: SimDuration) -> ColocationRow {
    let agents = three_agents(ThreeAgentConfig::default());
    let (oc, hv, mem) = (agents.overclock, agents.harvest, agents.memory);
    let report = agents.runtime.run_for(horizon).expect("non-empty horizon");
    let (perf, power) = agents.cpu.with(|n| (n.performance().score, n.average_power_watts()));
    let (latency, harvested) =
        agents.harvest_node.with(|n| (n.p99_latency_ms(), n.harvested_core_seconds()));
    let (slo, remote) =
        agents.memory_node.with(|n| (n.slo_attainment(0.8), n.remote_batch_count()));
    ColocationRow {
        scenario: "co-located, three agents".into(),
        perf_score: Some(perf),
        avg_power_watts: Some(power),
        p99_latency_ms: Some(latency),
        harvested_core_seconds: Some(harvested),
        slo_attainment: Some(slo),
        remote_batches: Some(remote),
        overclock_stats: Some(report.agent(oc).stats().clone()),
        harvest_stats: Some(report.agent(hv).stats().clone()),
        memory_stats: Some(report.agent(mem).stats().clone()),
    }
}

/// The full interference table: solo baselines, co-location with and without
/// a shared frequency domain, a targeted Model delay, and the three-agent
/// population.
pub fn interference_table(horizon: SimDuration) -> Vec<ColocationRow> {
    vec![
        solo_overclock(horizon),
        solo_harvest(horizon),
        colocated(horizon, false, None, "co-located, separate freq domains"),
        colocated(horizon, true, None, "co-located, shared freq domain"),
        colocated(
            horizon,
            true,
            Some((Timestamp::from_secs(30), SimDuration::from_secs(30))),
            "co-located + 30s overclock-model delay",
        ),
        three_agent_colocated(horizon),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_table_has_expected_scenarios() {
        let rows = interference_table(SimDuration::from_secs(20));
        assert_eq!(rows.len(), 6);
        // Solo rows only report their own substrate.
        assert!(rows[0].perf_score.is_some() && rows[0].p99_latency_ms.is_none());
        assert!(rows[1].perf_score.is_none() && rows[1].p99_latency_ms.is_some());
        // Two-agent co-located rows report both CPU-side substrates.
        for row in &rows[2..5] {
            assert!(row.perf_score.is_some() && row.p99_latency_ms.is_some(), "{}", row.scenario);
            assert!(row.overclock_stats.is_some() && row.harvest_stats.is_some());
            assert!(row.memory_stats.is_none());
        }
        // The three-agent row reports everything.
        let three = &rows[5];
        assert!(three.perf_score.is_some() && three.p99_latency_ms.is_some());
        assert!(three.slo_attainment.is_some() && three.remote_batches.is_some());
        assert!(three.memory_stats.is_some());
    }

    #[test]
    fn uncoupled_colocation_reproduces_solo_agent_behaviour() {
        let horizon = SimDuration::from_secs(30);
        let solo = solo_harvest(horizon);
        let colo = colocated(horizon, false, None, "co-located");
        // With separate frequency domains, co-location must not change the
        // harvest agent's behaviour at all: same epochs, same safety
        // counters, same substrate metrics.
        assert_eq!(solo.harvest_stats, colo.harvest_stats);
        assert_eq!(solo.p99_latency_ms, colo.p99_latency_ms);
        assert_eq!(solo.harvested_core_seconds, colo.harvested_core_seconds);
    }

    #[test]
    fn targeted_delay_reduces_overclock_epochs_only() {
        let horizon = SimDuration::from_secs(60);
        let clean = colocated(horizon, true, None, "clean");
        let delayed = colocated(
            horizon,
            true,
            Some((Timestamp::from_secs(10), SimDuration::from_secs(30))),
            "delayed",
        );
        let clean_oc = clean.overclock_stats.unwrap();
        let delayed_oc = delayed.overclock_stats.unwrap();
        assert!(delayed_oc.model.epochs_completed < clean_oc.model.epochs_completed);
        // The harvest agent keeps acting at its usual cadence throughout.
        let delayed_hv = delayed.harvest_stats.unwrap();
        let clean_hv = clean.harvest_stats.unwrap();
        assert!(delayed_hv.actions_taken() as f64 >= clean_hv.actions_taken() as f64 * 0.95);
    }

    #[test]
    fn three_agent_row_reports_progress_for_every_agent() {
        let row = three_agent_colocated(SimDuration::from_secs(45));
        assert!(row.overclock_stats.unwrap().model.epochs_completed >= 35);
        assert!(row.harvest_stats.unwrap().model.epochs_completed >= 800);
        assert!(row.memory_stats.unwrap().model.epochs_completed >= 1);
        assert!(row.slo_attainment.unwrap() > 0.5);
    }
}
