//! Experiments reproducing Figures 7 and 8 (the SmartMemory evaluation,
//! paper §6.4).

use sol_agents::memory::{memory_blueprint, MemoryConfig, SCAN_INTERVALS};
use sol_core::prelude::*;
use sol_node_sim::memory_node::{MemoryNode, MemoryNodeConfig, MemoryWorkloadKind, Tier};
use sol_node_sim::shared::Shared;

/// Number of 2 MB batches managed in the experiments.
const BATCHES: usize = 256;

fn make_node(kind: MemoryWorkloadKind) -> Shared<MemoryNode> {
    Shared::new(MemoryNode::new(
        kind,
        MemoryNodeConfig { batches: BATCHES, accesses_per_sec: 40_000.0, ..Default::default() },
    ))
}

/// Outcome of one memory-management policy run.
#[derive(Debug, Clone)]
pub struct MemoryOutcome {
    /// Workload name.
    pub workload: String,
    /// Policy name ("SmartMemory", "static 300 ms", "static 9.6 s").
    pub policy: String,
    /// Total access-bit resets (TLB flushes) caused by scanning.
    pub access_bit_resets: u64,
    /// Fraction of batches left in first-tier DRAM at the end of the run
    /// (1 − this is the local-memory-size reduction of Figure 7, middle).
    pub local_fraction: f64,
    /// Fraction of active seconds in which at least 80% of accesses were
    /// local (Figure 7, bottom / Figure 8).
    pub slo_attainment: f64,
}

/// Runs a static-scanning baseline: every batch is scanned at `interval`,
/// hot/warm classification targets 80% of observed activity, placement is
/// re-applied every 38.4 s, and there are no safeguards.
pub fn run_static_scanning(
    kind: MemoryWorkloadKind,
    interval: SimDuration,
    horizon: SimDuration,
) -> MemoryOutcome {
    let node = make_node(kind);
    let epoch = SimDuration::from_millis(38_400);
    let mut now = Timestamp::ZERO;
    let mut next_scan = Timestamp::ZERO;
    let mut next_plan = Timestamp::ZERO + epoch;
    let mut pages_per_batch = vec![0.0f64; BATCHES];
    let mut scans_per_batch = vec![0u32; BATCHES];
    let end = Timestamp::ZERO + horizon;
    while now < end {
        let next_event = next_scan.min(next_plan).min(end);
        node.with(|n| n.advance_to(next_event));
        now = next_event;
        if now >= next_scan {
            node.with(|n| {
                for b in 0..n.batch_count() {
                    if let Ok(scan) = n.scan_batch(b) {
                        pages_per_batch[b] += f64::from(scan.pages_set);
                        scans_per_batch[b] += 1;
                    }
                }
            });
            next_scan += interval;
        }
        if now >= next_plan {
            // Classify: hottest batches covering 80% of observed page
            // activity stay local, the rest go remote.
            let mut order: Vec<usize> = (0..BATCHES).collect();
            order.sort_by(|&a, &b| {
                pages_per_batch[b].partial_cmp(&pages_per_batch[a]).expect("no NaN")
            });
            let total: f64 = pages_per_batch.iter().sum();
            let mut covered = 0.0;
            node.with(|n| {
                for &idx in &order {
                    if total > 0.0 && covered / total < 0.8 {
                        n.migrate_to_local(idx);
                        covered += pages_per_batch[idx];
                    } else {
                        n.migrate_to_remote(idx);
                    }
                }
            });
            pages_per_batch.iter_mut().for_each(|p| *p = 0.0);
            scans_per_batch.iter_mut().for_each(|s| *s = 0);
            next_plan += epoch;
        }
    }
    let (resets, local, slo) = node.with(|n| {
        (
            n.access_bit_resets(),
            n.local_batch_count() as f64 / n.batch_count() as f64,
            n.slo_attainment(0.8),
        )
    });
    MemoryOutcome {
        workload: kind.name().to_string(),
        policy: format!("static {}", if interval.as_millis() <= 300 { "300 ms" } else { "9.6 s" }),
        access_bit_resets: resets,
        local_fraction: local,
        slo_attainment: slo,
    }
}

/// Runs the SmartMemory agent and reports the same metrics.
pub fn run_smart_memory(
    kind: MemoryWorkloadKind,
    config: MemoryConfig,
    horizon: SimDuration,
) -> (MemoryOutcome, AgentStats, Shared<MemoryNode>) {
    let node = make_node(kind);
    let mut builder = NodeRuntime::builder(node.clone());
    let agent = builder.register(memory_blueprint(&node, config));
    let report = builder.build().run_for(horizon).expect("non-empty horizon");
    let (resets, local, slo) = node.with(|n| {
        (
            n.access_bit_resets(),
            n.local_batch_count() as f64 / n.batch_count() as f64,
            n.slo_attainment(0.8),
        )
    });
    (
        MemoryOutcome {
            workload: kind.name().to_string(),
            policy: "SmartMemory".to_string(),
            access_bit_resets: resets,
            local_fraction: local,
            slo_attainment: slo,
        },
        report.agent(agent).stats().clone(),
        node,
    )
}

/// One row of Figure 7, comparing SmartMemory against static scanning.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Reduction in access-bit resets relative to the 300 ms static policy
    /// (positive means fewer resets).
    pub reset_reduction_pct: f64,
    /// Reduction in first-tier (local) memory size.
    pub local_size_reduction_pct: f64,
    /// SLO attainment (fraction of active seconds with ≥80% local accesses).
    pub slo_attainment: f64,
}

/// Figure 7: SmartMemory versus always scanning at the fastest (300 ms) and
/// slowest (9.6 s) frequencies, on ObjectStore, SQL, and SpecJBB.
pub fn fig7(horizon: SimDuration) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for kind in MemoryWorkloadKind::FIG7 {
        let fastest = run_static_scanning(kind, SCAN_INTERVALS[0], horizon);
        let slowest =
            run_static_scanning(kind, *SCAN_INTERVALS.last().expect("non-empty"), horizon);
        let (smart, _, _) = run_smart_memory(kind, MemoryConfig::default(), horizon);
        for outcome in [&fastest, &slowest, &smart] {
            rows.push(Fig7Row {
                workload: outcome.workload.clone(),
                policy: outcome.policy.clone(),
                reset_reduction_pct: (1.0
                    - outcome.access_bit_resets as f64 / fastest.access_bit_resets.max(1) as f64)
                    * 100.0,
                local_size_reduction_pct: (1.0 - outcome.local_fraction) * 100.0,
                slo_attainment: outcome.slo_attainment,
            });
        }
    }
    rows
}

/// One row of Figure 8: safeguard ablation on the oscillating SpecJBB
/// workload.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Safeguard configuration name.
    pub safeguards: String,
    /// SLO attainment over the run.
    pub slo_attainment: f64,
    /// Mean remote-access fraction over active seconds.
    pub mean_remote_fraction: f64,
    /// Number of Actuator mitigations performed.
    pub mitigations: u64,
    /// Number of predictions intercepted by the Model safeguard.
    pub intercepted_predictions: u64,
}

/// Figure 8: Model and Actuator safeguards on a workload that oscillates
/// between 150 s of SpecJBB activity and 80 s of sleep, shifting its hot set
/// on every activation.
pub fn fig8(horizon: SimDuration) -> Vec<Fig8Row> {
    let configs = [
        ("no safeguards", MemoryConfig::without_safeguards()),
        ("actuator safeguard only", MemoryConfig::actuator_safeguard_only()),
        ("all safeguards", MemoryConfig::default()),
    ];
    let mut rows = Vec::new();
    for (name, config) in configs {
        let (outcome, stats, node) =
            run_smart_memory(MemoryWorkloadKind::OscillatingSpecJbb, config, horizon);
        let mean_remote = node.with(|n| {
            let active: Vec<f64> = n
                .remote_fraction_series()
                .iter()
                .filter(|s| s.active)
                .map(|s| s.remote_fraction)
                .collect();
            if active.is_empty() {
                0.0
            } else {
                active.iter().sum::<f64>() / active.len() as f64
            }
        });
        rows.push(Fig8Row {
            safeguards: name.to_string(),
            slo_attainment: outcome.slo_attainment,
            mean_remote_fraction: mean_remote,
            mitigations: stats.actuator.mitigations,
            intercepted_predictions: stats.model.intercepted_predictions,
        });
    }
    rows
}

/// Checks that a batch index is placed where a plan said it should be
/// (helper used by integration tests).
pub fn tier_of(node: &Shared<MemoryNode>, batch: usize) -> Tier {
    node.with(|n| n.tier(batch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_smart_memory_scans_less_and_offloads_memory() {
        let rows = fig7(SimDuration::from_secs(400));
        for kind in MemoryWorkloadKind::FIG7 {
            let smart = rows
                .iter()
                .find(|r| r.workload == kind.name() && r.policy == "SmartMemory")
                .unwrap();
            assert!(
                smart.reset_reduction_pct > 0.0,
                "{}: SmartMemory should reset fewer bits than 300 ms scanning",
                kind.name()
            );
            assert!(smart.slo_attainment > 0.7, "{}: SLO too low", kind.name());
        }
        // Steady workloads offload a sizable fraction of memory (SQL shifts
        // its hot set mid-run and may end in the conservative fallback).
        for kind in [MemoryWorkloadKind::ObjectStore, MemoryWorkloadKind::SpecJbb] {
            let smart = rows
                .iter()
                .find(|r| r.workload == kind.name() && r.policy == "SmartMemory")
                .unwrap();
            assert!(
                smart.local_size_reduction_pct > 10.0,
                "{}: local size reduction {}",
                kind.name(),
                smart.local_size_reduction_pct
            );
        }
        // Three workloads x three policies.
        assert_eq!(rows.len(), 9);
        // The slowest static policy saves the most scanning but resolves the
        // hot set worst: it always offloads less memory than fast scanning.
        for kind in MemoryWorkloadKind::FIG7 {
            let slow = rows
                .iter()
                .find(|r| r.workload == kind.name() && r.policy == "static 9.6 s")
                .unwrap();
            let fast = rows
                .iter()
                .find(|r| r.workload == kind.name() && r.policy == "static 300 ms")
                .unwrap();
            assert!(slow.reset_reduction_pct > 50.0);
            assert!(slow.local_size_reduction_pct < fast.local_size_reduction_pct);
        }
    }

    #[test]
    fn fig8_all_safeguards_attain_more_of_the_slo() {
        let rows = fig8(SimDuration::from_secs(500));
        let none = rows.iter().find(|r| r.safeguards == "no safeguards").unwrap();
        let all = rows.iter().find(|r| r.safeguards == "all safeguards").unwrap();
        assert!(
            all.slo_attainment >= none.slo_attainment,
            "all safeguards {} vs none {}",
            all.slo_attainment,
            none.slo_attainment
        );
        assert!(all.mitigations + all.intercepted_predictions > 0);
    }
}
