//! Placement experiments: a placeable fleet under protean-style VM churn.
//!
//! Beyond the paper's static single-node evaluation, these experiments drive
//! [`FleetRuntime::run_with`] with the shipped `GreedyPacker` over seeded
//! `ArrivalTrace`s of VM arrivals and departures, and measure two things at
//! once:
//!
//! * **Placement behaviour** — admissions, departures, rebalancing
//!   migrations, failed placements, per-node occupancy percentiles, and
//!   packing efficiency, the `benches/placement.rs` churn-sweep table.
//! * **Safety under churn** — the on-node learners' safeguard-activation
//!   rates and the primary VMs' tail latency as the platform reshuffles work
//!   under them, compared against the churn-free `NullController` baseline
//!   (the zero-arrivals row).
//!
//! Placement runs are deterministic: the same `(recipe, config, trace,
//! horizon)` produces a byte-identical `FleetReport` regardless of the
//! worker-thread count, so the printed tables are reproducible run to run.

use sol_agents::colocation::{colocated_recipe, ColocationConfig};
use sol_core::prelude::*;

/// Placeable VM slots per node used by the placement experiments: 6 of the
/// node's 8 cores may host migrated-in VMs, contending with the ObjectStore
/// primary for physical cores.
pub const PLACEABLE_CORES: f64 = 6.0;

/// Fixed fleet seed of the placement experiments (results stay comparable
/// across churn levels).
pub const PLACEMENT_FLEET_SEED: u64 = 0x50_1ace;

/// One row of the churn-sweep table: a fleet under one arrival-trace
/// intensity.
#[derive(Debug, Clone)]
pub struct PlacementRow {
    /// VM arrivals in the trace (0 = the churn-free baseline).
    pub arrivals: usize,
    /// Number of simulated servers.
    pub nodes: usize,
    /// Commands the controller issued across all epoch boundaries.
    pub commands: u64,
    /// Successful admissions.
    pub admitted: u64,
    /// Successful departures.
    pub departed: u64,
    /// Successful migrations.
    pub migrated: u64,
    /// Commands that failed against a node (capacity, unknown unit, ...).
    pub failed_placements: u64,
    /// Mean over barriers of fleet-wide resident cores / placeable cores.
    pub packing_efficiency: f64,
    /// Median per-node mean occupancy.
    pub occupancy_p50: f64,
    /// Worst per-node mean occupancy.
    pub occupancy_max: f64,
    /// Fraction of nodes on which a SmartOverclock safeguard activated.
    pub overclock_safeguard_rate: f64,
    /// Fraction of nodes on which a SmartHarvest safeguard activated.
    pub harvest_safeguard_rate: f64,
    /// Fleet-wide mean of the per-node p99 request latency (ms).
    pub mean_p99_latency_ms: f64,
}

/// The arrival trace used for `arrivals` VMs over `horizon` (sized so VMs
/// live a few epochs and churn persists through the run).
pub fn churn_trace(arrivals: usize, horizon: SimDuration) -> ArrivalTrace {
    ArrivalTrace::generate(
        PLACEMENT_FLEET_SEED,
        &ArrivalTraceConfig {
            workloads: arrivals,
            span: horizon,
            min_cores: 0.5,
            max_cores: 2.5,
            min_lifetime: SimDuration::from_secs(horizon.as_secs_f64() as u64 / 6 + 1),
            max_lifetime: SimDuration::from_secs(horizon.as_secs_f64() as u64 / 2 + 2),
        },
    )
}

/// Runs a `nodes`-server placeable fleet under a `GreedyPacker` driven by an
/// `arrivals`-VM trace and reports the churn row.
pub fn placement_row(
    nodes: usize,
    threads: usize,
    arrivals: usize,
    horizon: SimDuration,
) -> PlacementRow {
    let preset = colocated_recipe(ColocationConfig {
        placeable_cores: PLACEABLE_CORES,
        ..ColocationConfig::default()
    });
    let config =
        FleetConfig { nodes, threads, seed: PLACEMENT_FLEET_SEED, ..FleetConfig::default() };
    let fleet = FleetRuntime::new(preset.recipe, config).expect("valid fleet config");
    let mut packer = GreedyPacker::new(churn_trace(arrivals, horizon));
    let report = fleet.run_with(&mut packer, horizon).expect("placement run succeeds");

    let overclock = report.role(preset.overclock);
    let harvest = report.role(preset.harvest);
    let p99 = report.metric("p99_latency_ms").expect("recipe reports p99 latency");
    PlacementRow {
        arrivals,
        nodes,
        commands: report.placement.commands,
        admitted: report.placement.admitted,
        departed: report.placement.departed,
        migrated: report.placement.migrated,
        failed_placements: report.placement.failed_placements,
        packing_efficiency: report.placement.packing_efficiency,
        occupancy_p50: report.placement.occupancy.p50,
        occupancy_max: report.placement.occupancy.max,
        overclock_safeguard_rate: overclock.safeguard_activation_rate,
        harvest_safeguard_rate: harvest.safeguard_activation_rate,
        mean_p99_latency_ms: p99.mean,
    }
}

/// The full churn sweep: one row per arrival count (include 0 for the
/// churn-free baseline).
pub fn churn_sweep(
    nodes: usize,
    threads: usize,
    horizon: SimDuration,
    arrival_counts: &[usize],
) -> Vec<PlacementRow> {
    arrival_counts
        .iter()
        .map(|&arrivals| placement_row(nodes, threads, arrivals, horizon))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_row_reports_placement_and_safety() {
        let row = placement_row(3, 2, 12, SimDuration::from_secs(15));
        assert_eq!(row.nodes, 3);
        assert_eq!(row.arrivals, 12);
        assert!(row.commands > 0, "a churning trace must produce commands");
        assert!(row.admitted > 0, "some VMs must be admitted");
        assert!(row.packing_efficiency > 0.0);
        assert!(row.occupancy_p50 <= row.occupancy_max);
        assert!((0.0..=1.0).contains(&row.overclock_safeguard_rate));
        assert!((0.0..=1.0).contains(&row.harvest_safeguard_rate));
        assert!(row.mean_p99_latency_ms > 0.0);
    }

    #[test]
    fn zero_churn_row_is_a_null_baseline() {
        let row = placement_row(2, 2, 0, SimDuration::from_secs(10));
        assert_eq!(row.commands, 0);
        assert_eq!(row.admitted, 0);
        assert_eq!(row.migrated, 0);
        assert_eq!(row.failed_placements, 0);
        assert_eq!(row.packing_efficiency, 0.0);
    }
}
