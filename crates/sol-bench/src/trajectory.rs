//! The perf-trajectory tooling behind the committed `BENCH_fleet.json`
//! artifact: a parser for the flat-object JSON that [`report::json_rows`]
//! emits, and the row comparison CI uses to diff a branch's committed
//! artifact against its parent's.
//!
//! Hand-rolled like the writer: the repo vendors no JSON crate, and the
//! format is deliberately trivial — an array of flat `"name": number`
//! objects, nothing nested, nothing quoted but field names.
//!
//! [`report::json_rows`]: crate::report::json_rows

use std::collections::BTreeMap;

/// One parsed row: field name → value (`None` for JSON `null`, which the
/// writer emits for non-finite values).
pub type BenchRow = BTreeMap<String, Option<f64>>;

/// Parses the output of [`report::json_rows`] back into rows.
///
/// Tolerant of whitespace but nothing else: any token outside the flat
/// array-of-objects shape is an error naming the offending snippet, so a
/// corrupted artifact fails loudly instead of diffing as "no change".
///
/// [`report::json_rows`]: crate::report::json_rows
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn parse_rows(json: &str) -> Result<Vec<BenchRow>, String> {
    let mut rest = json.trim();
    rest = expect(rest, '[')?;
    let mut rows = Vec::new();
    if let Some(after) = try_consume(rest, ']') {
        return finish(after, rows);
    }
    loop {
        let (row, after) = parse_object(rest)?;
        rows.push(row);
        rest = after.trim_start();
        if let Some(after) = try_consume(rest, ',') {
            rest = after;
            continue;
        }
        rest = expect(rest, ']')?;
        return finish(rest, rows);
    }
}

fn finish(rest: &str, rows: Vec<BenchRow>) -> Result<Vec<BenchRow>, String> {
    if rest.trim().is_empty() {
        Ok(rows)
    } else {
        Err(format!("trailing content after array: {:?}", snippet(rest)))
    }
}

fn parse_object(input: &str) -> Result<(BenchRow, &str), String> {
    let mut rest = expect(input, '{')?;
    let mut row = BenchRow::new();
    if let Some(after) = try_consume(rest, '}') {
        return Ok((row, after));
    }
    loop {
        let (name, after) = parse_string(rest)?;
        rest = expect(after, ':')?;
        let (value, after) = parse_number(rest)?;
        row.insert(name, value);
        rest = after.trim_start();
        if let Some(after) = try_consume(rest, ',') {
            rest = after;
            continue;
        }
        rest = expect(rest, '}')?;
        return Ok((row, rest));
    }
}

fn parse_string(input: &str) -> Result<(String, &str), String> {
    let rest = expect(input, '"')?;
    match rest.find('"') {
        Some(end) => Ok((rest[..end].to_string(), &rest[end + 1..])),
        None => Err(format!("unterminated string at {:?}", snippet(input))),
    }
}

fn parse_number(input: &str) -> Result<(Option<f64>, &str), String> {
    let rest = input.trim_start();
    if let Some(after) = rest.strip_prefix("null") {
        return Ok((None, after));
    }
    let end = rest
        .char_indices()
        .find(|&(_, c)| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .map_or(rest.len(), |(i, _)| i);
    rest[..end]
        .parse::<f64>()
        .map(|value| (Some(value), &rest[end..]))
        .map_err(|_| format!("expected a number at {:?}", snippet(rest)))
}

fn expect(input: &str, token: char) -> Result<&str, String> {
    try_consume(input, token).ok_or_else(|| format!("expected {token:?} at {:?}", snippet(input)))
}

fn try_consume(input: &str, token: char) -> Option<&str> {
    input.trim_start().strip_prefix(token)
}

fn snippet(input: &str) -> &str {
    &input[..input.len().min(24)]
}

/// One regression found by [`compare_fleet_rows`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Fleet size of the regressed cell.
    pub nodes: u64,
    /// Thread count of the regressed cell.
    pub threads: u64,
    /// Parent's wall-ms per node-minute.
    pub before: f64,
    /// Branch's wall-ms per node-minute.
    pub after: f64,
}

impl Regression {
    /// The relative slowdown, e.g. `0.25` for a 25% regression.
    pub fn slowdown(&self) -> f64 {
        self.after / self.before - 1.0
    }
}

/// Cells whose total wall cost stayed under this floor on both sides are
/// skipped by [`compare_fleet_rows`]: a sub-100 ms measurement on the shared
/// CI host is dominated by scheduler and allocator noise, so its ratio says
/// nothing about the code. The floor is read against
/// `wall_ms_per_virtual_minute` — the fleet bench's horizon is one virtual
/// minute, so that column *is* the cell's wall cost.
pub const NOISE_FLOOR_WALL_MS: f64 = 100.0;

/// Compares two parsed `BENCH_fleet.json` artifacts cell by cell (keyed by
/// `nodes` × `threads`) and returns every cell whose
/// `wall_ms_per_node_minute` regressed by more than `threshold` (e.g. `0.2`
/// for 20%). Cells present on only one side are skipped — growing the grid
/// must not read as a regression — and so are rows missing the required
/// fields (e.g. a schema too old to carry per-node cost) and cells below the
/// [`NOISE_FLOOR_WALL_MS`] noise floor on both sides.
pub fn compare_fleet_rows(
    parent: &[BenchRow],
    branch: &[BenchRow],
    threshold: f64,
) -> Vec<Regression> {
    let field = |row: &BenchRow, name: &str| row.get(name).copied().flatten();
    let cell = |row: &BenchRow| -> Option<((u64, u64), f64, Option<f64>)> {
        let nodes = field(row, "nodes")? as u64;
        let threads = field(row, "threads")? as u64;
        let per_node = field(row, "wall_ms_per_node_minute")?;
        Some(((nodes, threads), per_node, field(row, "wall_ms_per_virtual_minute")))
    };
    let baseline: BTreeMap<(u64, u64), (f64, Option<f64>)> =
        parent.iter().filter_map(cell).map(|(key, v, wall)| (key, (v, wall))).collect();
    let mut regressions = Vec::new();
    for row in branch {
        let Some((key, after, after_wall)) = cell(row) else { continue };
        let Some(&(before, before_wall)) = baseline.get(&key) else { continue };
        // Apply the noise floor only when both sides carry the wall column:
        // a schema without it diffs exactly as before.
        if let (Some(b), Some(a)) = (before_wall, after_wall) {
            if b.max(a) < NOISE_FLOOR_WALL_MS {
                continue;
            }
        }
        if before > 0.0 && after / before - 1.0 > threshold {
            regressions.push(Regression { nodes: key.0, threads: key.1, before, after });
        }
    }
    regressions
}

/// Replaces an artifact's rows keyed by `key_field` with `fresh` rows (itself
/// a [`json_rows`](crate::report::json_rows) document), leaving every other
/// row byte-untouched — the idempotent merge under the multi-bench
/// `BENCH_fleet.json`: the fleet bench owns rows keyed `"nodes"`, the
/// learning bench `"learning_nodes"`, the memory bench `"memory_nodes"`.
/// Re-running one bench therefore never perturbs another's committed cells,
/// and running it twice is a fixed point. The writer emits one row per line,
/// so the merge is line-based — but both inputs and the result are validated
/// with the trajectory parser before anything is returned.
///
/// A key only matches exactly: row keys are matched as `"key_field"` with
/// quotes, so `"nodes"` does not claim `"learning_nodes"` rows.
///
/// # Errors
///
/// Returns a description of the first malformed input or result.
pub fn merge_artifact_rows(existing: &str, fresh: &str, key_field: &str) -> Result<String, String> {
    parse_rows(existing).map_err(|e| format!("existing artifact is malformed: {e}"))?;
    parse_rows(fresh).map_err(|e| format!("fresh rows are malformed: {e}"))?;
    let key = format!("\"{key_field}\"");
    let rows: Vec<String> = existing
        .lines()
        .filter(|line| line.contains('{') && !line.contains(&key))
        .chain(fresh.lines().filter(|line| line.contains('{')))
        .map(|line| line.trim_end().trim_end_matches(',').to_string())
        .collect();
    let merged = format!("[\n{}\n]\n", rows.join(",\n"));
    parse_rows(&merged).map_err(|e| format!("merged artifact is malformed: {e}"))?;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_what_json_rows_writes() {
        let json = crate::report::json_rows(&[
            vec![("nodes", 8.0), ("threads", 2.0), ("wall_ms_per_node_minute", 11.5)],
            vec![("nodes", 64.0), ("threads", 2.0), ("wall_ms_per_node_minute", f64::NAN)],
        ]);
        let rows = parse_rows(&json).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["nodes"], Some(8.0));
        assert_eq!(rows[0]["wall_ms_per_node_minute"], Some(11.5));
        assert_eq!(rows[1]["wall_ms_per_node_minute"], None);
    }

    #[test]
    fn parses_the_empty_array() {
        assert_eq!(parse_rows("[]").unwrap(), Vec::<BenchRow>::new());
        assert_eq!(parse_rows(" [\n]\n").unwrap(), Vec::<BenchRow>::new());
    }

    #[test]
    fn rejects_malformed_artifacts() {
        assert!(parse_rows("").is_err());
        assert!(parse_rows("[{\"a\": }]").is_err());
        assert!(parse_rows("[{\"a\": 1]").is_err());
        assert!(parse_rows("[{\"a\": 1}] trailing").is_err());
        assert!(parse_rows("[{\"a\" 1}]").is_err());
    }

    fn row(nodes: f64, threads: f64, per_node: f64) -> BenchRow {
        BenchRow::from([
            ("nodes".to_string(), Some(nodes)),
            ("threads".to_string(), Some(threads)),
            ("wall_ms_per_node_minute".to_string(), Some(per_node)),
        ])
    }

    #[test]
    fn flags_only_cells_beyond_the_threshold() {
        let parent = vec![row(8.0, 1.0, 10.0), row(8.0, 2.0, 10.0)];
        let branch = vec![
            row(8.0, 1.0, 11.9),  // +19%: within threshold
            row(8.0, 2.0, 12.5),  // +25%: regression
            row(64.0, 1.0, 99.0), // no baseline cell: skipped
        ];
        let regressions = compare_fleet_rows(&parent, &branch, 0.2);
        assert_eq!(regressions.len(), 1);
        assert_eq!((regressions[0].nodes, regressions[0].threads), (8, 2));
        assert!((regressions[0].slowdown() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn improvement_is_never_a_regression() {
        let parent = vec![row(8.0, 1.0, 10.0)];
        let branch = vec![row(8.0, 1.0, 7.0)];
        assert!(compare_fleet_rows(&parent, &branch, 0.2).is_empty());
    }

    /// Rows keyed by foreign fields — like the learning bench's
    /// `learning_nodes`/`learning_agg_ms_per_round` cells sharing the
    /// artifact — are invisible to the fleet diff on both sides, no matter
    /// how wildly their values move.
    #[test]
    fn rows_under_new_keys_are_skipped_on_both_sides() {
        let learning = |ms: f64| {
            BenchRow::from([
                ("schema_version".to_string(), Some(2.0)),
                ("learning_nodes".to_string(), Some(64.0)),
                ("learning_rule".to_string(), Some(1.0)),
                ("learning_agg_ms_per_round".to_string(), Some(ms)),
            ])
        };
        let parent = vec![row(8.0, 1.0, 10.0), learning(0.04)];
        let branch = vec![row(8.0, 1.0, 10.5), learning(400.0)];
        assert!(compare_fleet_rows(&parent, &branch, 0.2).is_empty());
    }

    /// The trust bench's rows are keyed `trust_nodes` and carry none of the
    /// fleet cells' required fields, so the fleet diff skips them by
    /// construction — detection latency may move freely (it measures the
    /// adversary, not the runtime) without ever reading as a perf regression,
    /// and a fleet merge never claims them.
    #[test]
    fn trust_rows_are_invisible_to_the_fleet_diff() {
        let trust = |rounds: f64| {
            BenchRow::from([
                ("schema_version".to_string(), Some(2.0)),
                ("trust_nodes".to_string(), Some(64.0)),
                ("trust_victims".to_string(), Some(8.0)),
                ("trust_detect_rounds".to_string(), Some(rounds)),
                ("trust_false_positive_rate".to_string(), Some(0.0)),
            ])
        };
        let parent = vec![row(8.0, 1.0, 10.0), trust(4.0)];
        let branch = vec![row(8.0, 1.0, 10.5), trust(400.0)];
        assert!(compare_fleet_rows(&parent, &branch, 0.2).is_empty());

        // And the merge keeps them byte-intact under a fleet-row refresh.
        let existing = "[\n{\"nodes\": 8, \"threads\": 1, \"wall_ms_per_node_minute\": 10},\n\
                        {\"trust_nodes\": 64, \"trust_detect_rounds\": 4}\n]\n";
        let fresh = "[\n{\"nodes\": 8, \"threads\": 1, \"wall_ms_per_node_minute\": 11}\n]\n";
        let merged = merge_artifact_rows(existing, fresh, "nodes").unwrap();
        let rows = parse_rows(&merged).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["trust_detect_rounds"], Some(4.0));
        assert_eq!(rows[1]["wall_ms_per_node_minute"], Some(11.0));
    }

    fn walled(nodes: f64, threads: f64, per_node: f64, wall: f64) -> BenchRow {
        let mut r = row(nodes, threads, per_node);
        r.insert("wall_ms_per_virtual_minute".to_string(), Some(wall));
        r
    }

    /// Sub-noise-floor cells (tiny fleets whose whole run is a few
    /// milliseconds) may double in cost without being flagged: the
    /// measurement is noise, not signal. Crossing the floor on either side
    /// re-arms the diff.
    #[test]
    fn cells_below_the_noise_floor_are_skipped() {
        let parent = vec![walled(1.0, 1.0, 10.0, 10.0), walled(256.0, 1.0, 10.0, 2560.0)];
        let branch = vec![
            walled(1.0, 1.0, 25.0, 25.0),     // +150% but under 100 ms wall: noise
            walled(256.0, 1.0, 13.0, 3328.0), // +30% at 3.3 s wall: real
        ];
        let regressions = compare_fleet_rows(&parent, &branch, 0.2);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].nodes, 256);

        // A cell that grew *past* the floor is diffed: the branch made a
        // formerly-trivial cell expensive.
        let branch = vec![walled(1.0, 1.0, 300.0, 300.0)];
        assert_eq!(compare_fleet_rows(&parent, &branch, 0.2).len(), 1);

        // Rows without the wall column (schema v2) diff exactly as before.
        let parent = vec![row(1.0, 1.0, 10.0)];
        let branch = vec![row(1.0, 1.0, 25.0)];
        assert_eq!(compare_fleet_rows(&parent, &branch, 0.2).len(), 1);
    }

    #[test]
    fn merge_replaces_only_the_keyed_rows() {
        let existing = "[\n{\"nodes\": 8, \"wall_ms_per_node_minute\": 10},\n\
                        {\"learning_nodes\": 64, \"learning_agg_ms_per_round\": 0.04}\n]\n";
        let fresh = "[\n{\"learning_nodes\": 64, \"learning_agg_ms_per_round\": 0.05}\n]\n";
        let merged = merge_artifact_rows(existing, fresh, "learning_nodes").unwrap();
        let rows = parse_rows(&merged).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["nodes"], Some(8.0));
        assert_eq!(rows[1]["learning_agg_ms_per_round"], Some(0.05));
        // Idempotent: merging the same fresh rows again is a fixed point.
        assert_eq!(merge_artifact_rows(&merged, fresh, "learning_nodes").unwrap(), merged);
    }

    /// `"nodes"` must not claim `"learning_nodes"` rows: keys match with
    /// their quotes.
    #[test]
    fn merge_keys_do_not_match_substrings() {
        let existing = "[\n{\"learning_nodes\": 64, \"learning_agg_ms_per_round\": 0.04}\n]\n";
        let fresh = "[\n{\"nodes\": 8, \"threads\": 1, \"wall_ms_per_node_minute\": 10}\n]\n";
        let merged = merge_artifact_rows(existing, fresh, "nodes").unwrap();
        let rows = parse_rows(&merged).unwrap();
        assert_eq!(rows.len(), 2, "the learning row must survive a fleet merge");
    }

    #[test]
    fn merge_rejects_malformed_inputs() {
        assert!(merge_artifact_rows("not json", "[\n]\n", "nodes").is_err());
        assert!(merge_artifact_rows("[\n]\n", "not json", "nodes").is_err());
        // An empty artifact accepts its first rows.
        let merged = merge_artifact_rows("[\n]\n", "[\n{\"nodes\": 1}\n]\n", "nodes").unwrap();
        assert_eq!(parse_rows(&merged).unwrap().len(), 1);
    }

    /// A cell disappearing from the branch (shrunk grid) or a row missing
    /// the per-node field (older schema) is skipped, never a regression.
    #[test]
    fn missing_rows_and_missing_fields_are_skipped() {
        let parent = vec![row(8.0, 1.0, 10.0), row(64.0, 1.0, 10.0)];
        let branch = vec![row(8.0, 1.0, 10.0)];
        assert!(compare_fleet_rows(&parent, &branch, 0.2).is_empty());

        let mut no_per_node = row(8.0, 1.0, 999.0);
        no_per_node.remove("wall_ms_per_node_minute");
        assert!(compare_fleet_rows(&parent, &[no_per_node], 0.2).is_empty());

        // null (non-finite) per-node cost reads as missing, not as zero.
        let mut null_per_node = row(8.0, 1.0, 0.0);
        null_per_node.insert("wall_ms_per_node_minute".to_string(), None);
        assert!(compare_fleet_rows(&parent, &[null_per_node], 0.2).is_empty());
    }
}
