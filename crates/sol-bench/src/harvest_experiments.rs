//! Experiments reproducing Figure 6 (the SmartHarvest safeguard evaluation,
//! paper §6.3).

use sol_agents::harvest::{
    blocking_harvest_schedule, harvest_schedule, smart_harvest, HarvestConfig,
};
use sol_core::prelude::*;
use sol_core::schedule::Schedule;
use sol_node_sim::harvest_node::{BurstyService, HarvestNode, HarvestNodeConfig};
use sol_node_sim::shared::Shared;

/// The two latency-sensitive primary workloads used by Figure 6.
pub fn workloads() -> Vec<BurstyService> {
    vec![BurstyService::image_dnn(), BurstyService::moses()]
}

/// Outcome of one SmartHarvest run.
#[derive(Debug, Clone)]
pub struct HarvestOutcome {
    /// Primary workload name.
    pub workload: String,
    /// Scenario ("invalid data", "broken model", "delayed predictions").
    pub scenario: String,
    /// Variant within the scenario ("with safeguard", "without safeguard",
    /// "blocking", "non-blocking").
    pub variant: String,
    /// Mean primary-VM latency relative to the no-harvesting baseline.
    pub normalized_mean_latency: f64,
    /// P99 primary-VM latency relative to the no-harvesting baseline.
    pub normalized_p99_latency: f64,
    /// Fraction of time the primary VM was starved of cores.
    pub starvation_fraction: f64,
    /// Core-seconds delivered to the ElasticVM.
    pub harvested_core_seconds: f64,
}

fn run_once(
    service: BurstyService,
    config: HarvestConfig,
    schedule: Schedule,
    horizon: SimDuration,
    delays_at_bursts: bool,
) -> (Shared<HarvestNode>, AgentStats) {
    let node = Shared::new(HarvestNode::new(service.clone(), HarvestNodeConfig::default()));
    let (model, actuator) = smart_harvest(&node, config);
    let mut builder = NodeRuntime::builder(node.clone());
    let agent = builder.agent("smart-harvest", model, actuator, schedule);
    let mut runtime = builder.build();
    if delays_at_bursts {
        // Inject a 1-second Model scheduling delay at every burst start — the
        // worst case: demand rises exactly while the model cannot run.
        let mut t = Timestamp::ZERO + service.burst_period;
        while t < Timestamp::ZERO + horizon {
            runtime.delay_model_at(agent, t, SimDuration::from_secs(1));
            t += service.burst_period * 4;
        }
    }
    let report = runtime.run_for(horizon).expect("non-empty horizon");
    let stats = report.agent(agent).stats().clone();
    (node, stats)
}

fn baseline_latencies(service: &BurstyService, horizon: SimDuration) -> (f64, f64) {
    // No harvesting at all: the primary VM keeps every core.
    let node = Shared::new(HarvestNode::new(service.clone(), HarvestNodeConfig::default()));
    node.with(|n| n.advance_to(Timestamp::ZERO + horizon));
    node.with(|n| (n.mean_latency_ms(), n.p99_latency_ms().max(n.mean_latency_ms())))
}

fn outcome(
    service: &BurstyService,
    scenario: &str,
    variant: &str,
    node: &Shared<HarvestNode>,
    baseline: (f64, f64),
) -> HarvestOutcome {
    let (mean, p99, starved, harvested) = node.with(|n| {
        (
            n.mean_latency_ms(),
            n.p99_latency_ms(),
            n.starvation_fraction(),
            n.harvested_core_seconds(),
        )
    });
    HarvestOutcome {
        workload: service.name().to_string(),
        scenario: scenario.to_string(),
        variant: variant.to_string(),
        normalized_mean_latency: mean / baseline.0.max(1e-12),
        normalized_p99_latency: p99 / baseline.1.max(1e-12),
        starvation_fraction: starved,
        harvested_core_seconds: harvested,
    }
}

/// Figure 6, left: the data-validation safeguard. Without it, the model
/// learns from samples taken while the primary VM is saturated and
/// systematically under-predicts demand.
pub fn fig6_invalid_data(horizon: SimDuration) -> Vec<HarvestOutcome> {
    let mut rows = Vec::new();
    for service in workloads() {
        let baseline = baseline_latencies(&service, horizon);
        for (variant, validate) in [("with safeguard", true), ("without safeguard", false)] {
            let config = HarvestConfig { validate_data: validate, ..HarvestConfig::default() };
            let (node, _) = run_once(service.clone(), config, harvest_schedule(), horizon, false);
            rows.push(outcome(&service, "invalid data", variant, &node, baseline));
        }
    }
    rows
}

/// Figure 6, middle: the model safeguard against a broken model that
/// consistently under-predicts the primary VM's demand.
pub fn fig6_broken_model(horizon: SimDuration) -> Vec<HarvestOutcome> {
    let mut rows = Vec::new();
    for service in workloads() {
        let baseline = baseline_latencies(&service, horizon);
        for (variant, safeguards) in [("with safeguard", true), ("without safeguard", false)] {
            let config = if safeguards {
                HarvestConfig { broken_model: true, ..HarvestConfig::default() }
            } else {
                HarvestConfig { broken_model: true, ..HarvestConfig::without_safeguards() }
            };
            let (node, _) = run_once(service.clone(), config, harvest_schedule(), horizon, false);
            rows.push(outcome(&service, "broken model", variant, &node, baseline));
        }
    }
    rows
}

/// Figure 6, right: 1-second Model scheduling delays injected while the
/// primary VM's demand is rising, comparing SOL's non-blocking Actuator to a
/// blocking one.
pub fn fig6_delayed_predictions(horizon: SimDuration) -> Vec<HarvestOutcome> {
    let mut rows = Vec::new();
    for service in workloads() {
        let baseline = baseline_latencies(&service, horizon);
        for (variant, schedule, config) in [
            ("non-blocking", harvest_schedule(), HarvestConfig::default()),
            // A blocking Actuator is stuck waiting on the prediction queue, so
            // it cannot run its own safeguard either; disable it to model the
            // strawman faithfully.
            (
                "blocking",
                blocking_harvest_schedule(),
                HarvestConfig { actuator_safeguard: false, ..HarvestConfig::default() },
            ),
        ] {
            let (node, _) = run_once(service.clone(), config, schedule, horizon, true);
            rows.push(outcome(&service, "delayed predictions", variant, &node, baseline));
        }
    }
    rows
}

/// All three panels of Figure 6.
pub fn fig6(horizon: SimDuration) -> Vec<HarvestOutcome> {
    let mut rows = fig6_invalid_data(horizon);
    rows.extend(fig6_broken_model(horizon));
    rows.extend(fig6_delayed_predictions(horizon));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: SimDuration = SimDuration::from_secs(30);

    #[test]
    fn invalid_data_safeguard_reduces_latency_impact() {
        let rows = fig6_invalid_data(SimDuration::from_secs(60));
        for service in ["image-dnn", "moses"] {
            let with = rows
                .iter()
                .find(|r| r.workload == service && r.variant == "with safeguard")
                .unwrap();
            let without = rows
                .iter()
                .find(|r| r.workload == service && r.variant == "without safeguard")
                .unwrap();
            // The validation safeguard must not make things worse, and both
            // variants must keep the latency impact bounded; the full-length
            // bench run reports the actual gap.
            assert!(
                without.normalized_mean_latency >= with.normalized_mean_latency * 0.95,
                "{service}: {} vs {}",
                without.normalized_mean_latency,
                with.normalized_mean_latency
            );
            assert!(with.normalized_mean_latency < 1.5);
            assert!(with.harvested_core_seconds > 10.0);
        }
    }

    #[test]
    fn broken_model_safeguard_reduces_starvation() {
        let rows = fig6_broken_model(SHORT);
        for service in ["image-dnn", "moses"] {
            let with = rows
                .iter()
                .find(|r| r.workload == service && r.variant == "with safeguard")
                .unwrap();
            let without = rows
                .iter()
                .find(|r| r.workload == service && r.variant == "without safeguard")
                .unwrap();
            assert!(without.starvation_fraction > 1.5 * with.starvation_fraction.max(0.001));
        }
    }

    #[test]
    fn non_blocking_actuator_beats_blocking_under_delays() {
        let rows = fig6_delayed_predictions(SHORT);
        for service in ["image-dnn", "moses"] {
            let non_blocking =
                rows.iter().find(|r| r.workload == service && r.variant == "non-blocking").unwrap();
            let blocking =
                rows.iter().find(|r| r.workload == service && r.variant == "blocking").unwrap();
            assert!(
                blocking.normalized_mean_latency >= non_blocking.normalized_mean_latency,
                "{service}: blocking {} vs non-blocking {}",
                blocking.normalized_mean_latency,
                non_blocking.normalized_mean_latency
            );
        }
    }
}
