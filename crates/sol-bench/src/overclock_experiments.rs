//! Experiments reproducing Figures 1–5 (the SmartOverclock evaluation,
//! paper §6.2).

use sol_agents::overclock::{
    blocking_overclock_schedule, overclock_blueprint, overclock_schedule, smart_overclock,
    OverclockConfig,
};
use sol_core::prelude::*;
use sol_node_sim::cpu_node::{CpuNode, CpuNodeConfig};
use sol_node_sim::shared::Shared;
use sol_node_sim::workload::{OverclockWorkloadKind, SyntheticBatch};

/// Number of cores used by the overclocking experiments.
const CORES: usize = 8;

fn make_node(kind: OverclockWorkloadKind) -> Shared<CpuNode> {
    Shared::new(CpuNode::new(
        kind.build(CORES),
        CpuNodeConfig { cores: CORES, ..Default::default() },
    ))
}

/// Outcome of running one overclocking policy on one workload.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// Workload name.
    pub workload: String,
    /// Policy name ("static 1.5 GHz", "SmartOverclock", ...).
    pub policy: String,
    /// Workload performance score (higher is better).
    pub performance: f64,
    /// Average node power in watts.
    pub power_watts: f64,
}

/// Runs a static-frequency policy: the frequency is set once and never
/// changes (the baselines of Figure 1).
pub fn run_static_frequency(
    kind: OverclockWorkloadKind,
    freq_ghz: f64,
    horizon: SimDuration,
) -> PolicyOutcome {
    let node = make_node(kind);
    node.with(|n| {
        n.set_frequency_ghz(freq_ghz);
        n.advance_to(Timestamp::ZERO + horizon);
    });
    let (performance, power_watts) =
        node.with(|n| (n.performance().score, n.average_power_watts()));
    PolicyOutcome {
        workload: kind.name().to_string(),
        policy: format!("static {freq_ghz} GHz"),
        performance,
        power_watts,
    }
}

/// Runs the SmartOverclock agent with the given configuration and returns the
/// workload outcome plus the agent's runtime statistics.
pub fn run_smart_overclock(
    kind: OverclockWorkloadKind,
    config: OverclockConfig,
    horizon: SimDuration,
) -> (PolicyOutcome, AgentStats) {
    let node = make_node(kind);
    let mut builder = NodeRuntime::builder(node.clone());
    let agent = builder.register(overclock_blueprint(&node, config));
    let report = builder.build().run_for(horizon).expect("non-empty horizon");
    let (performance, power_watts) =
        node.with(|n| (n.performance().score, n.average_power_watts()));
    (
        PolicyOutcome {
            workload: kind.name().to_string(),
            policy: "SmartOverclock".to_string(),
            performance,
            power_watts,
        },
        report.agent(agent).stats().clone(),
    )
}

/// One row of Figure 1: performance and power normalized to the static
/// nominal-frequency (1.5 GHz) baseline.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Workload name.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Performance relative to static 1.5 GHz.
    pub normalized_performance: f64,
    /// Power relative to static 1.5 GHz.
    pub normalized_power: f64,
}

/// Figure 1: SmartOverclock against static frequency policies on the three
/// workloads.
pub fn fig1(horizon: SimDuration) -> Vec<Fig1Row> {
    let mut rows = Vec::new();
    for kind in OverclockWorkloadKind::ALL {
        let baseline = run_static_frequency(kind, 1.5, horizon);
        let mut outcomes = vec![baseline.clone()];
        for freq in [1.9, 2.3] {
            outcomes.push(run_static_frequency(kind, freq, horizon));
        }
        outcomes.push(run_smart_overclock(kind, OverclockConfig::default(), horizon).0);
        for outcome in outcomes {
            rows.push(Fig1Row {
                workload: outcome.workload.clone(),
                policy: outcome.policy.clone(),
                normalized_performance: outcome.performance / baseline.performance.max(1e-12),
                normalized_power: outcome.power_watts / baseline.power_watts.max(1e-12),
            });
        }
    }
    rows
}

/// One row of Figure 2: the effect of invalid IPS readings with and without
/// the data-validation safeguard, normalized to the fault-free agent.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Fraction of counter samples corrupted.
    pub bad_data_fraction: f64,
    /// Whether data validation was enabled.
    pub validation: bool,
    /// Performance relative to the fault-free agent.
    pub normalized_performance: f64,
    /// Power relative to the fault-free agent.
    pub normalized_power: f64,
    /// Samples the agent discarded.
    pub samples_discarded: u64,
}

/// Figure 2: data-validation safeguard under injected out-of-range IPS
/// readings (Synthetic workload).
pub fn fig2(horizon: SimDuration, bad_fractions: &[f64]) -> Vec<Fig2Row> {
    let ideal =
        run_smart_overclock(OverclockWorkloadKind::Synthetic, OverclockConfig::default(), horizon)
            .0;
    let mut rows = Vec::new();
    for &fraction in bad_fractions {
        for validation in [true, false] {
            let node = make_node(OverclockWorkloadKind::Synthetic);
            node.with(|n| n.set_bad_ips_probability(fraction));
            let config = OverclockConfig { validate_data: validation, ..Default::default() };
            let mut builder = NodeRuntime::builder(node.clone());
            let agent = builder.register(overclock_blueprint(&node, config));
            let report = builder.build().run_for(horizon).expect("non-empty horizon");
            let (performance, power) =
                node.with(|n| (n.performance().score, n.average_power_watts()));
            rows.push(Fig2Row {
                bad_data_fraction: fraction,
                validation,
                normalized_performance: performance / ideal.performance.max(1e-12),
                normalized_power: power / ideal.power_watts.max(1e-12),
                samples_discarded: report.agent(agent).stats().model.samples_discarded,
            });
        }
    }
    rows
}

/// One row of Figure 3: power and performance impact of a broken model that
/// always overclocks, with and without the model safeguard.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Workload name.
    pub workload: String,
    /// Whether the model safeguard was enabled.
    pub model_safeguard: bool,
    /// Percent increase in power relative to the correctly working agent.
    pub power_increase_pct: f64,
    /// Performance relative to the correctly working agent.
    pub normalized_performance: f64,
    /// How many predictions were intercepted by the safeguard.
    pub intercepted_predictions: u64,
}

/// Figure 3: the model safeguard against a broken model that always selects
/// the highest frequency.
pub fn fig3(horizon: SimDuration) -> Vec<Fig3Row> {
    let mut rows = Vec::new();
    for kind in OverclockWorkloadKind::ALL {
        let ideal = run_smart_overclock(kind, OverclockConfig::default(), horizon).0;
        for model_safeguard in [false, true] {
            let config = OverclockConfig {
                broken_model: true,
                model_safeguard,
                ..OverclockConfig::default()
            };
            let (outcome, stats) = run_smart_overclock(kind, config, horizon);
            rows.push(Fig3Row {
                workload: kind.name().to_string(),
                model_safeguard,
                power_increase_pct: (outcome.power_watts / ideal.power_watts.max(1e-12) - 1.0)
                    * 100.0,
                normalized_performance: outcome.performance / ideal.performance.max(1e-12),
                intercepted_predictions: stats.model.intercepted_predictions,
            });
        }
    }
    rows
}

/// One row of Figure 4: power cost of a 30-second Model delay at a phase
/// change, for blocking versus non-blocking Actuators.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// "blocking" or "non-blocking".
    pub actuator: String,
    /// Percent increase in power relative to a delay-free run.
    pub power_increase_pct: f64,
    /// Number of timeout actions the Actuator took.
    pub actuation_timeouts: u64,
}

/// Figure 4: non-blocking versus blocking Actuator under a 30-second Model
/// scheduling delay injected right as the Synthetic workload goes idle.
pub fn fig4(horizon: SimDuration) -> Vec<Fig4Row> {
    // A 15-second batch (at the nominal frequency) arrives every 50 s, so by
    // the fifth period the agent has learned to overclock it. The delay is
    // injected while the batch is still processing and lasts well past its
    // completion: the model goes silent exactly when it would have told the
    // Actuator that overclocking is no longer useful.
    let make_workload =
        || SyntheticBatch::new(SimDuration::from_secs(50), 15.0 * CORES as f64, CORES as f64);
    let delay_at = Timestamp::from_secs(205);
    let delay = SimDuration::from_secs(30);

    // Power is compared over the 40-second window starting at the delay, the
    // phase where a blocking Actuator keeps the cores needlessly overclocked.
    let window_start = delay_at;
    let window_end = delay_at + delay + SimDuration::from_secs(10);

    let run = |schedule, inject: bool| {
        let node = Shared::new(CpuNode::new(
            Box::new(make_workload()),
            CpuNodeConfig { cores: CORES, ..Default::default() },
        ));
        node.with(|n| n.enable_trace());
        let (model, actuator) = smart_overclock(&node, OverclockConfig::default());
        let mut builder = NodeRuntime::builder(node.clone());
        let agent = builder.agent("smart-overclock", model, actuator, schedule);
        let mut runtime = builder.build();
        if inject {
            runtime.delay_model_at(agent, delay_at, delay);
        }
        let report = runtime.run_for(horizon).expect("non-empty horizon");
        let window_power = node.with(|n| {
            let pts: Vec<f64> = n
                .trace()
                .iter()
                .filter(|p| p.at >= window_start && p.at < window_end)
                .map(|p| p.power_watts)
                .collect();
            if pts.is_empty() {
                0.0
            } else {
                pts.iter().sum::<f64>() / pts.len() as f64
            }
        });
        (window_power, report.agent(agent).stats().clone())
    };

    let (baseline_power, _) = run(overclock_schedule(), false);
    let mut rows = Vec::new();
    for (name, schedule) in
        [("non-blocking", overclock_schedule()), ("blocking", blocking_overclock_schedule())]
    {
        let (power, stats) = run(schedule, true);
        rows.push(Fig4Row {
            actuator: name.to_string(),
            power_increase_pct: (power / baseline_power.max(1e-12) - 1.0) * 100.0,
            actuation_timeouts: stats.actuator.actuation_timeouts,
        });
    }
    rows
}

/// Summary of Figure 5: the Actuator safeguard during a long idle phase.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Whether the Actuator safeguard was enabled.
    pub actuator_safeguard: bool,
    /// Average power during the idle phase, in watts.
    pub idle_power_watts: f64,
    /// Average power during the active phase, in watts.
    pub active_power_watts: f64,
    /// Fraction of idle time spent above the nominal frequency.
    pub idle_overclocked_fraction: f64,
    /// Number of times the safeguard tripped.
    pub safeguard_triggers: u64,
}

/// Figure 5: the α-based Actuator safeguard disables overclocking during long
/// idle phases and re-enables it when activity returns.
///
/// The workload processes a batch for roughly the first 100 seconds of each
/// 450-second period and then idles, mimicking a VM that runs periodic data
/// processing jobs.
pub fn fig5(horizon: SimDuration) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    for actuator_safeguard in [false, true] {
        let workload =
            SyntheticBatch::new(SimDuration::from_secs(450), 100.0 * CORES as f64, CORES as f64);
        let node = Shared::new(CpuNode::new(
            Box::new(workload),
            CpuNodeConfig { cores: CORES, ..Default::default() },
        ));
        node.with(|n| n.enable_trace());
        let config = OverclockConfig { actuator_safeguard, ..Default::default() };
        let mut builder = NodeRuntime::builder(node.clone());
        let agent = builder.register(overclock_blueprint(&node, config));
        let report = builder.build().run_for(horizon).expect("non-empty horizon");

        // The batch takes ~100 s at nominal (less when overclocked); treat
        // everything after 120 s in each period as idle.
        let (idle_power, active_power, idle_overclocked) = node.with(|n| {
            let mut idle = (0.0, 0u64);
            let mut active = (0.0, 0u64);
            let mut overclocked_idle = 0u64;
            for p in n.trace() {
                let phase = p.at.as_nanos() % SimDuration::from_secs(450).as_nanos();
                let is_idle = phase > SimDuration::from_secs(120).as_nanos();
                if is_idle {
                    idle.0 += p.power_watts;
                    idle.1 += 1;
                    if p.frequency_ghz > 1.5 + 1e-9 {
                        overclocked_idle += 1;
                    }
                } else {
                    active.0 += p.power_watts;
                    active.1 += 1;
                }
            }
            (
                if idle.1 > 0 { idle.0 / idle.1 as f64 } else { 0.0 },
                if active.1 > 0 { active.0 / active.1 as f64 } else { 0.0 },
                if idle.1 > 0 { overclocked_idle as f64 / idle.1 as f64 } else { 0.0 },
            )
        });
        rows.push(Fig5Row {
            actuator_safeguard,
            idle_power_watts: idle_power,
            active_power_watts: active_power,
            idle_overclocked_fraction: idle_overclocked,
            safeguard_triggers: report.agent(agent).stats().actuator.safeguard_triggers,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: SimDuration = SimDuration::from_secs(120);

    #[test]
    fn fig1_smartoverclock_beats_nominal_on_cpu_bound_workloads() {
        let rows = fig1(SHORT);
        assert_eq!(rows.len(), 12);
        let agent_object_store = rows
            .iter()
            .find(|r| r.workload == "ObjectStore" && r.policy == "SmartOverclock")
            .unwrap();
        assert!(agent_object_store.normalized_performance > 1.1);
        let static_23_disk = rows
            .iter()
            .find(|r| r.workload == "DiskSpeed" && r.policy == "static 2.3 GHz")
            .unwrap();
        let agent_disk = rows
            .iter()
            .find(|r| r.workload == "DiskSpeed" && r.policy == "SmartOverclock")
            .unwrap();
        assert!(agent_disk.normalized_power < static_23_disk.normalized_power);
    }

    #[test]
    fn fig2_validation_recovers_performance() {
        let rows = fig2(SHORT, &[0.1]);
        let with = rows.iter().find(|r| r.validation).unwrap();
        let without = rows.iter().find(|r| !r.validation).unwrap();
        assert!(with.samples_discarded > 0);
        assert_eq!(without.samples_discarded, 0);
        assert!(with.normalized_performance >= without.normalized_performance * 0.95);
    }

    #[test]
    fn fig3_safeguard_limits_power_increase_on_disk_bound() {
        let rows = fig3(SHORT);
        let unsafe_disk =
            rows.iter().find(|r| r.workload == "DiskSpeed" && !r.model_safeguard).unwrap();
        let safe_disk =
            rows.iter().find(|r| r.workload == "DiskSpeed" && r.model_safeguard).unwrap();
        assert!(unsafe_disk.power_increase_pct > 2.0 * safe_disk.power_increase_pct.max(1.0));
        assert!(safe_disk.intercepted_predictions > 0);
    }

    #[test]
    fn fig4_blocking_actuator_wastes_more_power() {
        let rows = fig4(SimDuration::from_secs(280));
        let blocking = rows.iter().find(|r| r.actuator == "blocking").unwrap();
        let non_blocking = rows.iter().find(|r| r.actuator == "non-blocking").unwrap();
        assert!(blocking.power_increase_pct > non_blocking.power_increase_pct);
        assert!(non_blocking.actuation_timeouts > 0);
    }

    #[test]
    fn fig5_safeguard_reduces_idle_power() {
        let rows = fig5(SimDuration::from_secs(450));
        let with = rows.iter().find(|r| r.actuator_safeguard).unwrap();
        let without = rows.iter().find(|r| !r.actuator_safeguard).unwrap();
        assert!(with.safeguard_triggers >= 1);
        assert!(with.idle_overclocked_fraction < without.idle_overclocked_fraction);
        assert!(with.idle_power_watts <= without.idle_power_watts);
    }
}
