//! Small helpers for printing experiment tables in a consistent format.

/// Prints a Markdown-style table: a header row followed by data rows.
///
/// # Panics
///
/// Panics if any row has a different number of columns than the header.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match header width");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        println!("| {} |", line.join(" | "));
    };
    print_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        print_row(row);
    }
}

/// Formats a float with three significant decimals.
pub fn fmt(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a value as a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(pct(0.4567), "45.7%");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".to_string(), "2".to_string()], vec!["3".to_string(), "4".to_string()]],
        );
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        print_table("demo", &["a", "b"], &[vec!["1".to_string()]]);
    }
}
