//! Small helpers for printing experiment tables in a consistent format.

/// Renders a GitHub-flavored-Markdown table: a header row, a `| --- |`
/// separator, and the data rows, with cells padded to a common width per
/// column so the raw text stays readable too.
///
/// # Panics
///
/// Panics if any row has a different number of columns than the header.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match header width");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len().max(3)).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        format!("| {} |\n", line.join(" | "))
    };
    let mut out = format!("\n## {title}\n\n");
    out.push_str(&render_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    // GFM requires `| --- |` cells: dashes only, separated from the pipes by
    // the surrounding spaces (the old `|-----|` form does not render).
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("| {} |\n", sep.join(" | ")));
    for row in rows {
        out.push_str(&render_row(row));
    }
    out
}

/// Prints a [`render_table`] to stdout.
///
/// # Panics
///
/// Panics if any row has a different number of columns than the header.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, header, rows));
}

/// Formats a float with three significant decimals.
pub fn fmt(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a value as a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Reads a `u64` quick-mode knob from the environment (e.g.
/// `SOL_HORIZON_SECS`), falling back to `default` when unset or unparseable.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Renders rows of named numeric fields as a JSON array of flat objects —
/// the machine-readable artifact (`BENCH_*.json`) CI uploads alongside the
/// printed tables. Hand-rolled on purpose: the repo vendors no JSON crate,
/// and flat `name: number` objects need nothing more.
///
/// Non-finite values (JSON has no NaN/Infinity) are emitted as `null`.
pub fn json_rows(rows: &[Vec<(&str, f64)>]) -> String {
    let object = |fields: &[(&str, f64)]| {
        let body: Vec<String> = fields
            .iter()
            .map(|(name, value)| {
                if value.is_finite() {
                    format!("\"{name}\": {value}")
                } else {
                    format!("\"{name}\": null")
                }
            })
            .collect();
        format!("  {{{}}}", body.join(", "))
    };
    let body: Vec<String> = rows.iter().map(|fields| object(fields)).collect();
    format!("[\n{}\n]\n", body.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(pct(0.4567), "45.7%");
    }

    #[test]
    fn rendered_table_is_valid_github_markdown() {
        let rendered = render_table(
            "demo",
            &["metric", "x"],
            &[vec!["alpha".to_string(), "1".to_string()], vec!["b".to_string(), "22".to_string()]],
        );
        let lines: Vec<&str> = rendered.trim_start_matches('\n').lines().collect();
        assert_eq!(lines[0], "## demo");
        assert_eq!(lines[2], "| metric | x   |");
        assert_eq!(lines[3], "| ------ | --- |");
        assert_eq!(lines[4], "| alpha  | 1   |");
        assert_eq!(lines[5], "| b      | 22  |");
        // Every separator cell must be dashes only, flanked by spaces: the
        // GFM delimiter-row grammar. `|---|` (no spaces) is what the old
        // emitter produced and is not rendered as a table by GitHub.
        let sep = lines[3];
        assert!(sep.starts_with("| ") && sep.ends_with(" |"));
        for cell in sep.trim_matches('|').split('|') {
            let cell = cell.trim_matches(' ');
            assert!(!cell.is_empty() && cell.chars().all(|c| c == '-'), "bad cell {cell:?}");
            assert!(cell.len() >= 3, "GFM needs at least three dashes per cell");
        }
    }

    #[test]
    fn json_rows_render_flat_objects() {
        let rendered = json_rows(&[
            vec![("nodes", 8.0), ("wall_ms", 1.25)],
            vec![("nodes", 64.0), ("wall_ms", f64::NAN)],
        ]);
        assert_eq!(
            rendered,
            "[\n  {\"nodes\": 8, \"wall_ms\": 1.25},\n  {\"nodes\": 64, \"wall_ms\": null}\n]\n"
        );
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".to_string(), "2".to_string()], vec!["3".to_string(), "4".to_string()]],
        );
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        print_table("demo", &["a", "b"], &[vec!["1".to_string()]]);
    }
}
