//! Cost-sensitive multiclass classification (one-against-all reduction).
//!
//! SmartHarvest uses a cost-sensitive classifier from the VowpalWabbit
//! framework to predict the maximum number of CPU cores the primary VMs will
//! need in the next 25 ms (paper §5.2). This module provides the same
//! algorithm family built from scratch: one online least-squares regressor per
//! class predicts that class's cost, and classification picks the class with
//! the smallest predicted cost. Asymmetric costs let the agent make
//! under-prediction (starving the primary VM) far more expensive than
//! over-prediction (harvesting fewer cores).

use serde::{Deserialize, Serialize};

use crate::exchange::{ExchangeError, LearnedExchange, LearnedState, StateKind};
use crate::linear::OnlineLinearRegression;

/// A labeled training example: the feature vector plus the cost of predicting
/// each class for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostSensitiveExample {
    /// Input features.
    pub features: Vec<f64>,
    /// Per-class costs; lower is better. Length must equal the classifier's
    /// class count.
    pub costs: Vec<f64>,
}

impl CostSensitiveExample {
    /// Builds an example from features and per-class costs.
    pub fn new(features: Vec<f64>, costs: Vec<f64>) -> Self {
        CostSensitiveExample { features, costs }
    }

    /// Builds the asymmetric cost vector used for "predict at least the true
    /// class" problems such as core-demand prediction: predicting class `c`
    /// when the true class is `truth` costs
    /// `under_penalty * (truth - c)` if `c < truth` (under-prediction) and
    /// `over_penalty * (c - truth)` if `c > truth` (over-prediction).
    pub fn from_ordinal_truth(
        features: Vec<f64>,
        truth: usize,
        classes: usize,
        under_penalty: f64,
        over_penalty: f64,
    ) -> Self {
        let costs = (0..classes)
            .map(|c| {
                if c < truth {
                    under_penalty * (truth - c) as f64
                } else {
                    over_penalty * (c - truth) as f64
                }
            })
            .collect();
        CostSensitiveExample { features, costs }
    }
}

/// A cost-sensitive one-against-all classifier.
///
/// # Examples
///
/// ```
/// use sol_ml::cost_sensitive::{CostSensitiveClassifier, CostSensitiveExample};
///
/// // Learn to predict class 0 for small inputs and class 2 for large ones.
/// let mut clf = CostSensitiveClassifier::new(1, 3, 0.1);
/// for _ in 0..300 {
///     clf.update(&CostSensitiveExample::from_ordinal_truth(vec![0.1], 0, 3, 5.0, 1.0));
///     clf.update(&CostSensitiveExample::from_ordinal_truth(vec![0.9], 2, 3, 5.0, 1.0));
/// }
/// assert_eq!(clf.predict(&[0.1]), 0);
/// assert_eq!(clf.predict(&[0.9]), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostSensitiveClassifier {
    regressors: Vec<OnlineLinearRegression>,
    features: usize,
    updates: u64,
}

impl CostSensitiveClassifier {
    /// Creates a classifier over `classes` classes with `features`-dimensional
    /// inputs.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero, `features` is zero, or `learning_rate` is
    /// not positive.
    pub fn new(features: usize, classes: usize, learning_rate: f64) -> Self {
        assert!(classes > 0, "classifier needs at least one class");
        let regressors =
            (0..classes).map(|_| OnlineLinearRegression::new(features, learning_rate)).collect();
        CostSensitiveClassifier { regressors, features, updates: 0 }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.regressors.len()
    }

    /// Number of input features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of training examples consumed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Predicted cost of each class for `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn predicted_costs(&self, x: &[f64]) -> Vec<f64> {
        self.regressors.iter().map(|r| r.predict(x)).collect()
    }

    /// Predicts the class with the lowest expected cost for `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predicted_costs(x)
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN costs"))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Trains on one cost-sensitive example.
    ///
    /// # Panics
    ///
    /// Panics if the example's cost vector length differs from the number of
    /// classes or its feature length differs from the model's.
    pub fn update(&mut self, example: &CostSensitiveExample) {
        assert_eq!(example.costs.len(), self.regressors.len(), "cost vector length mismatch");
        for (regressor, &cost) in self.regressors.iter_mut().zip(&example.costs) {
            regressor.update(&example.features, cost);
        }
        self.updates += 1;
    }

    /// Resets all per-class regressors.
    pub fn reset(&mut self) {
        for r in &mut self.regressors {
            r.reset();
        }
        self.updates = 0;
    }
}

impl LearnedExchange for CostSensitiveClassifier {
    /// Exports all per-class regressors as [`StateKind::LinearWeights`] with
    /// shape `[classes, features + 1]`: each row is one class's
    /// `weights ++ [bias]`.
    fn export_learned(&self) -> LearnedState {
        let values = self
            .regressors
            .iter()
            .flat_map(|r| r.weights().iter().copied().chain([r.bias()]))
            .collect();
        LearnedState::new(
            StateKind::LinearWeights,
            vec![self.regressors.len(), self.features + 1],
            values,
        )
        .expect("regressor parameters are finite")
    }

    /// Overwrites every per-class regressor's weights and bias. Learning
    /// rates and the update counter are untouched.
    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError> {
        if state.kind() != StateKind::LinearWeights {
            return Err(ExchangeError::KindMismatch {
                expected: StateKind::LinearWeights,
                found: state.kind(),
            });
        }
        let row = self.features + 1;
        let expected = [self.regressors.len(), row];
        if state.shape() != expected {
            return Err(ExchangeError::ShapeMismatch {
                expected: expected.to_vec(),
                found: state.shape().to_vec(),
            });
        }
        for (regressor, row) in self.regressors.iter_mut().zip(state.values().chunks_exact(row)) {
            regressor.load_row(row);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinal_costs_penalize_under_prediction_more() {
        let e = CostSensitiveExample::from_ordinal_truth(vec![1.0], 2, 4, 10.0, 1.0);
        assert_eq!(e.costs, vec![20.0, 10.0, 0.0, 1.0]);
    }

    #[test]
    fn learns_threshold_rule() {
        let mut clf = CostSensitiveClassifier::new(1, 4, 0.05);
        for _ in 0..500 {
            for (x, truth) in [(0.0, 0), (0.3, 1), (0.6, 2), (0.95, 3)] {
                clf.update(&CostSensitiveExample::from_ordinal_truth(vec![x], truth, 4, 4.0, 1.0));
            }
        }
        // With a single scalar feature and linear per-class cost models the
        // decision boundary is approximate; check the ordering rather than
        // exact classes.
        assert!(clf.predict(&[0.0]) <= 1);
        assert!(clf.predict(&[0.95]) >= 2);
        assert!(clf.predict(&[0.95]) >= clf.predict(&[0.0]));
    }

    #[test]
    fn asymmetric_costs_bias_towards_over_prediction() {
        // Noisy truth: with symmetric costs the classifier would hover around
        // the mean; with a heavy under-prediction penalty it should predict at
        // or above the typical demand.
        let mut clf = CostSensitiveClassifier::new(1, 5, 0.05);
        let truths = [1usize, 2, 1, 2, 3, 2, 1, 2, 3, 2];
        for _ in 0..300 {
            for &t in &truths {
                clf.update(&CostSensitiveExample::from_ordinal_truth(vec![1.0], t, 5, 20.0, 1.0));
            }
        }
        assert!(clf.predict(&[1.0]) >= 3, "should over-provision under asymmetric costs");
    }

    #[test]
    fn predicted_costs_have_one_entry_per_class() {
        let clf = CostSensitiveClassifier::new(2, 3, 0.1);
        assert_eq!(clf.predicted_costs(&[0.0, 0.0]).len(), 3);
        assert_eq!(clf.classes(), 3);
        assert_eq!(clf.features(), 2);
    }

    #[test]
    #[should_panic(expected = "cost vector length mismatch")]
    fn rejects_wrong_cost_length() {
        let mut clf = CostSensitiveClassifier::new(1, 3, 0.1);
        clf.update(&CostSensitiveExample::new(vec![1.0], vec![0.0, 1.0]));
    }

    #[test]
    fn reset_clears_state() {
        let mut clf = CostSensitiveClassifier::new(1, 2, 0.1);
        clf.update(&CostSensitiveExample::new(vec![1.0], vec![0.0, 5.0]));
        clf.reset();
        assert_eq!(clf.updates(), 0);
        assert_eq!(clf.predicted_costs(&[1.0]), vec![0.0, 0.0]);
    }
}
