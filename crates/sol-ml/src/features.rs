//! Distributional feature extraction over telemetry windows.
//!
//! SmartHarvest computes distributional features (mean, percentiles, spread,
//! trend) over the CPU-usage samples gathered during a learning epoch and
//! feeds them to its cost-sensitive classifier (paper §5.2). This module
//! provides that feature pipeline in a reusable form.

use serde::{Deserialize, Serialize};

/// A fixed-size feature vector extracted from a window of scalar samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: Vec<f64>,
}

impl FeatureVector {
    /// Wraps a raw vector of feature values.
    pub fn new(values: Vec<f64>) -> Self {
        FeatureVector { values }
    }

    /// The feature values, in extraction order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl AsRef<[f64]> for FeatureVector {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

/// Extracts distributional features from windows of scalar telemetry.
///
/// The extracted features are, in order: mean, standard deviation, min, max,
/// P50, P90, P99, last value, and slope of a least-squares linear fit
/// (the short-horizon trend). The number of features is
/// [`DistributionalFeatures::LEN`].
///
/// # Examples
///
/// ```
/// use sol_ml::features::DistributionalFeatures;
///
/// let samples: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
/// let f = DistributionalFeatures::extract(&samples);
/// assert_eq!(f.len(), DistributionalFeatures::LEN);
/// // The trend of a rising ramp is positive.
/// assert!(f.values()[8] > 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistributionalFeatures;

impl DistributionalFeatures {
    /// Number of features produced by [`extract`](Self::extract).
    pub const LEN: usize = 9;

    /// Extracts the feature vector from `samples`. An empty window produces a
    /// zero vector, which downstream models treat as "no information".
    pub fn extract(samples: &[f64]) -> FeatureVector {
        if samples.is_empty() {
            return FeatureVector::new(vec![0.0; Self::LEN]);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt();

        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let min = sorted[0];
        let max = *sorted.last().expect("non-empty");
        let q = |p: f64| -> f64 {
            let pos = p * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let frac = pos - lo as f64;
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac
            }
        };
        let last = *samples.last().expect("non-empty");
        let slope = Self::slope(samples);

        FeatureVector::new(vec![mean, std, min, max, q(0.5), q(0.9), q(0.99), last, slope])
    }

    /// Least-squares slope of the samples against their index, normalised by
    /// window length so the feature scale does not depend on sample count.
    fn slope(samples: &[f64]) -> f64 {
        let n = samples.len() as f64;
        if samples.len() < 2 {
            return 0.0;
        }
        let x_mean = (n - 1.0) / 2.0;
        let y_mean = samples.iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &y) in samples.iter().enumerate() {
            let dx = i as f64 - x_mean;
            num += dx * (y - y_mean);
            den += dx * dx;
        }
        if den == 0.0 {
            0.0
        } else {
            (num / den) * n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_yields_zero_vector() {
        let f = DistributionalFeatures::extract(&[]);
        assert_eq!(f.values(), vec![0.0; DistributionalFeatures::LEN].as_slice());
    }

    #[test]
    fn constant_window_has_zero_spread_and_trend() {
        let f = DistributionalFeatures::extract(&[5.0; 20]);
        let v = f.values();
        assert_eq!(v[0], 5.0); // mean
        assert_eq!(v[1], 0.0); // std
        assert_eq!(v[2], 5.0); // min
        assert_eq!(v[3], 5.0); // max
        assert_eq!(v[8], 0.0); // slope
    }

    #[test]
    fn percentiles_are_ordered() {
        let samples: Vec<f64> = (0..1000).map(|i| (i % 97) as f64).collect();
        let v = DistributionalFeatures::extract(&samples);
        let v = v.values();
        assert!(v[4] <= v[5] && v[5] <= v[6], "P50 <= P90 <= P99");
        assert!(v[2] <= v[4] && v[6] <= v[3], "min <= P50 and P99 <= max");
    }

    #[test]
    fn falling_ramp_has_negative_trend() {
        let samples: Vec<f64> = (0..50).map(|i| 100.0 - i as f64).collect();
        let v = DistributionalFeatures::extract(&samples);
        assert!(v.values()[8] < 0.0);
    }

    #[test]
    fn single_sample_window() {
        let v = DistributionalFeatures::extract(&[3.0]);
        assert_eq!(v.values()[0], 3.0);
        assert_eq!(v.values()[8], 0.0);
        assert_eq!(v.len(), DistributionalFeatures::LEN);
    }
}
