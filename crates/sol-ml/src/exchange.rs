//! Learned-state exchange: a uniform export/import surface over every learner
//! plus the robust aggregation rules a fleet needs to combine them.
//!
//! SOL's agents learn strictly per node; once nodes are mortal (crash, join,
//! drain) that isolation throws experience away. This module is the sol-ml
//! half of the fleet learning plane: each learner can export its mutable
//! parameters as a [`LearnedState`] — a tagged, flat `f64` vector with shape
//! metadata — and import one back. Peers' states are combined with an
//! [`AggregationRule`]; the Byzantine-robust rules (coordinate-wise median,
//! trimmed mean, after SABLE and Dong et al.) bound the influence any single
//! poisoned node can exert on the fleet aggregate. A [`BlendPolicy`] decides
//! how much of the aggregate a node adopts.
//!
//! Exports capture *values only* — never RNG state, update counters, or
//! configuration — so importing a state cannot perturb a learner's exploration
//! stream and determinism is preserved.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which learner family a [`LearnedState`] came from. Aggregation refuses to
/// mix kinds: averaging a Q-table into a Beta posterior is never meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StateKind {
    /// A tabular Q-function, shape `[states, actions]`, row-major.
    QTable,
    /// Linear model parameters: one or more rows of `weights ++ [bias]`.
    LinearWeights,
    /// Beta-Bernoulli posteriors, shape `[arms, 2]` as `(α, β)` pairs.
    BetaPosteriors,
    /// Welford moment accumulator, shape `[5]`:
    /// `[count, mean, m2, min, max]` (all zero when empty).
    RunningMoments,
}

impl fmt::Display for StateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StateKind::QTable => "q-table",
            StateKind::LinearWeights => "linear-weights",
            StateKind::BetaPosteriors => "beta-posteriors",
            StateKind::RunningMoments => "running-moments",
        };
        f.write_str(name)
    }
}

/// Why an export, import, aggregation, or blend was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeError {
    /// The state's kind does not match the learner or the other states.
    KindMismatch {
        /// Kind the receiver requires.
        expected: StateKind,
        /// Kind that was offered.
        found: StateKind,
    },
    /// The state's shape does not match the learner or the other states.
    ShapeMismatch {
        /// Shape the receiver requires.
        expected: Vec<usize>,
        /// Shape that was offered.
        found: Vec<usize>,
    },
    /// A value is NaN or infinite.
    NonFinite {
        /// Flat index of the offending value.
        index: usize,
    },
    /// A value is finite but semantically invalid for the target learner
    /// (e.g. a non-positive Beta parameter, a negative sample count).
    InvalidValue {
        /// Flat index of the offending value.
        index: usize,
        /// Human-readable constraint that was violated.
        reason: &'static str,
    },
    /// [`AggregationRule::aggregate`] was called with zero states.
    EmptyAggregation,
    /// The receiver has no learned state to exchange (e.g. a replay driver
    /// asked to import).
    Unsupported,
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeError::KindMismatch { expected, found } => {
                write!(f, "state kind mismatch: expected {expected}, found {found}")
            }
            ExchangeError::ShapeMismatch { expected, found } => {
                write!(f, "state shape mismatch: expected {expected:?}, found {found:?}")
            }
            ExchangeError::NonFinite { index } => {
                write!(f, "non-finite value at flat index {index}")
            }
            ExchangeError::InvalidValue { index, reason } => {
                write!(f, "invalid value at flat index {index}: {reason}")
            }
            ExchangeError::EmptyAggregation => f.write_str("cannot aggregate zero states"),
            ExchangeError::Unsupported => f.write_str("receiver has no learned state"),
        }
    }
}

impl std::error::Error for ExchangeError {}

/// A learner's exported parameters: a kind tag, a shape, and the flat values.
///
/// Construction validates that the shape describes the value count and that
/// every value is finite, so downstream aggregation code never has to handle
/// NaN (the sort-based rules rely on this).
///
/// # Examples
///
/// ```
/// use sol_ml::exchange::{LearnedState, StateKind};
///
/// let s = LearnedState::new(StateKind::QTable, vec![2, 3], vec![0.0; 6]).unwrap();
/// assert_eq!(s.len(), 6);
/// assert_eq!(s.byte_len(), 48);
/// assert!(LearnedState::new(StateKind::QTable, vec![2, 3], vec![f64::NAN; 6]).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnedState {
    kind: StateKind,
    shape: Vec<usize>,
    values: Vec<f64>,
}

impl LearnedState {
    /// Builds a state, validating that `shape`'s element product equals
    /// `values.len()` and that every value is finite.
    pub fn new(
        kind: StateKind,
        shape: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, ExchangeError> {
        let expected: usize = shape.iter().product();
        if expected != values.len() {
            return Err(ExchangeError::ShapeMismatch {
                expected: shape,
                found: vec![values.len()],
            });
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(ExchangeError::NonFinite { index });
        }
        Ok(LearnedState { kind, shape, values })
    }

    /// The learner family this state belongs to.
    pub fn kind(&self) -> StateKind {
        self.kind
    }

    /// Logical shape of the flat value vector.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The flat values, row-major over [`shape`](Self::shape).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the state holds zero values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Wire size of the values in bytes (8 per `f64`), used for the learning
    /// plane's `bytes_exchanged` accounting.
    pub fn byte_len(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }

    /// Checks that `other` has the same kind and shape as `self`.
    pub fn compatible_with(&self, other: &LearnedState) -> Result<(), ExchangeError> {
        if self.kind != other.kind {
            return Err(ExchangeError::KindMismatch { expected: self.kind, found: other.kind });
        }
        if self.shape != other.shape {
            return Err(ExchangeError::ShapeMismatch {
                expected: self.shape.clone(),
                found: other.shape.clone(),
            });
        }
        Ok(())
    }

    /// Euclidean (L2) distance between `self` and `other`, the trust plane's
    /// raw per-node divergence measure: how far one node's export sits from
    /// the post-aggregation consensus, summed over every coordinate. Finite
    /// inputs are guaranteed by construction, but a distance over huge
    /// poisoned values can still overflow to `+∞` — callers treating the
    /// distance as evidence should handle that as "maximally divergent"
    /// rather than an error.
    ///
    /// # Errors
    ///
    /// Returns the [`compatible_with`](Self::compatible_with) error when the
    /// two states disagree in kind or shape.
    ///
    /// # Examples
    ///
    /// ```
    /// use sol_ml::exchange::{LearnedState, StateKind};
    ///
    /// let a = LearnedState::new(StateKind::QTable, vec![2], vec![0.0, 0.0]).unwrap();
    /// let b = LearnedState::new(StateKind::QTable, vec![2], vec![3.0, 4.0]).unwrap();
    /// assert_eq!(a.l2_distance(&b).unwrap(), 5.0);
    /// ```
    pub fn l2_distance(&self, other: &LearnedState) -> Result<f64, ExchangeError> {
        self.compatible_with(other)?;
        let sum: f64 = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum();
        Ok(sum.sqrt())
    }
}

/// Consistency factor relating the median absolute deviation to a standard
/// deviation under normality (`1 / Φ⁻¹(3/4)`): scaling the MAD by this makes
/// [`robust_z_scores`] read in "sigma" units, so thresholds carry familiar
/// meaning while the estimate itself keeps the median's 50% breakdown point.
pub const MAD_CONSISTENCY: f64 = 1.4826;

/// Robust z-score of every value in `sample`, coordinate-wise against the
/// sample itself: `(x − median) / max(MAD_CONSISTENCY · MAD, scale_floor)`,
/// where the median and the MAD (median absolute deviation) are taken over
/// the whole sample. Both medians reuse
/// [`AggregationRule::CoordinateWiseMedian`] — including its even-count
/// middle-pair averaging — so the trust plane's consensus math is exactly the
/// aggregation math the robustness tests already pin down.
///
/// Unlike a classical z-score, a minority of arbitrarily corrupted values
/// cannot mask itself: median and MAD ignore up to half the sample, so the
/// honest majority sets the scale and outliers score high.
///
/// `scale_floor` guards against a *collapsed* honest spread. When at least
/// half the sample is identical the MAD is zero, and without a floor any
/// other value would score `±∞` — the right reading for hand-picked samples,
/// but in a live fleet the spread routinely collapses for honest reasons
/// (every node just imported the same redistributed aggregate), and callers
/// should pass a floor in the caller's own units (e.g. a small fraction of
/// the consensus magnitude) below which deviations are not worth
/// normalizing. With `scale_floor = 0.0` the degenerate behaviour is
/// deterministic: a value equal to the median scores `0.0` and any other
/// value scores `±∞`. An empty sample yields an empty vector.
///
/// # Panics
///
/// Panics if `sample` contains NaN (the medians sort). `+∞`/`−∞` are
/// tolerated and score themselves `±∞`.
///
/// # Examples
///
/// ```
/// use sol_ml::exchange::robust_z_scores;
///
/// let z = robust_z_scores(&[1.0, 1.1, 0.9, 1.0, 100.0], 0.0);
/// assert!(z[4] > 100.0); // the outlier is hundreds of MADs out
/// assert!(z[0].abs() < 1.0); // the cluster scores near zero
///
/// // A collapsed spread with a floor: the dissenter scores in units of the
/// // floor instead of ±∞.
/// let z = robust_z_scores(&[2.0, 2.0, 2.0, 2.5], 0.1);
/// assert_eq!(z, vec![0.0, 0.0, 0.0, 5.0]);
/// ```
pub fn robust_z_scores(sample: &[f64], scale_floor: f64) -> Vec<f64> {
    if sample.is_empty() {
        return Vec::new();
    }
    let median = AggregationRule::CoordinateWiseMedian.combine(&mut sample.to_vec());
    let mut deviations: Vec<f64> = sample.iter().map(|x| (x - median).abs()).collect();
    let mad = AggregationRule::CoordinateWiseMedian.combine(&mut deviations);
    let scale = (MAD_CONSISTENCY * mad).max(scale_floor);
    sample
        .iter()
        .map(|x| {
            let deviation = x - median;
            if deviation == 0.0 {
                0.0
            } else {
                // scale == 0 divides to ±∞: maximal divergence from an
                // otherwise perfectly agreed sample.
                deviation / scale
            }
        })
        .collect()
}

/// How a fleet combines one coordinate across peer states.
///
/// `Mean` is the textbook federated-averaging rule and is what a single
/// poisoned peer corrupts: one arbitrarily large coordinate drags the average
/// anywhere. The robust rules bound that influence: with `n` participants,
/// `CoordinateWiseMedian` tolerates up to `⌈n/2⌉ - 1` arbitrary vectors and
/// `TrimmedMean { k }` tolerates up to `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationRule {
    /// Arithmetic mean of each coordinate. Fast, fragile.
    Mean,
    /// Median of each coordinate (even counts average the two middle values).
    CoordinateWiseMedian,
    /// Drop the `k` smallest and `k` largest values of each coordinate, then
    /// average the rest. `k` is clamped so at least one value survives.
    TrimmedMean {
        /// Values trimmed from *each* end per coordinate.
        k: usize,
    },
}

impl AggregationRule {
    /// Combines one coordinate's values across peers. The slice is reordered
    /// in place (the robust rules sort it). Inputs must be NaN-free —
    /// guaranteed for values out of [`LearnedState`]s, whose construction
    /// rejects non-finite values.
    ///
    /// # Panics
    ///
    /// Panics if `column` is empty or contains NaN.
    pub fn combine(&self, column: &mut [f64]) -> f64 {
        assert!(!column.is_empty(), "cannot combine zero values");
        match *self {
            AggregationRule::Mean => column.iter().sum::<f64>() / column.len() as f64,
            AggregationRule::CoordinateWiseMedian => {
                column.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN values"));
                let n = column.len();
                if n % 2 == 1 {
                    column[n / 2]
                } else {
                    (column[n / 2 - 1] + column[n / 2]) / 2.0
                }
            }
            AggregationRule::TrimmedMean { k } => {
                column.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN values"));
                let n = column.len();
                let k = k.min((n - 1) / 2);
                let kept = &column[k..n - k];
                kept.iter().sum::<f64>() / kept.len() as f64
            }
        }
    }

    /// Aggregates peer states coordinate-by-coordinate into one state of the
    /// same kind and shape. All inputs must agree on kind and shape; the
    /// first state is the reference.
    ///
    /// # Examples
    ///
    /// ```
    /// use sol_ml::exchange::{AggregationRule, LearnedState, StateKind};
    ///
    /// let honest = LearnedState::new(StateKind::QTable, vec![2], vec![1.0, 2.0]).unwrap();
    /// let poisoned = LearnedState::new(StateKind::QTable, vec![2], vec![-1e9, 1e9]).unwrap();
    /// let states = [honest.clone(), honest.clone(), poisoned];
    ///
    /// let median = AggregationRule::CoordinateWiseMedian.aggregate(&states).unwrap();
    /// assert_eq!(median.values(), honest.values()); // outvoted
    ///
    /// let mean = AggregationRule::Mean.aggregate(&states).unwrap();
    /// assert!(mean.values()[1] > 1e8); // dragged away
    /// ```
    pub fn aggregate(&self, states: &[LearnedState]) -> Result<LearnedState, ExchangeError> {
        let first = states.first().ok_or(ExchangeError::EmptyAggregation)?;
        for state in &states[1..] {
            first.compatible_with(state)?;
        }
        let mut column = vec![0.0; states.len()];
        let values = (0..first.len())
            .map(|i| {
                for (slot, state) in column.iter_mut().zip(states) {
                    *slot = state.values[i];
                }
                self.combine(&mut column)
            })
            .collect();
        LearnedState::new(first.kind, first.shape.clone(), values)
    }
}

/// How much of the fleet aggregate a node adopts at a learning round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BlendPolicy {
    /// Adopt the aggregate wholesale.
    Replace,
    /// Convex mix: `(1 - weight) * local + weight * aggregate`, with `weight`
    /// clamped to `[0, 1]` (the aggregate's share).
    Mix {
        /// Share of the aggregate in the mix.
        weight: f64,
    },
}

impl BlendPolicy {
    /// Blends the fleet `aggregate` into `local` according to the policy.
    /// The two states must agree on kind and shape.
    pub fn blend(
        &self,
        local: &LearnedState,
        aggregate: &LearnedState,
    ) -> Result<LearnedState, ExchangeError> {
        local.compatible_with(aggregate)?;
        match *self {
            BlendPolicy::Replace => Ok(aggregate.clone()),
            BlendPolicy::Mix { weight } => {
                let w = weight.clamp(0.0, 1.0);
                let values = local
                    .values
                    .iter()
                    .zip(&aggregate.values)
                    .map(|(l, a)| (1.0 - w) * l + w * a)
                    .collect();
                // A convex mix of finite values is finite, so this cannot fail.
                LearnedState::new(local.kind, local.shape.clone(), values)
            }
        }
    }
}

/// The export/import surface every exchangeable learner implements.
///
/// Implementations exchange *parameter values only*: importing a state must
/// not touch RNG streams, update counters, or configuration, so a node's
/// decision sequence stays deterministic modulo the imported values.
pub trait LearnedExchange {
    /// Snapshots the learner's parameters.
    fn export_learned(&self) -> LearnedState;

    /// Overwrites the learner's parameters from `state`, validating kind,
    /// shape, and value constraints first. On error the learner is unchanged.
    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(values: Vec<f64>) -> LearnedState {
        let n = values.len();
        LearnedState::new(StateKind::QTable, vec![n], values).unwrap()
    }

    #[test]
    fn new_validates_shape_product() {
        let err = LearnedState::new(StateKind::QTable, vec![2, 3], vec![0.0; 5]).unwrap_err();
        assert!(matches!(err, ExchangeError::ShapeMismatch { .. }));
    }

    #[test]
    fn new_rejects_non_finite_values() {
        let err = LearnedState::new(StateKind::QTable, vec![3], vec![0.0, f64::INFINITY, 1.0])
            .unwrap_err();
        assert_eq!(err, ExchangeError::NonFinite { index: 1 });
    }

    #[test]
    fn mean_is_arithmetic_mean() {
        let agg = AggregationRule::Mean
            .aggregate(&[state(vec![1.0, 10.0]), state(vec![3.0, 20.0])])
            .unwrap();
        assert_eq!(agg.values(), &[2.0, 15.0]);
    }

    #[test]
    fn median_handles_odd_and_even_counts() {
        let mut odd = [3.0, 1.0, 2.0];
        assert_eq!(AggregationRule::CoordinateWiseMedian.combine(&mut odd), 2.0);
        let mut even = [4.0, 1.0, 2.0, 3.0];
        assert_eq!(AggregationRule::CoordinateWiseMedian.combine(&mut even), 2.5);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let mut col = [100.0, 1.0, 2.0, 3.0, -100.0];
        assert_eq!(AggregationRule::TrimmedMean { k: 1 }.combine(&mut col), 2.0);
    }

    #[test]
    fn trimmed_mean_clamps_k_to_leave_a_value() {
        // k = 10 over 3 values clamps to k = 1, keeping the middle one.
        let mut col = [5.0, 1.0, 9.0];
        assert_eq!(AggregationRule::TrimmedMean { k: 10 }.combine(&mut col), 5.0);
        let mut single = [7.0];
        assert_eq!(AggregationRule::TrimmedMean { k: 10 }.combine(&mut single), 7.0);
    }

    #[test]
    fn aggregate_rejects_empty_and_mismatched_inputs() {
        assert_eq!(
            AggregationRule::Mean.aggregate(&[]).unwrap_err(),
            ExchangeError::EmptyAggregation
        );
        let err = AggregationRule::Mean
            .aggregate(&[state(vec![1.0]), state(vec![1.0, 2.0])])
            .unwrap_err();
        assert!(matches!(err, ExchangeError::ShapeMismatch { .. }));
        let beta = LearnedState::new(StateKind::BetaPosteriors, vec![1], vec![1.0]).unwrap();
        let err = AggregationRule::Mean.aggregate(&[state(vec![1.0]), beta]).unwrap_err();
        assert!(matches!(err, ExchangeError::KindMismatch { .. }));
    }

    #[test]
    fn blend_replace_adopts_the_aggregate() {
        let local = state(vec![1.0, 1.0]);
        let agg = state(vec![5.0, 9.0]);
        assert_eq!(BlendPolicy::Replace.blend(&local, &agg).unwrap(), agg);
    }

    #[test]
    fn blend_mix_is_convex_and_clamped() {
        let local = state(vec![0.0]);
        let agg = state(vec![10.0]);
        let mixed = BlendPolicy::Mix { weight: 0.25 }.blend(&local, &agg).unwrap();
        assert_eq!(mixed.values(), &[2.5]);
        let clamped = BlendPolicy::Mix { weight: 7.0 }.blend(&local, &agg).unwrap();
        assert_eq!(clamped.values(), &[10.0]);
    }

    #[test]
    fn blend_rejects_incompatible_states() {
        let local = state(vec![0.0]);
        let agg = state(vec![1.0, 2.0]);
        assert!(BlendPolicy::Replace.blend(&local, &agg).is_err());
    }

    #[test]
    fn byte_len_counts_f64_wire_size() {
        assert_eq!(state(vec![0.0; 7]).byte_len(), 56);
        assert!(state(vec![]).is_empty());
    }

    #[test]
    fn l2_distance_is_euclidean_and_shape_checked() {
        let origin = state(vec![0.0, 0.0, 0.0]);
        let point = state(vec![2.0, 3.0, 6.0]);
        assert_eq!(origin.l2_distance(&point).unwrap(), 7.0);
        assert_eq!(point.l2_distance(&origin).unwrap(), 7.0);
        assert_eq!(point.l2_distance(&point).unwrap(), 0.0);
        let short = state(vec![1.0]);
        assert!(matches!(
            point.l2_distance(&short).unwrap_err(),
            ExchangeError::ShapeMismatch { .. }
        ));
        let beta = LearnedState::new(StateKind::BetaPosteriors, vec![3], vec![1.0; 3]).unwrap();
        assert!(matches!(
            point.l2_distance(&beta).unwrap_err(),
            ExchangeError::KindMismatch { .. }
        ));
    }

    #[test]
    fn robust_z_scores_flag_outliers_not_the_cluster() {
        let z = robust_z_scores(&[1.0, 1.2, 0.8, 1.1, 0.9, 1000.0], 0.0);
        assert!(z[5] > 100.0, "outlier must score far out, got {}", z[5]);
        for &score in &z[..5] {
            assert!(score.abs() <= 2.0, "cluster must stay near zero, got {score}");
        }
        // Signed: values below the median score negative.
        assert!(z[2] < 0.0);
    }

    #[test]
    fn robust_z_scores_survive_a_corrupted_minority() {
        // Two of six values are absurd; a classical z-score's mean/stddev
        // would be dragged along, the median/MAD pair is not.
        let z = robust_z_scores(&[1.0, 1.1, 0.9, 1.0, 1e12, -1e12], 0.0);
        assert!(z[4] > 1e9 && z[5] < -1e9);
        assert!(z[0].abs() < 2.0 && z[1].abs() < 2.0);
    }

    #[test]
    fn robust_z_scores_handle_degenerate_samples() {
        assert!(robust_z_scores(&[], 0.0).is_empty());
        assert_eq!(robust_z_scores(&[5.0], 0.0), vec![0.0]);
        assert_eq!(robust_z_scores(&[3.0, 3.0, 3.0], 0.0), vec![0.0, 0.0, 0.0]);
        // Zero MAD with a dissenter: the dissent is maximal divergence.
        let z = robust_z_scores(&[2.0, 2.0, 2.0, 7.0], 0.0);
        assert_eq!(z[..3], [0.0, 0.0, 0.0]);
        assert_eq!(z[3], f64::INFINITY);
        // The same dissent with a floor scores finitely, in floor units.
        assert_eq!(robust_z_scores(&[2.0, 2.0, 2.0, 7.0], 0.5), vec![0.0, 0.0, 0.0, 10.0]);
        // A healthy spread ignores a smaller floor entirely.
        assert_eq!(robust_z_scores(&[1.0, 2.0, 3.0], 1e-6), robust_z_scores(&[1.0, 2.0, 3.0], 0.0));
    }

    #[test]
    fn errors_display_their_context() {
        let text = ExchangeError::KindMismatch {
            expected: StateKind::QTable,
            found: StateKind::BetaPosteriors,
        }
        .to_string();
        assert!(text.contains("q-table") && text.contains("beta-posteriors"));
        let text = ExchangeError::InvalidValue { index: 3, reason: "must be positive" }.to_string();
        assert!(text.contains('3') && text.contains("must be positive"));
    }
}
