//! # sol-ml — online learning primitives for on-node agents
//!
//! The ML substrate for the SOL reproduction. The paper's agents rely on three
//! families of lightweight online learners, all of which are implemented here
//! from scratch so the reproduction has no external ML dependencies:
//!
//! * [`qlearning`] — tabular Q-learning with ε-greedy exploration
//!   (SmartOverclock, paper §5.1);
//! * [`cost_sensitive`] — cost-sensitive one-against-all classification built
//!   on [`linear`] online regressors (SmartHarvest, paper §5.2, standing in
//!   for VowpalWabbit's `csoaa`);
//! * [`thompson`] — Beta-Bernoulli Thompson sampling bandits (SmartMemory,
//!   paper §5.3).
//!
//! Supporting modules provide streaming statistics ([`online_stats`]),
//! distributional feature extraction ([`features`]), deterministic sampling
//! utilities ([`sampling`]), memory accounting for large fleet grids
//! ([`footprint`]), and the fleet learning plane's exchange surface
//! ([`exchange`]): every learner exports/imports its parameters as a tagged
//! flat-`f64` [`exchange::LearnedState`] that robust aggregation rules
//! (coordinate-wise median, trimmed mean) can combine across nodes.
//!
//! Everything is deterministic given a seed, allocation-light, and designed to
//! run inside resource-constrained agent control loops.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost_sensitive;
pub mod exchange;
pub mod features;
pub mod footprint;
pub mod linear;
pub mod online_stats;
pub mod qlearning;
pub mod sampling;
pub mod thompson;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::cost_sensitive::{CostSensitiveClassifier, CostSensitiveExample};
    pub use crate::exchange::{
        AggregationRule, BlendPolicy, ExchangeError, LearnedExchange, LearnedState, StateKind,
    };
    pub use crate::features::{DistributionalFeatures, FeatureVector};
    pub use crate::footprint::MemoryFootprint;
    pub use crate::linear::OnlineLinearRegression;
    pub use crate::online_stats::{Ewma, Histogram, RunningStats, SlidingWindow};
    pub use crate::qlearning::{ActionKind, ChosenAction, QConfig, QLearner};
    pub use crate::sampling::{seeded_rng, Zipf};
    pub use crate::thompson::{BetaArm, ThompsonSampler};
}
