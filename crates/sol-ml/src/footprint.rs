//! Memory accounting for long-lived simulation state.
//!
//! Opening very large fleet grids (the 65536-node cell) is bounded by
//! per-node resident memory, not wall time alone. [`MemoryFootprint`] gives
//! every stateful component a uniform, cheap way to report the heap bytes it
//! retains, so a node can sum its substrates, the fleet layer can surface a
//! per-node figure in its report, and the bench harness can track the number
//! release over release instead of guessing from RSS.
//!
//! Implementations report *retained allocation*, not peak transient usage:
//! the inline `size_of` of the value itself plus the capacity (not length) of
//! every owned buffer. The figure is deterministic for a deterministic
//! simulation, so it can ride inside byte-identical fleet reports.

/// Heap bytes retained by a component, including buffer capacity that is
/// allocated but not currently filled.
pub trait MemoryFootprint {
    /// Total bytes attributable to this value: its own `size_of` plus all
    /// owned heap allocations at their capacity.
    fn mem_bytes(&self) -> usize;
}

impl<T: MemoryFootprint + ?Sized> MemoryFootprint for &T {
    fn mem_bytes(&self) -> usize {
        (**self).mem_bytes()
    }
}

impl<T: MemoryFootprint + ?Sized> MemoryFootprint for Box<T> {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + (**self).mem_bytes()
    }
}

impl<T: MemoryFootprint> MemoryFootprint for Vec<T> {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(|x| x.mem_bytes() - std::mem::size_of::<T>()).sum::<usize>()
    }
}

impl MemoryFootprint for f64 {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<f64>()
    }
}

impl MemoryFootprint for u64 {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_counts_capacity_not_len() {
        let mut v: Vec<f64> = Vec::with_capacity(16);
        v.push(1.0);
        assert_eq!(v.mem_bytes(), std::mem::size_of::<Vec<f64>>() + 16 * 8);
    }

    #[test]
    fn nested_vec_sums_inner_allocations() {
        let v: Vec<Vec<f64>> = vec![Vec::with_capacity(4), Vec::with_capacity(8)];
        let expect = std::mem::size_of::<Vec<Vec<f64>>>()
            + 2 * std::mem::size_of::<Vec<f64>>()
            + (4 + 8) * 8;
        assert_eq!(v.mem_bytes(), expect);
    }
}
