//! Random sampling utilities shared by the simulator and the agents.
//!
//! Real-world memory-access popularity is highly skewed (paper §5.3), so the
//! node simulator drives its page-access generators with a [`Zipf`]
//! distribution. A deterministic RNG constructor is also provided so every
//! experiment is reproducible from a fixed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic random number generator from a seed.
///
/// All agents and workloads in this reproduction derive their randomness from
/// seeded [`StdRng`] instances so experiment output is bit-for-bit
/// reproducible.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A Zipf distribution over `{0, 1, ..., n-1}` with skew parameter `s`.
///
/// Rank 0 is the most popular element. Sampling uses the inverse-CDF method
/// over precomputed cumulative weights, so draws are `O(log n)`.
///
/// # Examples
///
/// ```
/// use sol_ml::sampling::{seeded_rng, Zipf};
///
/// let zipf = Zipf::new(1000, 1.1);
/// let mut rng = seeded_rng(7);
/// let mut hits_to_top_ten = 0;
/// for _ in 0..10_000 {
///     if zipf.sample(&mut rng) < 10 {
///         hits_to_top_ten += 1;
///     }
/// }
/// // The hottest 1% of elements receive far more than 1% of the accesses.
/// assert!(hits_to_top_ten > 2_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl crate::footprint::MemoryFootprint for Zipf {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.cumulative.capacity() * std::mem::size_of::<f64>()
    }
}

impl Zipf {
    /// Creates a Zipf distribution over `n` elements with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative or not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one element");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be finite and non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is over zero elements (never true).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability of drawing element `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn probability(&self, rank: usize) -> f64 {
        let prev = if rank == 0 { 0.0 } else { self.cumulative[rank - 1] };
        self.cumulative[rank] - prev
    }

    /// Draws one element rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("no NaN weights")) {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..100 {
            assert!(z.probability(i) <= z.probability(i - 1) + 1e-12);
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.probability(i) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_frequencies_match_probabilities() {
        let z = Zipf::new(20, 1.2);
        let mut rng = seeded_rng(11);
        let mut counts = [0u32; 20];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate().take(5) {
            let freq = f64::from(count) / n as f64;
            assert!(
                (freq - z.probability(i)).abs() < 0.01,
                "rank {i}: freq {freq} vs p {}",
                z.probability(i)
            );
        }
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(3);
        let mut b = seeded_rng(3);
        let xs: Vec<u32> = (0..10).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn rejects_empty_distribution() {
        let _ = Zipf::new(0, 1.0);
    }
}
