//! Online linear regression trained with stochastic gradient descent.
//!
//! This is the building block for the cost-sensitive classifier
//! ([`crate::cost_sensitive`]), mirroring the squared-loss regressors that
//! VowpalWabbit's `csoaa` reduction uses internally.

use serde::{Deserialize, Serialize};

use crate::exchange::{ExchangeError, LearnedExchange, LearnedState, StateKind};

/// An online least-squares linear model `y ≈ w·x + b` trained by SGD.
///
/// # Examples
///
/// ```
/// use sol_ml::linear::OnlineLinearRegression;
///
/// let mut model = OnlineLinearRegression::new(1, 0.1);
/// for _ in 0..500 {
///     for x in [0.0, 1.0, 2.0, 3.0] {
///         model.update(&[x], 2.0 * x + 1.0);
///     }
/// }
/// assert!((model.predict(&[10.0]) - 21.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineLinearRegression {
    weights: Vec<f64>,
    bias: f64,
    learning_rate: f64,
    l2: f64,
    updates: u64,
}

impl OnlineLinearRegression {
    /// Creates a model with `features` inputs and the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `features` is zero or `learning_rate` is not positive.
    pub fn new(features: usize, learning_rate: f64) -> Self {
        Self::with_regularization(features, learning_rate, 0.0)
    }

    /// Creates a model with L2 regularization strength `l2`.
    ///
    /// # Panics
    ///
    /// Panics if `features` is zero, `learning_rate` is not positive, or `l2`
    /// is negative.
    pub fn with_regularization(features: usize, learning_rate: f64, l2: f64) -> Self {
        assert!(features > 0, "model needs at least one feature");
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!(l2 >= 0.0, "l2 must be non-negative");
        OnlineLinearRegression {
            weights: vec![0.0; features],
            bias: 0.0,
            learning_rate,
            l2,
            updates: 0,
        }
    }

    /// Number of input features.
    pub fn features(&self) -> usize {
        self.weights.len()
    }

    /// Number of SGD updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Current weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Current bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Predicts the target for `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        self.bias + self.weights.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>()
    }

    /// Applies one SGD step towards `(x, y)` and returns the pre-update
    /// prediction error `y - prediction`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong number of features or `y` is not finite.
    pub fn update(&mut self, x: &[f64], y: f64) -> f64 {
        assert!(y.is_finite(), "target must be finite");
        let prediction = self.predict(x);
        let error = y - prediction;
        // Clip the gradient so single wild samples cannot blow up the model;
        // on-node data can be noisy even after validation.
        let step = (self.learning_rate * error).clamp(-1e3, 1e3);
        for (w, xi) in self.weights.iter_mut().zip(x) {
            *w += step * xi - self.learning_rate * self.l2 * *w;
        }
        self.bias += step;
        self.updates += 1;
        error
    }

    /// Resets weights and bias to zero.
    pub fn reset(&mut self) {
        for w in &mut self.weights {
            *w = 0.0;
        }
        self.bias = 0.0;
        self.updates = 0;
    }

    /// Overwrites the model's parameters from one `weights ++ [bias]` row.
    /// Used by the exchange impls here and in
    /// [`crate::cost_sensitive::CostSensitiveClassifier`].
    pub(crate) fn load_row(&mut self, row: &[f64]) {
        let (bias, weights) = row.split_last().expect("row holds at least the bias");
        self.weights.copy_from_slice(weights);
        self.bias = *bias;
    }
}

impl LearnedExchange for OnlineLinearRegression {
    /// Exports `weights ++ [bias]` as [`StateKind::LinearWeights`] with shape
    /// `[features + 1]`.
    fn export_learned(&self) -> LearnedState {
        let mut values = self.weights.clone();
        values.push(self.bias);
        LearnedState::new(StateKind::LinearWeights, vec![self.weights.len() + 1], values)
            .expect("model parameters are finite")
    }

    /// Overwrites weights and bias. Learning rate, regularization, and the
    /// update counter are untouched.
    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError> {
        if state.kind() != StateKind::LinearWeights {
            return Err(ExchangeError::KindMismatch {
                expected: StateKind::LinearWeights,
                found: state.kind(),
            });
        }
        let expected = [self.weights.len() + 1];
        if state.shape() != expected {
            return Err(ExchangeError::ShapeMismatch {
                expected: expected.to_vec(),
                found: state.shape().to_vec(),
            });
        }
        self.load_row(state.values());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_noiseless_line() {
        let mut m = OnlineLinearRegression::new(2, 0.05);
        for _ in 0..2000 {
            for (a, b) in [(0.0, 1.0), (1.0, 0.0), (1.0, 1.0), (0.5, 0.5)] {
                m.update(&[a, b], 3.0 * a - 2.0 * b + 0.5);
            }
        }
        assert!((m.predict(&[2.0, 1.0]) - 4.5).abs() < 0.1);
        assert!((m.weights()[0] - 3.0).abs() < 0.1);
        assert!((m.weights()[1] + 2.0).abs() < 0.1);
    }

    #[test]
    fn error_decreases_with_training() {
        let mut m = OnlineLinearRegression::new(1, 0.1);
        let first = m.update(&[1.0], 10.0).abs();
        for _ in 0..100 {
            m.update(&[1.0], 10.0);
        }
        let later = m.update(&[1.0], 10.0).abs();
        assert!(later < first / 10.0);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let mut plain = OnlineLinearRegression::new(1, 0.05);
        let mut reg = OnlineLinearRegression::with_regularization(1, 0.05, 0.1);
        for _ in 0..500 {
            plain.update(&[1.0], 5.0);
            reg.update(&[1.0], 5.0);
        }
        assert!(reg.weights()[0].abs() < plain.weights()[0].abs());
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut m = OnlineLinearRegression::new(1, 0.1);
        m.update(&[1.0], 1.0);
        m.reset();
        assert_eq!(m.predict(&[1.0]), 0.0);
        assert_eq!(m.updates(), 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dimension() {
        let m = OnlineLinearRegression::new(2, 0.1);
        let _ = m.predict(&[1.0]);
    }
}
