//! Streaming statistics used by agents to summarize telemetry and by
//! safeguards to smooth noisy signals.
//!
//! Everything here is incremental and allocation-light so it can run inside
//! tight agent control loops (paper §2: agents run under strict compute and
//! memory constraints).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::exchange::{ExchangeError, LearnedExchange, LearnedState, StateKind};

/// Incremental mean and variance (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use sol_ml::online_stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than one sample).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (0 if fewer than two samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest sample seen (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl LearnedExchange for RunningStats {
    /// Exports the accumulator as [`StateKind::RunningMoments`] with shape
    /// `[5]`: `[count, mean, m2, min, max]`. An empty accumulator exports all
    /// zeros (its internal ±∞ min/max sentinels are not representable in a
    /// finite-only [`LearnedState`]).
    fn export_learned(&self) -> LearnedState {
        let values = if self.count == 0 {
            vec![0.0; 5]
        } else {
            vec![self.count as f64, self.mean, self.m2, self.min, self.max]
        };
        LearnedState::new(StateKind::RunningMoments, vec![5], values).expect("moments are finite")
    }

    /// Overwrites the accumulator. The count must be a non-negative integer,
    /// `m2` non-negative, and `min <= max`; a zero count resets to empty.
    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError> {
        if state.kind() != StateKind::RunningMoments {
            return Err(ExchangeError::KindMismatch {
                expected: StateKind::RunningMoments,
                found: state.kind(),
            });
        }
        if state.shape() != [5] {
            return Err(ExchangeError::ShapeMismatch {
                expected: vec![5],
                found: state.shape().to_vec(),
            });
        }
        let v = state.values();
        if v[0] < 0.0 || v[0].fract() != 0.0 {
            return Err(ExchangeError::InvalidValue {
                index: 0,
                reason: "count must be a non-negative integer",
            });
        }
        if v[2] < 0.0 {
            return Err(ExchangeError::InvalidValue {
                index: 2,
                reason: "m2 must be non-negative",
            });
        }
        if v[0] > 0.0 && v[3] > v[4] {
            return Err(ExchangeError::InvalidValue {
                index: 3,
                reason: "min must not exceed max",
            });
        }
        if v[0] == 0.0 {
            *self = RunningStats::new();
        } else {
            self.count = v[0] as u64;
            self.mean = v[1];
            self.m2 = v[2];
            self.min = v[3];
            self.max = v[4];
        }
        Ok(())
    }
}

/// Exponentially weighted moving average.
///
/// # Examples
///
/// ```
/// use sol_ml::online_stats::Ewma;
/// let mut e = Ewma::new(0.5);
/// e.push(10.0);
/// e.push(0.0);
/// assert!((e.value() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// Current smoothed value (0 if no samples yet).
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// Whether any sample has been observed.
    pub fn is_initialized(&self) -> bool {
        self.value.is_some()
    }
}

/// A sliding window over the last `capacity` samples with exact quantiles.
///
/// Agents use this for safeguard signals such as "the P90 of α over the last
/// 100 seconds" (SmartOverclock) or "the P99 vCPU wait time" (SmartHarvest).
///
/// # Examples
///
/// ```
/// use sol_ml::online_stats::SlidingWindow;
/// let mut w = SlidingWindow::new(4);
/// for x in [1.0, 2.0, 3.0, 4.0, 100.0] {
///     w.push(x);
/// }
/// // Only the last four samples remain.
/// assert_eq!(w.len(), 4);
/// assert_eq!(w.quantile(0.5), 3.5);
/// assert_eq!(w.quantile(1.0), 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlidingWindow {
    capacity: usize,
    samples: VecDeque<f64>,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow { capacity, samples: VecDeque::with_capacity(capacity) }
    }

    /// Adds a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, x: f64) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(x);
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Whether the window is at capacity.
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Mean of the samples in the window (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Exact quantile `q` in `[0, 1]` using linear interpolation between
    /// order statistics. Returns 0 for an empty window.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.samples.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// Iterates over the samples from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().copied()
    }
}

/// A fixed-bucket histogram over `[lo, hi)` with an overflow bucket,
/// useful for coarse latency distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    overflow: u64,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram { lo, hi, buckets: vec![0; buckets], overflow: 0, underflow: 0, total: 0 }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate quantile: returns the upper edge of the bucket containing
    /// the `q`-quantile. Returns `lo` for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return self.lo;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return self.lo + width * (i + 1) as f64;
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_matches_direct_computation() {
        let xs = [1.5, 2.0, -3.0, 7.25, 0.0, 4.5];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -3.0);
        assert_eq!(s.max(), 7.25);
    }

    #[test]
    fn running_stats_merge_equals_single_pass() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        let mut whole = RunningStats::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.push(3.0);
        }
        assert!((e.value() - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut w = SlidingWindow::new(3);
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        let collected: Vec<f64> = w.iter().collect();
        assert_eq!(collected, vec![2.0, 3.0, 4.0]);
        assert!(w.is_full());
    }

    #[test]
    fn sliding_window_quantiles() {
        let mut w = SlidingWindow::new(100);
        for i in 1..=100 {
            w.push(i as f64);
        }
        assert_eq!(w.quantile(0.0), 1.0);
        assert_eq!(w.quantile(1.0), 100.0);
        assert!((w.quantile(0.5) - 50.5).abs() < 1e-9);
        assert!((w.quantile(0.99) - 99.01).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantile_is_monotone() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn histogram_handles_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(9.0);
        assert_eq!(h.total(), 2);
        assert_eq!(h.quantile(0.25), 0.0);
        assert_eq!(h.quantile(1.0), 1.0);
    }
}
