//! Streaming statistics used by agents to summarize telemetry and by
//! safeguards to smooth noisy signals.
//!
//! Everything here is incremental and allocation-light so it can run inside
//! tight agent control loops (paper §2: agents run under strict compute and
//! memory constraints).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::exchange::{ExchangeError, LearnedExchange, LearnedState, StateKind};

/// Incremental mean and variance (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use sol_ml::online_stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than one sample).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (0 if fewer than two samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest sample seen (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl LearnedExchange for RunningStats {
    /// Exports the accumulator as [`StateKind::RunningMoments`] with shape
    /// `[5]`: `[count, mean, m2, min, max]`. An empty accumulator exports all
    /// zeros (its internal ±∞ min/max sentinels are not representable in a
    /// finite-only [`LearnedState`]).
    fn export_learned(&self) -> LearnedState {
        let values = if self.count == 0 {
            vec![0.0; 5]
        } else {
            vec![self.count as f64, self.mean, self.m2, self.min, self.max]
        };
        LearnedState::new(StateKind::RunningMoments, vec![5], values).expect("moments are finite")
    }

    /// Overwrites the accumulator. The count must be a non-negative integer,
    /// `m2` non-negative, and `min <= max`; a zero count resets to empty.
    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError> {
        if state.kind() != StateKind::RunningMoments {
            return Err(ExchangeError::KindMismatch {
                expected: StateKind::RunningMoments,
                found: state.kind(),
            });
        }
        if state.shape() != [5] {
            return Err(ExchangeError::ShapeMismatch {
                expected: vec![5],
                found: state.shape().to_vec(),
            });
        }
        let v = state.values();
        if v[0] < 0.0 || v[0].fract() != 0.0 {
            return Err(ExchangeError::InvalidValue {
                index: 0,
                reason: "count must be a non-negative integer",
            });
        }
        if v[2] < 0.0 {
            return Err(ExchangeError::InvalidValue {
                index: 2,
                reason: "m2 must be non-negative",
            });
        }
        if v[0] > 0.0 && v[3] > v[4] {
            return Err(ExchangeError::InvalidValue {
                index: 3,
                reason: "min must not exceed max",
            });
        }
        if v[0] == 0.0 {
            *self = RunningStats::new();
        } else {
            self.count = v[0] as u64;
            self.mean = v[1];
            self.m2 = v[2];
            self.min = v[3];
            self.max = v[4];
        }
        Ok(())
    }
}

/// Exponentially weighted moving average.
///
/// # Examples
///
/// ```
/// use sol_ml::online_stats::Ewma;
/// let mut e = Ewma::new(0.5);
/// e.push(10.0);
/// e.push(0.0);
/// assert!((e.value() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// Current smoothed value (0 if no samples yet).
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// Whether any sample has been observed.
    pub fn is_initialized(&self) -> bool {
        self.value.is_some()
    }
}

/// Selects the `n`-th order statistic in place, leaving `s` partitioned
/// around it (`s[..n]` ≤ `s[n]` ≤ `s[n+1..]`).
///
/// Quickselect with a *three-way* (fat) partition: all elements equal to the
/// pivot are grouped in one pass, so the duplicate-heavy windows the
/// simulation produces (wait times that are mostly zero, latencies that are
/// mostly the base value) collapse in one or two passes instead of the many
/// unbalanced passes a binary-partition introselect pays on them. Falls back
/// to `select_nth_unstable_by` if an adversarial pattern keeps the recursion
/// from shrinking. NaN samples are not supported (the windows hold physical
/// readings).
fn select_nth(mut s: &mut [f64], mut n: usize) -> f64 {
    let mut rounds = 0;
    loop {
        if s.len() <= 16 {
            s.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            return s[n];
        }
        rounds += 1;
        if rounds > 64 {
            let (_, &mut v, _) =
                s.select_nth_unstable_by(n, |a, b| a.partial_cmp(b).expect("no NaN samples"));
            return v;
        }
        // Median-of-three pivot: cheap, and exact on the constant-heavy
        // windows where all three probes agree.
        let (a, b, c) = (s[0], s[s.len() / 2], s[s.len() - 1]);
        let pivot = a.max(b).min(a.min(b).max(c));
        // Dutch-flag partition: s[..lt] < pivot, s[lt..gt] == pivot,
        // s[gt..] > pivot.
        let (mut lt, mut i, mut gt) = (0, 0, s.len());
        while i < gt {
            let v = s[i];
            if v < pivot {
                s.swap(lt, i);
                lt += 1;
                i += 1;
            } else if v > pivot {
                gt -= 1;
                s.swap(i, gt);
            } else {
                i += 1;
            }
        }
        if n < lt {
            s = &mut s[..lt];
        } else if n < gt {
            return pivot;
        } else {
            s = &mut s[gt..];
            n -= gt;
        }
    }
}

/// A sliding window over the last `capacity` samples with exact quantiles.
///
/// Agents use this for safeguard signals such as "the P90 of α over the last
/// 100 seconds" (SmartOverclock) or "the P99 vCPU wait time" (SmartHarvest).
///
/// # Examples
///
/// ```
/// use sol_ml::online_stats::SlidingWindow;
/// let mut w = SlidingWindow::new(4);
/// for x in [1.0, 2.0, 3.0, 4.0, 100.0] {
///     w.push(x);
/// }
/// // Only the last four samples remain.
/// assert_eq!(w.len(), 4);
/// assert_eq!(w.quantile(0.5), 3.5);
/// assert_eq!(w.quantile(1.0), 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlidingWindow {
    capacity: usize,
    samples: VecDeque<f64>,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` samples.
    ///
    /// The backing buffer grows on demand rather than being reserved up
    /// front, so short-lived or rarely-filled windows (fleet grids stamp out
    /// hundreds of thousands of them) cost only what they actually hold.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow { capacity, samples: VecDeque::new() }
    }

    /// The maximum number of samples the window retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, x: f64) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(x);
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Whether the window is at capacity.
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Mean of the samples in the window (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Exact quantile `q` in `[0, 1]` using linear interpolation between
    /// order statistics. Returns 0 for an empty window.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        // Selection, not a full sort: agents query one quantile per call on
        // windows of thousands of samples, so an expected-O(n) selection
        // replaces the O(n log n) sort the hot safeguard paths used to pay.
        // The two order statistics interpolate exactly as a sorted array
        // would, so results are bit-identical to the sorting implementation.
        let (front, back) = self.samples.as_slices();
        let mut scratch = Vec::with_capacity(self.samples.len());
        scratch.extend_from_slice(front);
        scratch.extend_from_slice(back);
        let pos = q * (scratch.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let lo_v = select_nth(&mut scratch, lo);
        if lo == hi {
            lo_v
        } else {
            // After selection the slice is partitioned around index `lo`, so
            // the hi-th order statistic is the minimum of the tail — rarely
            // more than a handful of elements for the high quantiles agents
            // ask for.
            let frac = pos - lo as f64;
            let hi_v = scratch[lo + 1..].iter().copied().fold(f64::INFINITY, f64::min);
            lo_v * (1.0 - frac) + hi_v * frac
        }
    }

    /// Iterates over the samples from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().copied()
    }
}

impl crate::footprint::MemoryFootprint for SlidingWindow {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.samples.capacity() * std::mem::size_of::<f64>()
    }
}

/// A fixed-bucket histogram over `[lo, hi)` with an overflow bucket,
/// useful for coarse latency distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    overflow: u64,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram { lo, hi, buckets: vec![0; buckets], overflow: 0, underflow: 0, total: 0 }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate quantile: returns the upper edge of the bucket containing
    /// the `q`-quantile. Returns `lo` for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return self.lo;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return self.lo + width * (i + 1) as f64;
            }
        }
        self.hi
    }
}

impl crate::footprint::MemoryFootprint for Histogram {
    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.buckets.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::MemoryFootprint;

    /// Sort-based reference for the selection-based `SlidingWindow::quantile`.
    fn quantile_by_sort(samples: &[f64], q: f64) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pos = q * (sorted.len() - 1) as f64;
        let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    #[test]
    fn window_quantile_matches_sorting_reference() {
        // Varied, mostly-constant, and duplicate-heavy distributions, plus a
        // wrapped ring buffer (push past capacity) so `as_slices` is
        // exercised with a genuinely split deque.
        let distributions: Vec<Vec<f64>> = vec![
            (0..2000).map(|i| (i as f64 * 7.3).sin().abs()).collect(),
            (0..1000).map(|i| if i % 40 == 0 { 20.0 + i as f64 } else { 20.0 }).collect(),
            vec![1.0; 64],
            (0..333).map(|i| f64::from(i % 7)).collect(),
        ];
        for data in distributions {
            let mut w = SlidingWindow::new(512);
            for &x in &data {
                w.push(x);
            }
            let kept: Vec<f64> = w.iter().collect();
            for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
                let got = w.quantile(q);
                let want = quantile_by_sort(&kept, q);
                assert_eq!(got, want, "q={q} over {} samples", kept.len());
            }
        }
    }

    #[test]
    fn window_allocates_lazily_and_reports_footprint() {
        let w = SlidingWindow::new(4096);
        assert_eq!(w.capacity(), 4096);
        // Nothing pushed yet: only the inline struct, no 32 KiB buffer.
        assert_eq!(w.mem_bytes(), std::mem::size_of::<SlidingWindow>());
        let mut w = w;
        for i in 0..8192 {
            w.push(i as f64);
        }
        assert_eq!(w.len(), 4096);
        let bytes = w.mem_bytes();
        assert!(
            bytes >= std::mem::size_of::<SlidingWindow>() + 4096 * 8,
            "full window must account for its buffer: {bytes}"
        );
    }

    #[test]
    fn running_stats_matches_direct_computation() {
        let xs = [1.5, 2.0, -3.0, 7.25, 0.0, 4.5];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -3.0);
        assert_eq!(s.max(), 7.25);
    }

    #[test]
    fn running_stats_merge_equals_single_pass() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        let mut whole = RunningStats::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.push(3.0);
        }
        assert!((e.value() - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut w = SlidingWindow::new(3);
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        let collected: Vec<f64> = w.iter().collect();
        assert_eq!(collected, vec![2.0, 3.0, 4.0]);
        assert!(w.is_full());
    }

    #[test]
    fn sliding_window_quantiles() {
        let mut w = SlidingWindow::new(100);
        for i in 1..=100 {
            w.push(i as f64);
        }
        assert_eq!(w.quantile(0.0), 1.0);
        assert_eq!(w.quantile(1.0), 100.0);
        assert!((w.quantile(0.5) - 50.5).abs() < 1e-9);
        assert!((w.quantile(0.99) - 99.01).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantile_is_monotone() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn histogram_handles_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(9.0);
        assert_eq!(h.total(), 2);
        assert_eq!(h.quantile(0.25), 0.0);
        assert_eq!(h.quantile(1.0), 1.0);
    }
}
