//! Tabular Q-learning with ε-greedy exploration.
//!
//! SmartOverclock uses Q-learning, a simple form of reinforcement learning, to
//! decide when to overclock a VM: at the end of every learning epoch it
//! computes the current state and reward from observed counters, updates the
//! policy, and picks the frequency for the next epoch, following the learned
//! policy 90% of the time and exploring randomly 10% of the time (paper §5.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::exchange::{ExchangeError, LearnedExchange, LearnedState, StateKind};

/// Configuration for a [`QLearner`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QConfig {
    /// Number of discrete states.
    pub states: usize,
    /// Number of discrete actions.
    pub actions: usize,
    /// Learning rate α in `(0, 1]`.
    pub learning_rate: f64,
    /// Discount factor γ in `[0, 1]`.
    pub discount: f64,
    /// Exploration probability ε in `[0, 1]` (the paper's agent uses 0.1).
    pub exploration: f64,
    /// Initial Q-value for all state/action pairs.
    pub initial_value: f64,
}

impl QConfig {
    /// Creates a configuration with the paper's defaults (α = 0.5, γ = 0.6,
    /// ε = 0.1) for the given table size.
    pub fn new(states: usize, actions: usize) -> Self {
        QConfig {
            states,
            actions,
            learning_rate: 0.5,
            discount: 0.6,
            exploration: 0.1,
            initial_value: 0.0,
        }
    }

    fn validate(&self) {
        assert!(self.states > 0, "Q-table needs at least one state");
        assert!(self.actions > 0, "Q-table needs at least one action");
        assert!(
            self.learning_rate > 0.0 && self.learning_rate <= 1.0,
            "learning rate must be in (0, 1]"
        );
        assert!((0.0..=1.0).contains(&self.discount), "discount must be in [0, 1]");
        assert!((0.0..=1.0).contains(&self.exploration), "exploration must be in [0, 1]");
    }
}

/// How an action was chosen, so the caller can distinguish policy decisions
/// from exploration (SmartOverclock keeps exploring even while its model
/// safeguard overrides the exploited action).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionKind {
    /// The greedy action according to the current Q-table.
    Exploit,
    /// A uniformly random action taken for exploration.
    Explore,
}

/// A chosen action and how it was chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChosenAction {
    /// Index of the chosen action.
    pub action: usize,
    /// Whether it was an exploit or explore decision.
    pub kind: ActionKind,
}

/// A tabular Q-learning agent.
///
/// # Examples
///
/// Learning a trivial two-state problem where action 1 is always better:
///
/// ```
/// use sol_ml::qlearning::{QConfig, QLearner};
///
/// let mut q = QLearner::with_seed(QConfig::new(1, 2), 7);
/// for _ in 0..200 {
///     let a = q.choose_action(0).action;
///     let reward = if a == 1 { 1.0 } else { 0.0 };
///     q.update(0, a, reward, 0);
/// }
/// assert_eq!(q.best_action(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct QLearner {
    config: QConfig,
    table: Vec<f64>,
    updates: u64,
    rng: StdRng,
}

impl QLearner {
    /// Creates a learner with a fixed RNG seed (deterministic experiments).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero states/actions, rates out
    /// of range).
    pub fn with_seed(config: QConfig, seed: u64) -> Self {
        config.validate();
        let table = vec![config.initial_value; config.states * config.actions];
        QLearner { config, table, updates: 0, rng: StdRng::seed_from_u64(seed) }
    }

    /// The configuration this learner was built with.
    pub fn config(&self) -> &QConfig {
        &self.config
    }

    /// Number of updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Current Q-value for `(state, action)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `action` is out of range.
    pub fn q_value(&self, state: usize, action: usize) -> f64 {
        self.table[self.index(state, action)]
    }

    /// The full Q-table, row-major: entry `state * actions + action`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sol_ml::qlearning::{QConfig, QLearner};
    ///
    /// let mut q = QLearner::with_seed(QConfig::new(2, 2), 0);
    /// q.update(1, 0, 4.0, 1);
    /// assert_eq!(q.table().len(), 4);
    /// assert_eq!(q.table()[2], q.q_value(1, 0));
    /// ```
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// The greedy (highest-Q) action in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn best_action(&self, state: usize) -> usize {
        let row = &self.table[state * self.config.actions..(state + 1) * self.config.actions];
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN Q-values"))
            .map(|(i, _)| i)
            .expect("at least one action")
    }

    /// Chooses an action for `state` using ε-greedy exploration.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn choose_action(&mut self, state: usize) -> ChosenAction {
        assert!(state < self.config.states, "state out of range");
        if self.rng.gen::<f64>() < self.config.exploration {
            ChosenAction {
                action: self.rng.gen_range(0..self.config.actions),
                kind: ActionKind::Explore,
            }
        } else {
            ChosenAction { action: self.best_action(state), kind: ActionKind::Exploit }
        }
    }

    /// Applies the Q-learning update for taking `action` in `state`, observing
    /// `reward`, and transitioning to `next_state`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `reward` is not finite.
    pub fn update(&mut self, state: usize, action: usize, reward: f64, next_state: usize) {
        assert!(reward.is_finite(), "reward must be finite");
        assert!(next_state < self.config.states, "next_state out of range");
        let best_next = self.q_value(next_state, self.best_action(next_state));
        let idx = self.index(state, action);
        let old = self.table[idx];
        let target = reward + self.config.discount * best_next;
        self.table[idx] = old + self.config.learning_rate * (target - old);
        self.updates += 1;
    }

    /// Resets all Q-values to the initial value, keeping the RNG state.
    pub fn reset(&mut self) {
        for v in &mut self.table {
            *v = self.config.initial_value;
        }
        self.updates = 0;
    }

    fn index(&self, state: usize, action: usize) -> usize {
        assert!(state < self.config.states, "state out of range");
        assert!(action < self.config.actions, "action out of range");
        state * self.config.actions + action
    }
}

impl LearnedExchange for QLearner {
    /// Exports the Q-table as [`StateKind::QTable`] with shape
    /// `[states, actions]`.
    fn export_learned(&self) -> LearnedState {
        LearnedState::new(
            StateKind::QTable,
            vec![self.config.states, self.config.actions],
            self.table.clone(),
        )
        .expect("Q-table values are finite")
    }

    /// Overwrites the Q-table. RNG state, update counter, and configuration
    /// are untouched, so the exploration stream is unperturbed.
    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError> {
        if state.kind() != StateKind::QTable {
            return Err(ExchangeError::KindMismatch {
                expected: StateKind::QTable,
                found: state.kind(),
            });
        }
        let expected = [self.config.states, self.config.actions];
        if state.shape() != expected {
            return Err(ExchangeError::ShapeMismatch {
                expected: expected.to_vec(),
                found: state.shape().to_vec(),
            });
        }
        self.table.copy_from_slice(state.values());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_simple_bandit() {
        let mut q = QLearner::with_seed(QConfig::new(1, 3), 42);
        for _ in 0..500 {
            let a = q.choose_action(0).action;
            let reward = match a {
                2 => 1.0,
                1 => 0.3,
                _ => 0.0,
            };
            q.update(0, a, reward, 0);
        }
        assert_eq!(q.best_action(0), 2);
        assert!(q.q_value(0, 2) > q.q_value(0, 0));
    }

    #[test]
    fn learns_state_dependent_policy() {
        // State 0 prefers action 0, state 1 prefers action 1.
        let mut q = QLearner::with_seed(QConfig::new(2, 2), 1);
        for i in 0..2000 {
            let s = i % 2;
            let a = q.choose_action(s).action;
            let reward = if a == s { 1.0 } else { -1.0 };
            q.update(s, a, reward, (s + 1) % 2);
        }
        assert_eq!(q.best_action(0), 0);
        assert_eq!(q.best_action(1), 1);
    }

    #[test]
    fn exploration_rate_is_respected() {
        let mut config = QConfig::new(1, 4);
        config.exploration = 0.5;
        // Make action 3 clearly the greedy one.
        let mut q = QLearner::with_seed(config, 9);
        for _ in 0..50 {
            q.update(0, 3, 1.0, 0);
        }
        let mut explores = 0;
        let n = 2000;
        for _ in 0..n {
            if q.choose_action(0).kind == ActionKind::Explore {
                explores += 1;
            }
        }
        let frac = explores as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.08, "exploration fraction {frac} far from 0.5");
    }

    #[test]
    fn zero_exploration_is_always_greedy() {
        let mut config = QConfig::new(1, 2);
        config.exploration = 0.0;
        let mut q = QLearner::with_seed(config, 3);
        q.update(0, 1, 5.0, 0);
        for _ in 0..100 {
            let c = q.choose_action(0);
            assert_eq!(c.kind, ActionKind::Exploit);
            assert_eq!(c.action, 1);
        }
    }

    #[test]
    fn reset_clears_learning() {
        let mut q = QLearner::with_seed(QConfig::new(1, 2), 5);
        q.update(0, 1, 10.0, 0);
        assert!(q.q_value(0, 1) > 0.0);
        q.reset();
        assert_eq!(q.q_value(0, 1), 0.0);
        assert_eq!(q.updates(), 0);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let run = |seed| {
            let mut q = QLearner::with_seed(QConfig::new(3, 3), seed);
            let mut actions = Vec::new();
            for i in 0..100 {
                let s = i % 3;
                let a = q.choose_action(s).action;
                actions.push(a);
                q.update(s, a, (a as f64) - (s as f64), (i + 1) % 3);
            }
            actions
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    #[should_panic(expected = "state out of range")]
    fn rejects_out_of_range_state() {
        let mut q = QLearner::with_seed(QConfig::new(2, 2), 0);
        let _ = q.choose_action(5);
    }
}
