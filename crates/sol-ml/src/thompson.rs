//! Beta-Bernoulli Thompson sampling for multi-armed bandits.
//!
//! SmartMemory uses Thompson sampling with a Beta-distribution prior to learn
//! the best access-bit scanning frequency for each 2 MB memory region
//! (paper §5.3): each candidate frequency is an arm, the reward is "the region
//! was well sampled at this frequency", and the bandit converges on the lowest
//! frequency that does not under-sample the region.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::exchange::{ExchangeError, LearnedExchange, LearnedState, StateKind};

/// Posterior state of one arm: a Beta(α, β) distribution over its success
/// probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BetaArm {
    alpha: f64,
    beta: f64,
}

impl BetaArm {
    /// Creates an arm with a uniform Beta(1, 1) prior.
    pub fn uniform() -> Self {
        BetaArm { alpha: 1.0, beta: 1.0 }
    }

    /// Creates an arm with the given prior pseudo-counts.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive.
    pub fn with_prior(alpha: f64, beta: f64) -> Self {
        assert!(alpha > 0.0 && beta > 0.0, "Beta parameters must be positive");
        BetaArm { alpha, beta }
    }

    /// α parameter (successes + prior).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// β parameter (failures + prior).
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Posterior mean success probability.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Records a success (reward 1).
    pub fn record_success(&mut self) {
        self.alpha += 1.0;
    }

    /// Records a failure (reward 0).
    pub fn record_failure(&mut self) {
        self.beta += 1.0;
    }

    /// Records a fractional reward in `[0, 1]`, splitting it between α and β.
    ///
    /// # Panics
    ///
    /// Panics if `reward` is outside `[0, 1]`.
    pub fn record_reward(&mut self, reward: f64) {
        assert!((0.0..=1.0).contains(&reward), "reward must be in [0, 1]");
        self.alpha += reward;
        self.beta += 1.0 - reward;
    }

    /// Draws one sample from the posterior.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        sample_beta(rng, self.alpha, self.beta)
    }
}

impl Default for BetaArm {
    fn default() -> Self {
        Self::uniform()
    }
}

/// A Thompson-sampling bandit over a fixed set of arms.
///
/// # Examples
///
/// ```
/// use sol_ml::thompson::ThompsonSampler;
///
/// let mut bandit = ThompsonSampler::with_seed(3, 42);
/// for _ in 0..400 {
///     let arm = bandit.select();
///     // Arm 2 succeeds 90% of the time, the others 10%.
///     let success = if arm == 2 { true } else { false };
///     bandit.record(arm, success);
/// }
/// assert_eq!(bandit.best_arm(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ThompsonSampler {
    arms: Vec<BetaArm>,
    rng: StdRng,
    selections: u64,
}

impl ThompsonSampler {
    /// Creates a bandit with `arms` arms, all starting from a uniform prior,
    /// and a fixed RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is zero.
    pub fn with_seed(arms: usize, seed: u64) -> Self {
        assert!(arms > 0, "bandit needs at least one arm");
        ThompsonSampler {
            arms: vec![BetaArm::uniform(); arms],
            rng: StdRng::seed_from_u64(seed),
            selections: 0,
        }
    }

    /// Number of arms.
    pub fn arms(&self) -> usize {
        self.arms.len()
    }

    /// Number of selections made so far.
    pub fn selections(&self) -> u64 {
        self.selections
    }

    /// Read access to an arm's posterior.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn arm(&self, arm: usize) -> &BetaArm {
        &self.arms[arm]
    }

    /// All arm posteriors, in arm order.
    ///
    /// # Examples
    ///
    /// ```
    /// use sol_ml::thompson::ThompsonSampler;
    ///
    /// let mut bandit = ThompsonSampler::with_seed(2, 1);
    /// bandit.record(1, true);
    /// let posteriors = bandit.posteriors();
    /// assert_eq!(posteriors.len(), 2);
    /// assert!(posteriors[1].mean() > posteriors[0].mean());
    /// ```
    pub fn posteriors(&self) -> &[BetaArm] {
        &self.arms
    }

    /// Selects an arm by sampling each posterior and picking the best draw.
    pub fn select(&mut self) -> usize {
        self.selections += 1;
        let mut best = 0;
        let mut best_draw = f64::NEG_INFINITY;
        for (i, arm) in self.arms.iter().enumerate() {
            let draw = arm.sample(&mut self.rng);
            if draw > best_draw {
                best_draw = draw;
                best = i;
            }
        }
        best
    }

    /// Records a binary outcome for `arm`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range.
    pub fn record(&mut self, arm: usize, success: bool) {
        if success {
            self.arms[arm].record_success();
        } else {
            self.arms[arm].record_failure();
        }
    }

    /// Records a fractional reward in `[0, 1]` for `arm`.
    ///
    /// # Panics
    ///
    /// Panics if `arm` is out of range or `reward` is outside `[0, 1]`.
    pub fn record_reward(&mut self, arm: usize, reward: f64) {
        self.arms[arm].record_reward(reward);
    }

    /// The arm with the highest posterior mean (no sampling).
    pub fn best_arm(&self) -> usize {
        self.arms
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.mean().partial_cmp(&b.1.mean()).expect("no NaN means"))
            .map(|(i, _)| i)
            .expect("at least one arm")
    }

    /// Resets every arm to the uniform prior, keeping the RNG state.
    pub fn reset(&mut self) {
        for arm in &mut self.arms {
            *arm = BetaArm::uniform();
        }
        self.selections = 0;
    }
}

impl LearnedExchange for ThompsonSampler {
    /// Exports the posteriors as [`StateKind::BetaPosteriors`] with shape
    /// `[arms, 2]`: each row is one arm's `(α, β)` pair.
    fn export_learned(&self) -> LearnedState {
        let values = self.arms.iter().flat_map(|a| [a.alpha, a.beta]).collect();
        LearnedState::new(StateKind::BetaPosteriors, vec![self.arms.len(), 2], values)
            .expect("Beta parameters are finite")
    }

    /// Overwrites every arm's posterior, requiring all parameters to be
    /// strictly positive (a Beta distribution is undefined otherwise). RNG
    /// state and the selection counter are untouched.
    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError> {
        if state.kind() != StateKind::BetaPosteriors {
            return Err(ExchangeError::KindMismatch {
                expected: StateKind::BetaPosteriors,
                found: state.kind(),
            });
        }
        let expected = [self.arms.len(), 2];
        if state.shape() != expected {
            return Err(ExchangeError::ShapeMismatch {
                expected: expected.to_vec(),
                found: state.shape().to_vec(),
            });
        }
        if let Some(index) = state.values().iter().position(|&v| v <= 0.0) {
            return Err(ExchangeError::InvalidValue {
                index,
                reason: "Beta parameters must be strictly positive",
            });
        }
        for (arm, pair) in self.arms.iter_mut().zip(state.values().chunks_exact(2)) {
            arm.alpha = pair[0];
            arm.beta = pair[1];
        }
        Ok(())
    }
}

/// Samples from a Beta(α, β) distribution via two Gamma draws.
fn sample_beta(rng: &mut StdRng, alpha: f64, beta: f64) -> f64 {
    let x = sample_gamma(rng, alpha);
    let y = sample_gamma(rng, beta);
    if x + y == 0.0 {
        0.5
    } else {
        x / (x + y)
    }
}

/// Samples from a Gamma(shape, 1) distribution using the Marsaglia–Tsang
/// method, with the standard boost for shape < 1.
fn sample_gamma(rng: &mut StdRng, shape: f64) -> f64 {
    if shape < 1.0 {
        // Gamma(a) = Gamma(a + 1) * U^(1/a)
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box-Muller.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_arm_posterior_updates() {
        let mut arm = BetaArm::uniform();
        assert!((arm.mean() - 0.5).abs() < 1e-12);
        for _ in 0..8 {
            arm.record_success();
        }
        for _ in 0..2 {
            arm.record_failure();
        }
        // Posterior mean of Beta(9, 3) = 0.75.
        assert!((arm.mean() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fractional_rewards_accumulate() {
        let mut arm = BetaArm::uniform();
        arm.record_reward(0.25);
        assert!((arm.alpha() - 1.25).abs() < 1e-12);
        assert!((arm.beta() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn beta_samples_are_in_unit_interval_and_track_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let arm = BetaArm::with_prior(20.0, 5.0);
        let mut sum = 0.0;
        let n = 5000;
        for _ in 0..n {
            let s = arm.sample(&mut rng);
            assert!((0.0..=1.0).contains(&s));
            sum += s;
        }
        let empirical = sum / n as f64;
        assert!((empirical - 0.8).abs() < 0.02, "empirical mean {empirical} should be near 0.8");
    }

    #[test]
    fn gamma_sampler_matches_expected_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        for &shape in &[0.5, 1.0, 2.5, 10.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| sample_gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(1.0),
                "Gamma({shape}) empirical mean {mean}"
            );
        }
    }

    #[test]
    fn bandit_finds_best_arm() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut bandit = ThompsonSampler::with_seed(4, 99);
        let probabilities = [0.1, 0.3, 0.8, 0.5];
        for _ in 0..2000 {
            let arm = bandit.select();
            let success = rng.gen::<f64>() < probabilities[arm];
            bandit.record(arm, success);
        }
        assert_eq!(bandit.best_arm(), 2);
        // Exploitation should concentrate pulls on the best arm.
        let pulls_best = bandit.arm(2).alpha() + bandit.arm(2).beta();
        let pulls_worst = bandit.arm(0).alpha() + bandit.arm(0).beta();
        assert!(pulls_best > 4.0 * pulls_worst);
    }

    #[test]
    fn bandit_is_deterministic_for_fixed_seed() {
        let run = || {
            let mut b = ThompsonSampler::with_seed(3, 7);
            let mut picks = Vec::new();
            for i in 0..100 {
                let arm = b.select();
                picks.push(arm);
                b.record(arm, i % 3 == arm);
            }
            picks
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_restores_uniform_prior() {
        let mut b = ThompsonSampler::with_seed(2, 5);
        b.record(0, true);
        b.record(0, true);
        b.reset();
        assert!((b.arm(0).mean() - 0.5).abs() < 1e-12);
        assert_eq!(b.selections(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn rejects_zero_arms() {
        let _ = ThompsonSampler::with_seed(0, 1);
    }
}
