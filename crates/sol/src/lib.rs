//! # sol — reproduction of *SOL: Safe On-Node Learning in Cloud Platforms*
//!
//! This facade crate re-exports the whole reproduction:
//!
//! * [`core`] — the SOL framework (Model/Actuator API, safeguards, the
//!   multi-agent event-queue runtime, deterministic and threaded drivers).
//! * [`ml`] — the online learners the agents use (Q-learning,
//!   cost-sensitive classification, Thompson sampling, streaming statistics).
//! * [`node_sim`] — the simulated cloud node (CPU/DVFS/power, hypervisor
//!   counters, CPU harvesting, two-tier memory, co-location, fault
//!   injection).
//! * [`agents`] — SmartOverclock, SmartHarvest, SmartMemory, and their
//!   co-location wiring.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `sol-bench` crate for the harness that regenerates every table and figure
//! of the paper.
//!
//! ## Example
//!
//! ```
//! use sol::prelude::*;
//!
//! // Run SmartOverclock on the ObjectStore workload for 30 simulated seconds.
//! let node = Shared::new(CpuNode::new(
//!     OverclockWorkloadKind::ObjectStore.build(8),
//!     CpuNodeConfig { cores: 8, ..CpuNodeConfig::default() },
//! ));
//! let (model, actuator) = smart_overclock(&node, OverclockConfig::default());
//! let runtime = SimRuntime::new(model, actuator, overclock_schedule(), node.clone());
//! let report = runtime.run_for(SimDuration::from_secs(30))?;
//! assert!(report.stats.model.epochs_completed > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use sol_agents as agents;
pub use sol_core as core;
pub use sol_ml as ml;
pub use sol_node_sim as node_sim;

/// Commonly used items from every crate in the reproduction.
pub mod prelude {
    pub use sol_agents::prelude::*;
    pub use sol_core::prelude::*;
    pub use sol_ml::prelude::*;
    pub use sol_node_sim::prelude::*;
}
