//! The `Actuator` half of the SOL agent API (paper §4.1, Listing 2).
//!
//! The Actuator makes control decisions at regular intervals using predictions
//! from the Model when available. By design it closely resembles a
//! non-learning agent: a simple control function plus a watchdog-style
//! safeguard and an idempotent clean-up routine.

use crate::prediction::Prediction;
use crate::time::Timestamp;

/// The outcome of the Actuator safeguard check
/// ([`Actuator::assess_performance`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuatorAssessment {
    /// End-to-end behaviour is within the acceptable envelope.
    Acceptable,
    /// The safeguard condition tripped; the runtime calls
    /// [`Actuator::mitigate`] and halts the Actuator loop until the condition
    /// clears.
    Unacceptable,
}

impl ActuatorAssessment {
    /// Returns `true` when the behaviour is acceptable.
    pub fn is_acceptable(self) -> bool {
        matches!(self, ActuatorAssessment::Acceptable)
    }

    /// Builds an assessment from a boolean where `true` means acceptable.
    pub fn from_acceptable(ok: bool) -> Self {
        if ok {
            ActuatorAssessment::Acceptable
        } else {
            ActuatorAssessment::Unacceptable
        }
    }
}

/// The control half of a SOL agent.
///
/// [`take_action`](Actuator::take_action) is called either when a new
/// prediction becomes available or after the schedule's maximum actuation
/// delay elapses, whichever comes first. There may not be a prediction
/// available (even a default one) by the time the Actuator must act, in which
/// case it receives `None` and should take a conservative, safe action.
///
/// # Examples
///
/// ```
/// use sol_core::actuator::{Actuator, ActuatorAssessment};
/// use sol_core::prediction::Prediction;
/// use sol_core::time::Timestamp;
///
/// /// Sets a knob to the predicted value, or to a safe value when no
/// /// prediction is available.
/// struct KnobActuator {
///     knob: f64,
/// }
///
/// impl Actuator for KnobActuator {
///     type Pred = f64;
///
///     fn take_action(&mut self, _now: Timestamp, pred: Option<&Prediction<f64>>) {
///         self.knob = pred.map(|p| *p.value()).unwrap_or(0.0);
///     }
///     fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
///         ActuatorAssessment::Acceptable
///     }
///     fn mitigate(&mut self, _now: Timestamp) {
///         self.knob = 0.0;
///     }
///     fn clean_up(&mut self, _now: Timestamp) {
///         self.knob = 0.0;
///     }
/// }
/// ```
pub trait Actuator: Send {
    /// The prediction type this actuator consumes; must match the paired
    /// model's [`Model::Pred`](crate::model::Model::Pred).
    type Pred;

    /// Takes a control action. `pred` is `None` when no un-expired prediction
    /// was available within the allowed actuation delay; the implementation
    /// should then take a conservative action that preserves customer QoS and
    /// node health.
    fn take_action(&mut self, now: Timestamp, pred: Option<&Prediction<Self::Pred>>);

    /// The Actuator safeguard: assesses the agent's end-to-end behaviour
    /// independently of the model's internal state (the last line of
    /// defense). The runtime evaluates this periodically.
    fn assess_performance(&mut self, now: Timestamp) -> ActuatorAssessment;

    /// Takes mitigating action after the safeguard trips (e.g. return all
    /// harvested cores, restore nominal frequency).
    fn mitigate(&mut self, now: Timestamp);

    /// Stops the agent's effects and restores the node to a clean state.
    /// Must be idempotent and safe to call at any time, whether the agent is
    /// running normally, has crashed, or is hanging.
    fn clean_up(&mut self, now: Timestamp);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assessment_from_bool() {
        assert!(ActuatorAssessment::from_acceptable(true).is_acceptable());
        assert!(!ActuatorAssessment::from_acceptable(false).is_acceptable());
    }
}
