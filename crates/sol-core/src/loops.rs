//! The Model and Actuator control-loop state machines.
//!
//! These implement the runtime semantics of paper §4.2 in a driver-agnostic
//! way: both the deterministic simulation runtime and the threaded runtime
//! step the same state machines, so experiments exercise exactly the logic a
//! production deployment would run.

use std::collections::VecDeque;

use crate::actuator::Actuator;
use crate::model::{Model, ModelAssessment};
use crate::prediction::{Prediction, PredictionSource};
use crate::schedule::Schedule;
use crate::stats::{ActuatorLoopStats, ModelLoopStats};
use crate::time::Timestamp;

/// Drives a [`Model`] through learning epochs, producing predictions.
///
/// The loop collects data every `data_collect_interval`; each sample is
/// validated and, if valid, committed. Once `data_per_epoch` valid samples are
/// gathered the model is updated and asked to predict. If the epoch's maximum
/// time elapses first, the epoch is short-circuited with a default prediction.
/// Every `assess_model_every_epochs` completed epochs the model safeguard
/// runs; while it is failing, model predictions are intercepted and replaced
/// by default predictions.
#[derive(Debug)]
pub struct ModelLoop<M: Model> {
    model: M,
    schedule: Schedule,
    stats: ModelLoopStats,
    epoch_start: Timestamp,
    collected: u32,
    epochs_since_assessment: u32,
    assessment_failing: bool,
    next_collect: Timestamp,
    /// The loop does not run again until this time (scheduling-delay /
    /// throttling injection).
    delayed_until: Option<Timestamp>,
}

impl<M: Model> ModelLoop<M> {
    /// Creates a loop that begins its first epoch at `start`.
    pub fn new(model: M, schedule: Schedule, start: Timestamp) -> Self {
        ModelLoop {
            model,
            schedule,
            stats: ModelLoopStats::default(),
            epoch_start: start,
            collected: 0,
            epochs_since_assessment: 0,
            assessment_failing: false,
            next_collect: start,
            delayed_until: None,
        }
    }

    /// The next time this loop needs to run.
    pub fn next_wake(&self) -> Timestamp {
        match self.delayed_until {
            Some(t) if t > self.next_collect => t,
            _ => self.next_collect,
        }
    }

    /// Injects a scheduling delay: the loop will not run before `until`.
    /// Models the agent being throttled or starved by higher-priority work.
    pub fn delay_until(&mut self, until: Timestamp) {
        self.delayed_until = Some(match self.delayed_until {
            Some(cur) if cur > until => cur,
            _ => until,
        });
    }

    /// Whether the model safeguard is currently failing (predictions are being
    /// intercepted).
    pub fn assessment_failing(&self) -> bool {
        self.assessment_failing
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ModelLoopStats {
        &self.stats
    }

    /// Read access to the wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model (used by tests and fault
    /// injection).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the loop, returning the model and its stats.
    pub fn into_parts(self) -> (M, ModelLoopStats) {
        (self.model, self.stats)
    }

    /// Runs one step of the loop at time `now`. Returns a prediction to be
    /// forwarded to the Actuator if the step completed (or short-circuited) an
    /// epoch.
    ///
    /// Callers must only invoke this at or after [`next_wake`](Self::next_wake).
    pub fn step(&mut self, now: Timestamp) -> Option<Prediction<M::Pred>> {
        if let Some(until) = self.delayed_until {
            if now < until {
                return None;
            }
            self.delayed_until = None;
        }

        // Collect one sample.
        match self.model.collect_data(now) {
            Ok(sample) => {
                if self.model.validate_data(&sample) {
                    self.model.commit_data(now, sample);
                    self.collected += 1;
                    self.stats.samples_committed += 1;
                } else {
                    self.stats.samples_discarded += 1;
                }
            }
            Err(_) => {
                self.stats.collect_errors += 1;
            }
        }
        self.next_collect = now + self.schedule.data_collect_interval();

        // Explicit developer short-circuit.
        if self.model.request_default() {
            return Some(self.finish_epoch_short_circuit(now));
        }

        let epoch_elapsed =
            now.duration_since(self.epoch_start) + self.schedule.data_collect_interval();
        let epoch_timed_out = epoch_elapsed >= self.schedule.max_epoch_time();
        let enough_data = self.collected >= self.schedule.data_per_epoch();

        if enough_data || (epoch_timed_out && self.collected >= self.schedule.min_data_per_epoch())
        {
            Some(self.finish_epoch_complete(now))
        } else if epoch_timed_out {
            Some(self.finish_epoch_short_circuit(now))
        } else {
            None
        }
    }

    fn finish_epoch_complete(&mut self, now: Timestamp) -> Prediction<M::Pred> {
        self.stats.epochs_completed += 1;
        self.model.update_model(now);
        self.run_assessment_if_due(now);

        let pred = self.model.predict(now);
        self.reset_epoch(now);
        match pred {
            Some(p) if p.source() == PredictionSource::Model => {
                if self.assessment_failing {
                    // Model safeguard: intercept and forward the default.
                    self.stats.intercepted_predictions += 1;
                    self.stats.default_predictions += 1;
                    self.model.default_predict(now)
                } else {
                    self.stats.model_predictions += 1;
                    p
                }
            }
            Some(p) => {
                // The model itself chose to emit a default prediction.
                self.stats.default_predictions += 1;
                p
            }
            None => {
                self.stats.default_predictions += 1;
                self.model.default_predict(now)
            }
        }
    }

    fn finish_epoch_short_circuit(&mut self, now: Timestamp) -> Prediction<M::Pred> {
        self.stats.epochs_short_circuited += 1;
        self.stats.default_predictions += 1;
        self.reset_epoch(now);
        self.model.default_predict(now)
    }

    fn run_assessment_if_due(&mut self, now: Timestamp) {
        self.epochs_since_assessment += 1;
        if self.epochs_since_assessment >= self.schedule.assess_model_every_epochs() {
            self.epochs_since_assessment = 0;
            self.stats.model_assessments += 1;
            match self.model.assess_model(now) {
                ModelAssessment::Healthy => self.assessment_failing = false,
                ModelAssessment::Failing { .. } => {
                    self.stats.model_assessment_failures += 1;
                    self.assessment_failing = true;
                }
            }
        }
    }

    fn reset_epoch(&mut self, now: Timestamp) {
        self.collected = 0;
        self.epoch_start = now;
    }
}

/// Drives an [`Actuator`], consuming predictions and enforcing its safeguard.
#[derive(Debug)]
pub struct ActuatorLoop<A: Actuator> {
    actuator: A,
    schedule: Schedule,
    stats: ActuatorLoopStats,
    pending: VecDeque<Prediction<A::Pred>>,
    last_action: Timestamp,
    next_assessment: Timestamp,
    halted_since: Option<Timestamp>,
    cleaned_up: bool,
}

impl<A: Actuator> ActuatorLoop<A> {
    /// Creates a loop whose first deadline starts counting at `start`.
    pub fn new(actuator: A, schedule: Schedule, start: Timestamp) -> Self {
        let next_assessment = start + schedule.assess_actuator_interval();
        ActuatorLoop {
            actuator,
            schedule,
            stats: ActuatorLoopStats::default(),
            pending: VecDeque::new(),
            last_action: start,
            next_assessment,
            halted_since: None,
            cleaned_up: false,
        }
    }

    /// The next time this loop needs to run: when a prediction is pending,
    /// when the maximum actuation delay expires, or when the safeguard is next
    /// due — whichever comes first.
    pub fn next_wake(&self) -> Timestamp {
        let deadline = self.last_action + self.schedule.max_actuation_delay();
        let mut wake = deadline.min(self.next_assessment);
        if !self.pending.is_empty() {
            // Run as soon as possible to consume the prediction.
            wake = Timestamp::ZERO;
        }
        wake
    }

    /// Delivers a prediction from the Model loop.
    pub fn deliver(&mut self, prediction: Prediction<A::Pred>) {
        self.pending.push_back(prediction);
    }

    /// Whether the Actuator is currently halted by its safeguard.
    pub fn is_halted(&self) -> bool {
        self.halted_since.is_some()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ActuatorLoopStats {
        &self.stats
    }

    /// Read access to the wrapped actuator.
    pub fn actuator(&self) -> &A {
        &self.actuator
    }

    /// Mutable access to the wrapped actuator.
    pub fn actuator_mut(&mut self) -> &mut A {
        &mut self.actuator
    }

    /// Consumes the loop, returning the actuator and its stats.
    pub fn into_parts(self) -> (A, ActuatorLoopStats) {
        (self.actuator, self.stats)
    }

    /// Runs one step of the loop at time `now`.
    pub fn step(&mut self, now: Timestamp) {
        self.run_safeguard_if_due(now);

        if self.halted_since.is_some() {
            // Paper §4.2: the Actuator loop is halted until the unsafe
            // behaviour is no longer detected. Predictions arriving in the
            // meantime are dropped so the agent never acts on stale output
            // when it resumes.
            let dropped = self.pending.len() as u64;
            self.stats.predictions_dropped_while_halted += dropped;
            self.pending.clear();
            self.last_action = now;
            return;
        }

        if !self.pending.is_empty() {
            // Keep only the most recent prediction; older ones are superseded.
            while self.pending.len() > 1 {
                self.pending.pop_front();
                self.stats.superseded_predictions += 1;
            }
            let pred = self.pending.pop_front().expect("non-empty queue");
            if pred.is_expired(now) {
                self.stats.expired_predictions += 1;
                self.stats.actions_without_prediction += 1;
                self.actuator.take_action(now, None);
            } else {
                match pred.source() {
                    PredictionSource::Model => self.stats.actions_with_model_prediction += 1,
                    PredictionSource::Default => self.stats.actions_with_default_prediction += 1,
                }
                self.actuator.take_action(now, Some(&pred));
            }
            self.last_action = now;
            return;
        }

        // Timeout path: uphold the upper bound on the time between control
        // actions even when no prediction is available.
        if now.duration_since(self.last_action) >= self.schedule.max_actuation_delay() {
            self.stats.actuation_timeouts += 1;
            self.stats.actions_without_prediction += 1;
            self.actuator.take_action(now, None);
            self.last_action = now;
        }
    }

    /// Invokes the idempotent `CleanUp` routine.
    pub fn clean_up(&mut self, now: Timestamp) {
        self.stats.cleanups += 1;
        self.cleaned_up = true;
        self.actuator.clean_up(now);
    }

    /// Whether `clean_up` has been invoked.
    pub fn cleaned_up(&self) -> bool {
        self.cleaned_up
    }

    fn run_safeguard_if_due(&mut self, now: Timestamp) {
        while now >= self.next_assessment {
            self.next_assessment += self.schedule.assess_actuator_interval();
            self.stats.performance_assessments += 1;
            let acceptable = self.actuator.assess_performance(now).is_acceptable();
            match (acceptable, self.halted_since) {
                (false, None) => {
                    self.stats.safeguard_triggers += 1;
                    self.stats.mitigations += 1;
                    self.actuator.mitigate(now);
                    self.halted_since = Some(now);
                }
                (true, Some(since)) => {
                    self.stats.halted_time += now.duration_since(since);
                    self.halted_since = None;
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ActuatorAssessment;
    use crate::error::DataError;
    use crate::time::SimDuration;

    /// A scripted model used to exercise every loop path.
    struct ScriptModel {
        readings: Vec<Result<f64, DataError>>,
        cursor: usize,
        committed: Vec<f64>,
        updates: u32,
        healthy: bool,
        emit_prediction: bool,
    }

    impl ScriptModel {
        fn new(readings: Vec<Result<f64, DataError>>) -> Self {
            ScriptModel {
                readings,
                cursor: 0,
                committed: Vec::new(),
                updates: 0,
                healthy: true,
                emit_prediction: true,
            }
        }
    }

    impl Model for ScriptModel {
        type Data = f64;
        type Pred = f64;

        fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
            let r = self.readings[self.cursor % self.readings.len()].clone();
            self.cursor += 1;
            r
        }
        fn validate_data(&self, d: &f64) -> bool {
            *d >= 0.0
        }
        fn commit_data(&mut self, _now: Timestamp, d: f64) {
            self.committed.push(d);
        }
        fn update_model(&mut self, _now: Timestamp) {
            self.updates += 1;
        }
        fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
            if self.emit_prediction {
                Some(Prediction::model(1.0, now, now + SimDuration::from_secs(1)))
            } else {
                None
            }
        }
        fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
            Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
        }
        fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
            if self.healthy {
                ModelAssessment::Healthy
            } else {
                ModelAssessment::failing("scripted failure")
            }
        }
    }

    fn schedule() -> Schedule {
        Schedule::builder()
            .data_per_epoch(2)
            .data_collect_interval(SimDuration::from_millis(10))
            .max_epoch_time(SimDuration::from_millis(100))
            .assess_model_every_epochs(1)
            .max_actuation_delay(SimDuration::from_millis(50))
            .assess_actuator_interval(SimDuration::from_millis(20))
            .build()
            .unwrap()
    }

    /// Steps the loop at each of its own wake times until it emits a
    /// prediction (or gives up).
    fn run_epoch(loop_: &mut ModelLoop<ScriptModel>) -> Option<Prediction<f64>> {
        for _ in 0..64 {
            let t = loop_.next_wake();
            if let Some(p) = loop_.step(t) {
                return Some(p);
            }
        }
        None
    }

    #[test]
    fn completes_epoch_and_emits_model_prediction() {
        let model = ScriptModel::new(vec![Ok(1.0), Ok(2.0)]);
        let mut ml = ModelLoop::new(model, schedule(), Timestamp::ZERO);
        let p = run_epoch(&mut ml).expect("prediction");
        assert_eq!(p.source(), PredictionSource::Model);
        assert_eq!(ml.stats().epochs_completed, 1);
        assert_eq!(ml.stats().samples_committed, 2);
        assert_eq!(ml.stats().model_predictions, 1);
    }

    #[test]
    fn invalid_samples_are_discarded_and_epoch_eventually_short_circuits() {
        let model = ScriptModel::new(vec![Ok(-1.0)]);
        let mut ml = ModelLoop::new(model, schedule(), Timestamp::ZERO);
        let p = run_epoch(&mut ml).expect("default prediction");
        assert_eq!(p.source(), PredictionSource::Default);
        assert_eq!(ml.stats().epochs_short_circuited, 1);
        assert!(ml.stats().samples_discarded >= 1);
        assert_eq!(ml.stats().samples_committed, 0);
        assert_eq!(ml.model().updates, 0, "model must not learn from bad data");
    }

    #[test]
    fn collect_errors_are_counted_separately() {
        let model =
            ScriptModel::new(vec![Err(DataError::SourceUnavailable("counter".into())), Ok(1.0)]);
        let mut ml = ModelLoop::new(model, schedule(), Timestamp::ZERO);
        let _ = run_epoch(&mut ml);
        assert!(ml.stats().collect_errors >= 1);
    }

    #[test]
    fn failing_assessment_intercepts_model_predictions() {
        let mut model = ScriptModel::new(vec![Ok(1.0)]);
        model.healthy = false;
        let mut ml = ModelLoop::new(model, schedule(), Timestamp::ZERO);
        let p = run_epoch(&mut ml).expect("prediction");
        assert_eq!(p.source(), PredictionSource::Default);
        assert_eq!(*p.value(), 0.0);
        assert_eq!(ml.stats().intercepted_predictions, 1);
        assert!(ml.assessment_failing());
        // The model keeps updating while intercepted, so it can recover.
        assert_eq!(ml.model().updates, 1);
    }

    #[test]
    fn model_recovers_after_assessment_passes_again() {
        let mut model = ScriptModel::new(vec![Ok(1.0)]);
        model.healthy = false;
        let mut ml = ModelLoop::new(model, schedule(), Timestamp::ZERO);
        let _ = run_epoch(&mut ml);
        assert!(ml.assessment_failing());
        ml.model_mut().healthy = true;
        // The long idle gap makes the next epoch time out (a short-circuit);
        // the epoch after that completes normally and passes assessment again.
        let _ = run_epoch(&mut ml);
        let p = run_epoch(&mut ml).expect("prediction");
        assert_eq!(p.source(), PredictionSource::Model);
        assert!(!ml.assessment_failing());
    }

    #[test]
    fn predict_none_falls_back_to_default() {
        let mut model = ScriptModel::new(vec![Ok(1.0)]);
        model.emit_prediction = false;
        let mut ml = ModelLoop::new(model, schedule(), Timestamp::ZERO);
        let p = run_epoch(&mut ml).expect("prediction");
        assert_eq!(p.source(), PredictionSource::Default);
        assert_eq!(ml.stats().default_predictions, 1);
        assert_eq!(ml.stats().intercepted_predictions, 0);
    }

    #[test]
    fn delay_postpones_next_wake() {
        let model = ScriptModel::new(vec![Ok(1.0)]);
        let mut ml = ModelLoop::new(model, schedule(), Timestamp::ZERO);
        ml.delay_until(Timestamp::from_secs(30));
        assert_eq!(ml.next_wake(), Timestamp::from_secs(30));
        // Stepping before the delay expires is a no-op.
        assert!(ml.step(Timestamp::from_secs(1)).is_none());
        assert_eq!(ml.stats().samples_committed, 0);
    }

    /// A scripted actuator recording every call.
    #[derive(Default)]
    struct RecordingActuator {
        actions: Vec<Option<f64>>,
        acceptable: bool,
        mitigations: u32,
        cleanups: u32,
    }

    impl Actuator for RecordingActuator {
        type Pred = f64;
        fn take_action(&mut self, _now: Timestamp, pred: Option<&Prediction<f64>>) {
            self.actions.push(pred.map(|p| *p.value()));
        }
        fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
            ActuatorAssessment::from_acceptable(self.acceptable)
        }
        fn mitigate(&mut self, _now: Timestamp) {
            self.mitigations += 1;
        }
        fn clean_up(&mut self, _now: Timestamp) {
            self.cleanups += 1;
        }
    }

    #[test]
    fn actuator_consumes_latest_prediction_and_supersedes_older() {
        let mut al = ActuatorLoop::new(
            RecordingActuator { acceptable: true, ..Default::default() },
            schedule(),
            Timestamp::ZERO,
        );
        let now = Timestamp::from_millis(10);
        al.deliver(Prediction::model(1.0, now, now + SimDuration::from_secs(1)));
        al.deliver(Prediction::model(2.0, now, now + SimDuration::from_secs(1)));
        al.step(Timestamp::from_millis(15));
        assert_eq!(al.stats().superseded_predictions, 1);
        assert_eq!(al.actuator().actions, vec![Some(2.0)]);
    }

    #[test]
    fn expired_prediction_is_treated_as_absent() {
        let mut al = ActuatorLoop::new(
            RecordingActuator { acceptable: true, ..Default::default() },
            schedule(),
            Timestamp::ZERO,
        );
        let produced = Timestamp::from_millis(1);
        al.deliver(Prediction::model(1.0, produced, produced + SimDuration::from_millis(1)));
        al.step(Timestamp::from_millis(30));
        assert_eq!(al.stats().expired_predictions, 1);
        assert_eq!(al.actuator().actions, vec![None]);
    }

    #[test]
    fn actuation_timeout_produces_action_without_prediction() {
        let mut al = ActuatorLoop::new(
            RecordingActuator { acceptable: true, ..Default::default() },
            schedule(),
            Timestamp::ZERO,
        );
        al.step(Timestamp::from_millis(60));
        assert_eq!(al.stats().actuation_timeouts, 1);
        assert_eq!(al.actuator().actions, vec![None]);
    }

    #[test]
    fn safeguard_halts_mitigates_and_resumes() {
        let mut al = ActuatorLoop::new(
            RecordingActuator { acceptable: false, ..Default::default() },
            schedule(),
            Timestamp::ZERO,
        );
        al.step(Timestamp::from_millis(20));
        assert!(al.is_halted());
        assert_eq!(al.stats().safeguard_triggers, 1);
        assert_eq!(al.actuator().mitigations, 1);

        // Predictions delivered while halted are dropped, not acted on.
        let now = Timestamp::from_millis(25);
        al.deliver(Prediction::model(5.0, now, now + SimDuration::from_secs(1)));
        al.step(Timestamp::from_millis(30));
        assert!(al.actuator().actions.is_empty());
        assert_eq!(al.stats().predictions_dropped_while_halted, 1);

        // Condition clears: the loop resumes and acts again.
        al.actuator_mut().acceptable = true;
        al.step(Timestamp::from_millis(40));
        assert!(!al.is_halted());
        let now = Timestamp::from_millis(45);
        al.deliver(Prediction::model(7.0, now, now + SimDuration::from_secs(1)));
        al.step(Timestamp::from_millis(46));
        assert_eq!(al.actuator().actions, vec![Some(7.0)]);
        assert!(al.stats().halted_time > SimDuration::ZERO);
    }

    #[test]
    fn safeguard_does_not_retrigger_while_already_halted() {
        let mut al = ActuatorLoop::new(
            RecordingActuator { acceptable: false, ..Default::default() },
            schedule(),
            Timestamp::ZERO,
        );
        al.step(Timestamp::from_millis(20));
        al.step(Timestamp::from_millis(40));
        al.step(Timestamp::from_millis(60));
        assert_eq!(al.stats().safeguard_triggers, 1);
        assert_eq!(al.actuator().mitigations, 1);
    }

    #[test]
    fn cleanup_is_recorded_and_idempotent() {
        let mut al = ActuatorLoop::new(
            RecordingActuator { acceptable: true, ..Default::default() },
            schedule(),
            Timestamp::ZERO,
        );
        al.clean_up(Timestamp::from_millis(5));
        al.clean_up(Timestamp::from_millis(6));
        assert!(al.cleaned_up());
        assert_eq!(al.stats().cleanups, 2);
        assert_eq!(al.actuator().cleanups, 2);
    }
}
