//! Operational statistics kept by the SOL runtime for each agent.
//!
//! These counters give site reliability engineers visibility into how an agent
//! behaved — how often its safeguards fired, how often it fell back to default
//! predictions, how often it acted without any prediction — without requiring
//! any knowledge of the agent's implementation.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Counters describing the Model control loop.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelLoopStats {
    /// Samples returned by `collect_data` that passed validation and were
    /// committed.
    pub samples_committed: u64,
    /// Samples that failed `validate_data` and were discarded.
    pub samples_discarded: u64,
    /// `collect_data` calls that returned an error.
    pub collect_errors: u64,
    /// Learning epochs that gathered enough valid data to update the model.
    pub epochs_completed: u64,
    /// Learning epochs that timed out (or were explicitly short-circuited)
    /// before gathering enough valid data.
    pub epochs_short_circuited: u64,
    /// Predictions produced by the model and forwarded to the Actuator.
    pub model_predictions: u64,
    /// Default predictions forwarded to the Actuator (short-circuited epochs,
    /// `predict` returning `None`, or interception by the model safeguard).
    pub default_predictions: u64,
    /// Model predictions intercepted because the model safeguard was failing.
    pub intercepted_predictions: u64,
    /// Number of model safeguard evaluations performed.
    pub model_assessments: u64,
    /// Number of model safeguard evaluations that reported `Failing`.
    pub model_assessment_failures: u64,
}

/// Counters describing the Actuator control loop.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActuatorLoopStats {
    /// Actions taken with a fresh model-produced prediction.
    pub actions_with_model_prediction: u64,
    /// Actions taken with a fresh default prediction.
    pub actions_with_default_prediction: u64,
    /// Actions taken with no prediction available (timeout path).
    pub actions_without_prediction: u64,
    /// Predictions that arrived but had already expired when the Actuator ran.
    pub expired_predictions: u64,
    /// Predictions superseded by a newer one before the Actuator consumed
    /// them.
    pub superseded_predictions: u64,
    /// Predictions dropped because the Actuator was halted by its safeguard.
    pub predictions_dropped_while_halted: u64,
    /// Times the Actuator acted because its maximum actuation delay elapsed.
    pub actuation_timeouts: u64,
    /// Actuator safeguard evaluations performed.
    pub performance_assessments: u64,
    /// Times the Actuator safeguard tripped (transitions into the halted
    /// state).
    pub safeguard_triggers: u64,
    /// Calls to `mitigate`.
    pub mitigations: u64,
    /// Calls to `clean_up`.
    pub cleanups: u64,
    /// Total simulated/wall time spent with the Actuator halted by its
    /// safeguard.
    pub halted_time: SimDuration,
}

impl ModelLoopStats {
    /// Adds another loop's counters onto this one, field by field (used by
    /// fleet-level aggregation). The exhaustive destructuring (no `..`)
    /// makes adding a field without accumulating it a compile error.
    pub fn accumulate(&mut self, other: &ModelLoopStats) {
        let ModelLoopStats {
            samples_committed,
            samples_discarded,
            collect_errors,
            epochs_completed,
            epochs_short_circuited,
            model_predictions,
            default_predictions,
            intercepted_predictions,
            model_assessments,
            model_assessment_failures,
        } = other;
        self.samples_committed += samples_committed;
        self.samples_discarded += samples_discarded;
        self.collect_errors += collect_errors;
        self.epochs_completed += epochs_completed;
        self.epochs_short_circuited += epochs_short_circuited;
        self.model_predictions += model_predictions;
        self.default_predictions += default_predictions;
        self.intercepted_predictions += intercepted_predictions;
        self.model_assessments += model_assessments;
        self.model_assessment_failures += model_assessment_failures;
    }
}

impl ActuatorLoopStats {
    /// Adds another loop's counters onto this one, field by field (used by
    /// fleet-level aggregation). The exhaustive destructuring (no `..`)
    /// makes adding a field without accumulating it a compile error.
    pub fn accumulate(&mut self, other: &ActuatorLoopStats) {
        let ActuatorLoopStats {
            actions_with_model_prediction,
            actions_with_default_prediction,
            actions_without_prediction,
            expired_predictions,
            superseded_predictions,
            predictions_dropped_while_halted,
            actuation_timeouts,
            performance_assessments,
            safeguard_triggers,
            mitigations,
            cleanups,
            halted_time,
        } = other;
        self.actions_with_model_prediction += actions_with_model_prediction;
        self.actions_with_default_prediction += actions_with_default_prediction;
        self.actions_without_prediction += actions_without_prediction;
        self.expired_predictions += expired_predictions;
        self.superseded_predictions += superseded_predictions;
        self.predictions_dropped_while_halted += predictions_dropped_while_halted;
        self.actuation_timeouts += actuation_timeouts;
        self.performance_assessments += performance_assessments;
        self.safeguard_triggers += safeguard_triggers;
        self.mitigations += mitigations;
        self.cleanups += cleanups;
        self.halted_time += *halted_time;
    }
}

/// Combined statistics for one agent run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentStats {
    /// Model-loop counters.
    pub model: ModelLoopStats,
    /// Actuator-loop counters.
    pub actuator: ActuatorLoopStats,
}

impl AgentStats {
    /// Adds another agent's counters onto this one, field by field (used by
    /// fleet-level aggregation). The exhaustive destructuring (no `..`)
    /// makes adding a field without accumulating it a compile error.
    pub fn accumulate(&mut self, other: &AgentStats) {
        let AgentStats { model, actuator } = other;
        self.model.accumulate(model);
        self.actuator.accumulate(actuator);
    }

    /// Total predictions forwarded to the Actuator loop.
    pub fn predictions_forwarded(&self) -> u64 {
        self.model.model_predictions + self.model.default_predictions
    }

    /// Total actions taken by the Actuator.
    pub fn actions_taken(&self) -> u64 {
        self.actuator.actions_with_model_prediction
            + self.actuator.actions_with_default_prediction
            + self.actuator.actions_without_prediction
    }

    /// Fraction of actions that were driven by a model prediction, in `[0,1]`.
    /// Returns 0 when no actions were taken.
    pub fn model_driven_fraction(&self) -> f64 {
        let total = self.actions_taken();
        if total == 0 {
            0.0
        } else {
            self.actuator.actions_with_model_prediction as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_totals() {
        let mut s = AgentStats::default();
        s.model.model_predictions = 8;
        s.model.default_predictions = 2;
        s.actuator.actions_with_model_prediction = 6;
        s.actuator.actions_with_default_prediction = 2;
        s.actuator.actions_without_prediction = 2;
        assert_eq!(s.predictions_forwarded(), 10);
        assert_eq!(s.actions_taken(), 10);
        assert!((s.model_driven_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn model_fraction_of_empty_stats_is_zero() {
        assert_eq!(AgentStats::default().model_driven_fraction(), 0.0);
    }
}
