//! The production node-agent characterization from paper §2.
//!
//! Table 1 categorizes the 77 on-node agents running in Azure into six
//! classes and marks which can benefit from on-node learning; Table 2 lists
//! example learning-based resource-control agents from the literature. This
//! module encodes both tables as structured data so the `table1` / `table2`
//! bench targets can regenerate them and so tests can check the paper's
//! summary statistics (77 agents, 35% benefiting).

use serde::{Deserialize, Serialize};

/// One of the six classes of production node agents (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgentClass {
    /// Configure node hardware, software, or data.
    Configuration,
    /// Long-running node services (VM lifecycle, security scanning, ...).
    Services,
    /// Monitoring and logging of the node's state.
    MonitoringLogging,
    /// Watch for problems to alert on or auto-mitigate.
    Watchdogs,
    /// Dynamically manage resource assignments (CPU, memory, power).
    ResourceControl,
    /// Allow operators access to nodes for incident handling.
    Access,
}

impl AgentClass {
    /// All classes, in the order Table 1 lists them.
    pub const ALL: [AgentClass; 6] = [
        AgentClass::Configuration,
        AgentClass::Services,
        AgentClass::MonitoringLogging,
        AgentClass::Watchdogs,
        AgentClass::ResourceControl,
        AgentClass::Access,
    ];

    /// Human-readable class name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            AgentClass::Configuration => "Configuration",
            AgentClass::Services => "Services",
            AgentClass::MonitoringLogging => "Monitoring/logging",
            AgentClass::Watchdogs => "Watchdogs",
            AgentClass::ResourceControl => "Resource control",
            AgentClass::Access => "Access",
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaxonomyRow {
    /// Agent class.
    pub class: AgentClass,
    /// Number of agents of this class running on Azure nodes.
    pub count: u32,
    /// Short description of what the class does.
    pub description: &'static str,
    /// Example agents.
    pub examples: &'static str,
    /// Whether the paper argues this class can benefit from on-node learning.
    pub benefits_from_learning: bool,
}

/// Returns Table 1: the taxonomy of production agents.
pub fn table1() -> Vec<TaxonomyRow> {
    vec![
        TaxonomyRow {
            class: AgentClass::Configuration,
            count: 25,
            description: "Configure node HW, SW, or data",
            examples: "Credentials, firewalls, OS updates",
            benefits_from_learning: false,
        },
        TaxonomyRow {
            class: AgentClass::Services,
            count: 23,
            description: "Long-running node services",
            examples: "VM creation, live migration",
            benefits_from_learning: false,
        },
        TaxonomyRow {
            class: AgentClass::MonitoringLogging,
            count: 18,
            description: "Monitoring and logging node's state",
            examples: "CPU and OS counters, network telemetry",
            benefits_from_learning: true,
        },
        TaxonomyRow {
            class: AgentClass::Watchdogs,
            count: 7,
            description: "Watch for problems to alert/automitigate",
            examples: "Disk space, intrusions, HW errors",
            benefits_from_learning: true,
        },
        TaxonomyRow {
            class: AgentClass::ResourceControl,
            count: 2,
            description: "Manage resource assignments",
            examples: "Power capping, memory management",
            benefits_from_learning: true,
        },
        TaxonomyRow {
            class: AgentClass::Access,
            count: 2,
            description: "Allow operators access to nodes",
            examples: "Filesystem access",
            benefits_from_learning: false,
        },
    ]
}

/// Total number of production agents in Table 1 (77 in the paper).
pub fn total_agents() -> u32 {
    table1().iter().map(|r| r.count).sum()
}

/// Fraction of agents whose class can benefit from on-node learning
/// (the paper reports 35%).
pub fn learning_benefit_fraction() -> f64 {
    let total = total_agents() as f64;
    let benefit: u32 = table1().iter().filter(|r| r.benefits_from_learning).map(|r| r.count).sum();
    benefit as f64 / total
}

/// One row of Table 2: an example on-node learning resource-control agent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LearningAgentExample {
    /// Agent name (and source).
    pub agent: &'static str,
    /// What it optimizes.
    pub goal: &'static str,
    /// The control action it takes.
    pub action: &'static str,
    /// How often it acts.
    pub frequency: &'static str,
    /// Telemetry it learns from.
    pub inputs: &'static str,
    /// The class of ML model it uses.
    pub model: &'static str,
}

/// Returns Table 2: examples of on-node learning resource-control agents.
pub fn table2() -> Vec<LearningAgentExample> {
    vec![
        LearningAgentExample {
            agent: "SmartHarvest [37]",
            goal: "Harvest idle cores",
            action: "Core assignment",
            frequency: "25 ms",
            inputs: "CPU usage",
            model: "Cost-sensitive classification",
        },
        LearningAgentExample {
            agent: "Hipster [27]",
            goal: "Reduce power draw",
            action: "Core assignment & frequency",
            frequency: "1 s",
            inputs: "App QoS and load",
            model: "Reinforcement learning",
        },
        LearningAgentExample {
            agent: "LinnOS [16]",
            goal: "Improve IO perf",
            action: "IO request routing/rejection",
            frequency: "Every IO",
            inputs: "Latencies, queue sizes",
            model: "Binary classification",
        },
        LearningAgentExample {
            agent: "ESP [25]",
            goal: "Reduce interference",
            action: "App scheduling",
            frequency: "Every app",
            inputs: "App run time, perf counters",
            model: "Regularized regression",
        },
        LearningAgentExample {
            agent: "Overclocking (this paper, §5)",
            goal: "Improve VM perf",
            action: "CPU overclocking",
            frequency: "1 s",
            inputs: "Instructions per second",
            model: "Reinforcement learning",
        },
        LearningAgentExample {
            agent: "Disaggregation (this paper, §5)",
            goal: "Migrate pages",
            action: "Warm/cold page ID",
            frequency: "100 ms",
            inputs: "Page table scans",
            model: "Multi-armed bandits",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_totals() {
        assert_eq!(table1().len(), 6);
        assert_eq!(total_agents(), 77);
        let f = learning_benefit_fraction();
        assert!((f - 0.35).abs() < 0.01, "paper reports ~35%, got {f}");
    }

    #[test]
    fn benefiting_classes_are_the_three_the_paper_names() {
        let benefiting: Vec<_> =
            table1().into_iter().filter(|r| r.benefits_from_learning).map(|r| r.class).collect();
        assert_eq!(
            benefiting,
            vec![AgentClass::MonitoringLogging, AgentClass::Watchdogs, AgentClass::ResourceControl]
        );
    }

    #[test]
    fn table2_lists_six_examples_including_papers_agents() {
        let rows = table2();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|r| r.agent.contains("SmartHarvest")));
        assert!(rows.iter().any(|r| r.model.contains("Multi-armed bandits")));
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(AgentClass::MonitoringLogging.name(), "Monitoring/logging");
        assert_eq!(AgentClass::ALL.len(), 6);
    }
}
