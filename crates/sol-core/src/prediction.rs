//! Predictions flowing from the Model control loop to the Actuator control
//! loop.
//!
//! The output of a successful learning epoch is a [`Prediction`] carrying the
//! predicted value and an explicit expiration time (paper §4.1). Expired
//! predictions are treated as absent by the Actuator so stale model output can
//! never drive an action.

use serde::{Deserialize, Serialize};

use crate::time::Timestamp;

/// Where a prediction came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictionSource {
    /// Produced by the agent's learned model.
    Model,
    /// Produced by the developer-supplied safe fallback
    /// ([`Model::default_predict`](crate::model::Model::default_predict)),
    /// either because the epoch short-circuited or because the model safeguard
    /// intercepted the model's output.
    Default,
}

impl PredictionSource {
    /// Returns `true` for model-produced predictions.
    pub fn is_model(self) -> bool {
        matches!(self, PredictionSource::Model)
    }
}

/// A prediction with an explicit expiration time.
///
/// # Examples
///
/// ```
/// use sol_core::prediction::{Prediction, PredictionSource};
/// use sol_core::time::{SimDuration, Timestamp};
///
/// let now = Timestamp::from_secs(10);
/// let p = Prediction::model(3usize, now, now + SimDuration::from_secs(1));
/// assert!(!p.is_expired(now));
/// assert!(p.is_expired(now + SimDuration::from_secs(2)));
/// assert_eq!(p.source(), PredictionSource::Model);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction<P> {
    value: P,
    produced_at: Timestamp,
    expires_at: Timestamp,
    source: PredictionSource,
}

impl<P> Prediction<P> {
    /// Creates a model-produced prediction.
    ///
    /// # Panics
    ///
    /// Panics if `expires_at` is earlier than `produced_at`.
    pub fn model(value: P, produced_at: Timestamp, expires_at: Timestamp) -> Self {
        Self::new(value, produced_at, expires_at, PredictionSource::Model)
    }

    /// Creates a default (fallback) prediction. Even default predictions have
    /// an expiration time: they are still reliant on fresh telemetry and can
    /// become stale (paper §4.1).
    ///
    /// # Panics
    ///
    /// Panics if `expires_at` is earlier than `produced_at`.
    pub fn fallback(value: P, produced_at: Timestamp, expires_at: Timestamp) -> Self {
        Self::new(value, produced_at, expires_at, PredictionSource::Default)
    }

    fn new(
        value: P,
        produced_at: Timestamp,
        expires_at: Timestamp,
        source: PredictionSource,
    ) -> Self {
        assert!(
            expires_at >= produced_at,
            "prediction expiration must not precede production time"
        );
        Prediction { value, produced_at, expires_at, source }
    }

    /// The predicted value.
    pub fn value(&self) -> &P {
        &self.value
    }

    /// Consumes the prediction and returns its value.
    pub fn into_value(self) -> P {
        self.value
    }

    /// When the prediction was produced.
    pub fn produced_at(&self) -> Timestamp {
        self.produced_at
    }

    /// When the prediction stops being valid.
    pub fn expires_at(&self) -> Timestamp {
        self.expires_at
    }

    /// The provenance of this prediction.
    pub fn source(&self) -> PredictionSource {
        self.source
    }

    /// Returns `true` if the prediction is no longer valid at `now`.
    pub fn is_expired(&self, now: Timestamp) -> bool {
        now > self.expires_at
    }

    /// Re-labels the prediction as a default prediction, preserving value and
    /// timing. Used by the runtime when the model safeguard intercepts model
    /// output but the developer asked for the same value to be forwarded.
    pub fn into_fallback(mut self) -> Self {
        self.source = PredictionSource::Default;
        self
    }

    /// Maps the predicted value, preserving timing and provenance.
    pub fn map<Q>(self, f: impl FnOnce(P) -> Q) -> Prediction<Q> {
        Prediction {
            value: f(self.value),
            produced_at: self.produced_at,
            expires_at: self.expires_at,
            source: self.source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn expiration_is_inclusive_of_deadline() {
        let now = Timestamp::from_secs(1);
        let p = Prediction::model(1u32, now, now + SimDuration::from_secs(1));
        assert!(!p.is_expired(now + SimDuration::from_secs(1)));
        assert!(p.is_expired(now + SimDuration::from_nanos(1_000_000_001)));
    }

    #[test]
    #[should_panic(expected = "expiration")]
    fn rejects_expiry_before_production() {
        let _ = Prediction::model(1u32, Timestamp::from_secs(2), Timestamp::from_secs(1));
    }

    #[test]
    fn fallback_conversion_keeps_value_and_times() {
        let now = Timestamp::from_secs(3);
        let p = Prediction::model(7i64, now, now + SimDuration::from_secs(5));
        let f = p.clone().into_fallback();
        assert_eq!(f.value(), p.value());
        assert_eq!(f.expires_at(), p.expires_at());
        assert_eq!(f.source(), PredictionSource::Default);
    }

    #[test]
    fn map_preserves_metadata() {
        let now = Timestamp::from_secs(3);
        let p = Prediction::fallback(2u32, now, now + SimDuration::from_secs(1));
        let q = p.map(|v| v as f64 * 1.5);
        assert_eq!(*q.value(), 3.0);
        assert_eq!(q.source(), PredictionSource::Default);
        assert_eq!(q.produced_at(), now);
    }
}
