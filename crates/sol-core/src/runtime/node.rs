//! The multi-agent node runtime: an event-queue scheduler hosting *N*
//! co-located agents on one shared environment.
//!
//! The paper's central claim (§4.2, §6) is that multiple learning agents —
//! CPU harvesting, overclocking, tiered memory — run safely *on the same
//! node*. [`NodeRuntime`] makes that scenario representable: it drives any
//! number of heterogeneous agents, each erased behind the object-safe
//! [`AgentDriver`] trait, over a single shared [`Environment`] under one
//! virtual clock.
//!
//! # Design
//!
//! The runtime is a classic discrete-event simulator. A two-level bucketed
//! [`TimeWheel`] holds three kinds of first-class events, popped in exact
//! (time, insertion sequence) order:
//!
//! * **Agent wakes** — the next time an agent's Model or Actuator loop needs
//!   to run. Wake events are invalidated lazily: each agent slot carries a
//!   generation counter, and a popped wake whose generation no longer matches
//!   is discarded, so wakes that move (a delivered prediction, an injected
//!   delay) never require searching the queue.
//! * **Interventions** — scheduled disturbances targeted at a specific agent
//!   ([`NodeRuntime::delay_model_at`], [`NodeRuntime::delay_actuator_at`]) or
//!   at the environment ([`NodeRuntime::mutate_environment_at`]), mirroring
//!   the failure-injection methodology of paper §6.
//! * **Environment-step boundaries** — the environment is advanced at least
//!   every `max_environment_step` of virtual time so workload dynamics are
//!   never skipped over entirely between sparse agent wakes.
//!
//! Each tick peeks the earliest valid event, advances the clock and the
//! environment once to that time, drains the whole batch of events due at
//! that time as one slice, applies every intervention that is due (in
//! schedule order), then steps every due agent in registration order. The
//! environment is only advanced when an event or a step boundary is actually
//! due — there is no per-tick scan over agents or sorted intervention lists.
//!
//! [`TimeWheel`]: super::wheel::TimeWheel
//!
//! [`SimRuntime`](crate::runtime::sim::SimRuntime) is a thin single-agent
//! wrapper over this runtime, and reproduces the historical single-agent
//! results exactly.

use std::any::Any;

use sol_ml::exchange::{ExchangeError, LearnedState};

use crate::actuator::Actuator;
use crate::error::{ReportError, RuntimeError};
use crate::loops::{ActuatorLoop, ModelLoop};
use crate::model::Model;
use crate::runtime::wheel::TimeWheel;
use crate::runtime::Environment;
use crate::schedule::Schedule;
use crate::stats::AgentStats;
use crate::time::{Clock, SimDuration, Timestamp, VirtualClock};

/// Upper clamp applied to the default per-agent environment step.
const MAX_DEFAULT_ENV_STEP: SimDuration = SimDuration::from_secs(1);
/// Lower clamp applied to the default per-agent environment step.
const MIN_DEFAULT_ENV_STEP: SimDuration = SimDuration::from_millis(1);

/// Identifier of an agent registered with a [`NodeRuntime`].
///
/// Ids are dense indices assigned in registration order; they stay valid for
/// the lifetime of the runtime and index into the reports it produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(usize);

impl AgentId {
    /// The agent's position in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for AgentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "agent#{}", self.0)
    }
}

impl From<usize> for AgentId {
    /// Builds the id of the agent at registration position `index`. The
    /// mapping is the inverse of [`AgentId::index`]; an out-of-range position
    /// surfaces as the usual unknown-agent error at the point of use.
    fn from(index: usize) -> Self {
        AgentId(index)
    }
}

/// An arbitrary environment mutation applied at a scheduled time.
type MutateFn<E> = Box<dyn FnMut(&mut E, Timestamp) + Send>;

/// An agent hosted by a [`NodeRuntime`], with its `Model`/`Actuator` generics
/// erased so heterogeneous agents can share one node.
///
/// [`LoopAgent`] wraps a [`ModelLoop`]/[`ActuatorLoop`] pair behind this
/// trait; custom drivers (replay agents, adversarial load generators) can
/// implement it directly. Environments and drivers must be `'static` so the
/// runtime can recover concrete agent types after a run via [`Any`], and
/// `Send` so a fleet coordinator can touch any node's runtime directly at an
/// epoch barrier (drivers are plain data — counters, learned state, RNGs —
/// so the bound costs implementations nothing).
///
/// # Contract
///
/// * [`next_wake`](Self::next_wake) returns the *raw* earliest time either
///   loop needs to run; the runtime clamps it to the current virtual time.
/// * [`step`](Self::step) is invoked whenever the runtime reaches a tick at or
///   after `next_wake()`; the driver must check which of its loops are due and
///   must eventually advance its wake time, or the simulation cannot progress.
pub trait AgentDriver<E: Environment>: Any + Send {
    /// The earliest virtual time at which this agent needs to run again.
    fn next_wake(&self) -> Timestamp;
    /// Runs the agent's due loops at virtual time `now` against the shared
    /// environment.
    fn step(&mut self, now: Timestamp, env: &mut E);
    /// Injects a Model-loop scheduling delay lasting until `until`.
    fn delay_model(&mut self, until: Timestamp);
    /// Injects an Actuator-loop scheduling delay lasting until `until`.
    fn delay_actuator(&mut self, until: Timestamp);
    /// Runtime counters accumulated so far.
    fn stats(&self) -> AgentStats;
    /// Invokes the agent's idempotent clean-up routine.
    fn clean_up(&mut self, now: Timestamp);
    /// Learning-plane hook: exports the agent's learned parameters for
    /// fleet-wide exchange, or `None` (the default) if the agent does not
    /// participate. [`LoopAgent`] forwards to
    /// [`Model::export_learned`].
    fn export_learned(&self) -> Option<LearnedState> {
        None
    }
    /// Learning-plane hook: imports a (blended) fleet aggregate into the
    /// agent's learner. The fleet coordinator only imports into agents whose
    /// export matched the aggregate, so the default
    /// ([`ExchangeError::Unsupported`]) is never reached under the protocol.
    ///
    /// # Errors
    ///
    /// Returns the learner's [`ExchangeError`] when `state` is incompatible.
    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError> {
        let _ = state;
        Err(ExchangeError::Unsupported)
    }
    /// Upcast for typed read access (see [`AgentReport::inner`]).
    fn as_any(&self) -> &dyn Any;
    /// Upcast for typed mutable access.
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Upcast for typed recovery of the concrete driver after a run.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// The standard [`AgentDriver`]: a [`ModelLoop`]/[`ActuatorLoop`] pair plus
/// the Actuator-delay bookkeeping the failure-injection experiments need.
pub struct LoopAgent<M: Model, A: Actuator<Pred = M::Pred>> {
    model_loop: ModelLoop<M>,
    actuator_loop: ActuatorLoop<A>,
    /// The Actuator loop does not run before this time (scheduling-delay
    /// injection for the blocking-vs-non-blocking experiments).
    actuator_delayed_until: Option<Timestamp>,
}

impl<M, A> LoopAgent<M, A>
where
    M: Model,
    A: Actuator<Pred = M::Pred>,
{
    /// Creates the agent's control loops, both starting at `start`.
    pub fn new(model: M, actuator: A, schedule: Schedule, start: Timestamp) -> Self {
        LoopAgent {
            model_loop: ModelLoop::new(model, schedule.clone(), start),
            actuator_loop: ActuatorLoop::new(actuator, schedule, start),
            actuator_delayed_until: None,
        }
    }

    /// Read access to the model.
    pub fn model(&self) -> &M {
        self.model_loop.model()
    }

    /// Read access to the actuator.
    pub fn actuator(&self) -> &A {
        self.actuator_loop.actuator()
    }

    /// Combined runtime counters for both loops.
    pub fn stats(&self) -> AgentStats {
        AgentStats {
            model: self.model_loop.stats().clone(),
            actuator: self.actuator_loop.stats().clone(),
        }
    }

    /// Consumes the agent, returning the model, the actuator, and the final
    /// counters.
    pub fn into_parts(self) -> (M, A, AgentStats) {
        let stats = self.stats();
        let (model, _) = self.model_loop.into_parts();
        let (actuator, _) = self.actuator_loop.into_parts();
        (model, actuator, stats)
    }
}

impl<E, M, A> AgentDriver<E> for LoopAgent<M, A>
where
    E: Environment,
    M: Model + Send + 'static,
    A: Actuator<Pred = M::Pred> + Send + 'static,
{
    fn next_wake(&self) -> Timestamp {
        let model = self.model_loop.next_wake();
        let mut actuator = self.actuator_loop.next_wake();
        if let Some(t) = self.actuator_delayed_until {
            actuator = actuator.max(t);
        }
        model.min(actuator)
    }

    fn step(&mut self, now: Timestamp, _env: &mut E) {
        if self.model_loop.next_wake() <= now {
            if let Some(prediction) = self.model_loop.step(now) {
                self.actuator_loop.deliver(prediction);
            }
        }
        let actuator_delayed = self.actuator_delayed_until.map(|t| now < t).unwrap_or(false);
        if !actuator_delayed && self.actuator_loop.next_wake() <= now {
            self.actuator_loop.step(now);
        }
        if let Some(t) = self.actuator_delayed_until {
            if now >= t {
                self.actuator_delayed_until = None;
            }
        }
    }

    fn delay_model(&mut self, until: Timestamp) {
        self.model_loop.delay_until(until);
    }

    fn delay_actuator(&mut self, until: Timestamp) {
        self.actuator_delayed_until = Some(until);
    }

    fn stats(&self) -> AgentStats {
        LoopAgent::stats(self)
    }

    fn clean_up(&mut self, now: Timestamp) {
        self.actuator_loop.clean_up(now);
    }

    fn export_learned(&self) -> Option<LearnedState> {
        self.model_loop.model().export_learned()
    }

    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError> {
        self.model_loop.model_mut().import_learned(state)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// An intervention targeted at one agent or at the shared environment.
enum Intervention<E> {
    /// Delay the agent's Model loop for `duration` starting at the trigger
    /// time (models throttling/starvation of the expensive ML component).
    DelayModel { id: AgentId, duration: SimDuration },
    /// Delay the agent's Actuator loop for `duration` starting at the trigger
    /// time.
    DelayActuator { id: AgentId, duration: SimDuration },
    /// Arbitrary change applied to the environment (e.g. toggle a fault
    /// injector, change a workload phase).
    Mutate(MutateFn<E>),
}

/// What happens at a scheduled point of virtual time.
///
/// Scheduling order is tracked by the [`TimeWheel`] itself (per-bucket
/// insertion counters), not by the payload, so events pop earliest-time
/// first with ties broken by schedule order — same-time interventions apply
/// in the order they were scheduled.
///
/// The `max_environment_step` boundary is *not* an event: it moves on every
/// tick, so keeping it in the queue would mean one stale entry per tick. It
/// lives in [`NodeRuntime::env_step_at`] and is merged into the tick time
/// directly.
enum EventKind<E> {
    /// An agent's next wake. Valid only while the agent slot's generation
    /// matches `gen`; stale wakes are discarded when popped.
    AgentWake { id: AgentId, gen: u64 },
    /// A scheduled disturbance.
    Intervention(Intervention<E>),
}

/// One registered agent plus its wake-scheduling state.
struct AgentSlot<E: Environment + 'static> {
    name: String,
    driver: Box<dyn AgentDriver<E>>,
    /// Generation of the wake event currently in the heap; bumping it
    /// invalidates that event lazily.
    gen: u64,
    /// Time of the currently valid wake event, if one is in the heap.
    scheduled_at: Option<Timestamp>,
}

/// Final state of one agent after a [`NodeRuntime`] run.
pub struct AgentReport<E: Environment + 'static> {
    /// The agent's id.
    pub id: AgentId,
    /// The name the agent was registered under.
    pub name: String,
    /// Final runtime counters.
    pub stats: AgentStats,
    /// The type-erased driver, for post-run inspection.
    pub driver: Box<dyn AgentDriver<E>>,
}

impl<E: Environment + 'static> AgentReport<E> {
    /// Borrowed access to the concrete driver type, if it matches.
    pub fn inner<T: 'static>(&self) -> Option<&T> {
        self.driver.as_any().downcast_ref::<T>()
    }

    /// Recovers the concrete driver (e.g. a [`LoopAgent`]) by value.
    pub fn into_inner<T: 'static>(self) -> Option<T> {
        self.driver.into_any().downcast::<T>().ok().map(|boxed| *boxed)
    }
}

impl<E: Environment + 'static> std::fmt::Debug for AgentReport<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentReport")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Results of a completed multi-agent run.
#[derive(Debug)]
pub struct NodeReport<E: Environment + 'static> {
    /// The shared environment, returned for post-run inspection (metrics
    /// usually live here).
    pub environment: E,
    /// Per-agent outcomes, in registration order.
    pub agents: Vec<AgentReport<E>>,
    /// The virtual time at which the run ended.
    pub ended_at: Timestamp,
}

impl<E: Environment + 'static> NodeReport<E> {
    /// The type-erased report for one agent. Looked up by id, not position,
    /// so it stays correct after [`take_agent`](Self::take_agent) removals.
    ///
    /// This is the untyped escape hatch; prefer the typed
    /// [`agent`](Self::agent) accessor with the
    /// [`AgentHandle`](crate::runtime::builder::AgentHandle) the
    /// [`ScenarioBuilder`](crate::runtime::builder::ScenarioBuilder) returned.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::UnknownAgent`] if `id` was not produced by the
    /// runtime that built this report or its report was already taken.
    pub fn agent_report(&self, id: impl Into<AgentId>) -> Result<&AgentReport<E>, ReportError> {
        let id = id.into();
        self.agents
            .iter()
            .find(|a| a.id == id)
            .ok_or_else(|| ReportError::UnknownAgent(id.to_string()))
    }

    /// Removes and returns the type-erased report for one agent.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::UnknownAgent`] if `id` was not produced by the
    /// runtime that built this report or its report was already taken.
    pub fn take_agent(&mut self, id: impl Into<AgentId>) -> Result<AgentReport<E>, ReportError> {
        let id = id.into();
        let pos = self
            .agents
            .iter()
            .position(|a| a.id == id)
            .ok_or_else(|| ReportError::UnknownAgent(id.to_string()))?;
        Ok(self.agents.remove(pos))
    }
}

/// Deterministic event-queue driver for an agent population sharing one
/// environment.
///
/// # Examples
///
/// ```
/// use sol_core::prelude::*;
/// # use sol_core::error::DataError;
/// # struct M;
/// # impl Model for M {
/// #     type Data = f64;
/// #     type Pred = f64;
/// #     fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> { Ok(1.0) }
/// #     fn validate_data(&self, d: &f64) -> bool { d.is_finite() }
/// #     fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
/// #     fn update_model(&mut self, _now: Timestamp) {}
/// #     fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
/// #         Some(Prediction::model(2.0, now, now + SimDuration::from_secs(1)))
/// #     }
/// #     fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
/// #         Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
/// #     }
/// #     fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment { ModelAssessment::Healthy }
/// # }
/// # #[derive(Default)]
/// # struct A { count: u64 }
/// # impl Actuator for A {
/// #     type Pred = f64;
/// #     fn take_action(&mut self, _now: Timestamp, _pred: Option<&Prediction<f64>>) {
/// #         self.count += 1;
/// #     }
/// #     fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
/// #         ActuatorAssessment::Acceptable
/// #     }
/// #     fn mitigate(&mut self, _now: Timestamp) {}
/// #     fn clean_up(&mut self, _now: Timestamp) {}
/// # }
/// let schedule = Schedule::builder()
///     .data_per_epoch(2)
///     .data_collect_interval(SimDuration::from_millis(100))
///     .max_epoch_time(SimDuration::from_secs(1))
///     .build()?;
/// let mut builder = NodeRuntime::builder(NullEnvironment);
/// let first = builder.agent("first", M, A::default(), schedule.clone());
/// let second = builder.agent("second", M, A::default(), schedule);
/// let report = builder.build().run_for(SimDuration::from_secs(5))?;
/// assert!(report.agent(first).stats().model.epochs_completed > 0);
/// assert_eq!(report.agent(second).name(), "second");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct NodeRuntime<E: Environment + 'static> {
    clock: VirtualClock,
    environment: E,
    agents: Vec<AgentSlot<E>>,
    events: TimeWheel<EventKind<E>>,
    /// Scratch buffer the tick loop drains due events into; reused across
    /// ticks and across [`run_until`](Self::run_until) segments.
    due: Vec<EventKind<E>>,
    /// Largest span of virtual time the environment may be advanced in one
    /// tick even when no agent event is due.
    max_env_step: SimDuration,
    /// Whether `max_env_step` was set explicitly; an explicit value is never
    /// shrunk by later agent registrations.
    env_step_overridden: bool,
    /// The next environment-step boundary. Kept out of the event heap: the
    /// boundary moves on every tick, and re-pushing it would leave one stale
    /// heap entry per tick on the hot path.
    env_step_at: Timestamp,
    cleanup_on_finish: bool,
    /// Whether the first [`run_until`](Self::run_until) segment already
    /// scheduled the initial agent wakes and environment-step boundary.
    started: bool,
    /// Agents touched by the current tick's events; reused across ticks and
    /// across [`run_until`](Self::run_until) segments.
    touched: Vec<usize>,
}

impl<E: Environment + 'static> NodeRuntime<E> {
    /// Creates an empty runtime for the environment, starting at virtual time
    /// zero.
    pub fn new(environment: E) -> Self {
        NodeRuntime {
            clock: VirtualClock::new(),
            environment,
            agents: Vec::new(),
            events: TimeWheel::new(),
            due: Vec::new(),
            max_env_step: MAX_DEFAULT_ENV_STEP,
            env_step_overridden: false,
            env_step_at: Timestamp::MAX,
            cleanup_on_finish: false,
            started: false,
            touched: Vec::new(),
        }
    }

    /// Starts a [`ScenarioBuilder`](crate::runtime::builder::ScenarioBuilder)
    /// assembling agents on `environment`: the typed, composable front door to
    /// this runtime. See the [`builder`](crate::runtime::builder) module docs.
    pub fn builder(environment: E) -> crate::runtime::builder::ScenarioBuilder<E> {
        crate::runtime::builder::ScenarioBuilder::new(NodeRuntime::new(environment))
    }

    /// Registers a `Model`/`Actuator` pair under `name`, driven by `schedule`.
    ///
    /// Unless overridden via
    /// [`max_environment_step`](Self::max_environment_step), the environment
    /// step shrinks to the smallest registered agent's data collection
    /// interval (clamped to `[1ms, 1s]`), so the environment always evolves
    /// at least as finely as the fastest agent samples it.
    pub fn register_agent<M, A>(
        &mut self,
        name: impl Into<String>,
        model: M,
        actuator: A,
        schedule: Schedule,
    ) -> AgentId
    where
        M: Model + Send + 'static,
        A: Actuator<Pred = M::Pred> + Send + 'static,
    {
        if !self.env_step_overridden {
            let step = schedule
                .data_collect_interval()
                .max(MIN_DEFAULT_ENV_STEP)
                .min(MAX_DEFAULT_ENV_STEP);
            self.max_env_step = self.max_env_step.min(step);
        }
        let start = self.clock.now();
        self.register_driver(name, Box::new(LoopAgent::new(model, actuator, schedule, start)))
    }

    /// Registers a pre-built driver under `name` and returns its id.
    ///
    /// Registration is also valid *between* [`run_until`](Self::run_until)
    /// segments: a late-joining agent is scheduled immediately and starts
    /// participating from the next segment (its loops begin at the current
    /// virtual time, set when the driver was constructed).
    pub fn register_driver(
        &mut self,
        name: impl Into<String>,
        driver: Box<dyn AgentDriver<E>>,
    ) -> AgentId {
        let id = AgentId(self.agents.len());
        self.agents.push(AgentSlot { name: name.into(), driver, gen: 0, scheduled_at: None });
        if self.started {
            // The initial wake pass in `run_until` already ran; schedule the
            // newcomer now so it cannot sit inert for the rest of the run.
            self.schedule_wake(id.0);
        }
        id
    }

    /// Number of registered agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// The name an agent was registered under.
    ///
    /// Ids are positional: only pass ids this runtime returned. An id from a
    /// different runtime resolves to whatever agent sits at that position.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this runtime's agents.
    pub fn agent_name(&self, id: impl Into<AgentId>) -> &str {
        &self.agents[id.into().0].name
    }

    /// Current runtime counters for one agent (see [`agent_name`][Self::agent_name]
    /// for how ids resolve).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this runtime's agents.
    pub fn agent_stats(&self, id: impl Into<AgentId>) -> AgentStats {
        self.agents[id.into().0].driver.stats()
    }

    /// Read access to an agent's driver (downcast with
    /// [`AgentDriver::as_any`] for typed access).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this runtime's agents.
    pub fn driver(&self, id: impl Into<AgentId>) -> &dyn AgentDriver<E> {
        &*self.agents[id.into().0].driver
    }

    /// Mutable access to an agent's driver.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this runtime's agents.
    pub fn driver_mut(&mut self, id: impl Into<AgentId>) -> &mut dyn AgentDriver<E> {
        &mut *self.agents[id.into().0].driver
    }

    /// Requests that every agent's clean-up routine run when the simulation
    /// horizon is reached.
    pub fn cleanup_on_finish(mut self, enable: bool) -> Self {
        self.cleanup_on_finish = enable;
        self
    }

    /// Overrides the maximum environment step (defaults to the smallest
    /// registered data collection interval, clamped to `[1ms, 1s]`). The
    /// explicit value sticks regardless of registration order: agents
    /// registered afterwards no longer shrink it.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if `step` is zero.
    pub fn max_environment_step(mut self, step: SimDuration) -> Result<Self, RuntimeError> {
        if step.is_zero() {
            return Err(RuntimeError::InvalidConfig("environment step must be non-zero".into()));
        }
        self.max_env_step = step;
        self.env_step_overridden = true;
        Ok(self)
    }

    /// Schedules a Model-loop scheduling delay for one agent: starting at
    /// `at`, that agent's Model loop will not run for `duration` (paper §6:
    /// "we inject a 30-second delay in the Model thread").
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this runtime's agents.
    pub fn delay_model_at(&mut self, id: impl Into<AgentId>, at: Timestamp, duration: SimDuration) {
        let id = id.into();
        assert!(id.0 < self.agents.len(), "{id} is not registered");
        self.push_event(at, EventKind::Intervention(Intervention::DelayModel { id, duration }));
    }

    /// Schedules an Actuator-loop scheduling delay for one agent starting at
    /// `at`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this runtime's agents.
    pub fn delay_actuator_at(
        &mut self,
        id: impl Into<AgentId>,
        at: Timestamp,
        duration: SimDuration,
    ) {
        let id = id.into();
        assert!(id.0 < self.agents.len(), "{id} is not registered");
        self.push_event(at, EventKind::Intervention(Intervention::DelayActuator { id, duration }));
    }

    /// Schedules an arbitrary environment mutation at `at` (e.g. enabling a
    /// fault injector or breaking a model's input source).
    pub fn mutate_environment_at(
        &mut self,
        at: Timestamp,
        f: impl FnMut(&mut E, Timestamp) + Send + 'static,
    ) {
        self.push_event(at, EventKind::Intervention(Intervention::Mutate(Box::new(f))));
    }

    /// Attaches a placeable workload unit to the environment. Valid before
    /// the run and between [`run_until`](Self::run_until) segments — this is
    /// the hook the fleet layer uses to apply
    /// [`FleetCommand`](crate::runtime::placement::FleetCommand)s at epoch
    /// boundaries.
    ///
    /// # Errors
    ///
    /// Propagates the environment's
    /// [`PlacementError`](crate::runtime::placement::PlacementError)
    /// (unsupported, capacity exceeded, duplicate id).
    pub fn attach_workload(
        &mut self,
        unit: crate::runtime::placement::WorkloadUnit,
    ) -> Result<(), crate::runtime::placement::PlacementError> {
        self.environment.attach_workload(unit)
    }

    /// Detaches a resident workload unit from the environment and returns it
    /// (so a migration can re-attach it to another node). Valid before the
    /// run and between [`run_until`](Self::run_until) segments.
    ///
    /// # Errors
    ///
    /// Propagates the environment's
    /// [`PlacementError`](crate::runtime::placement::PlacementError)
    /// (unsupported, unknown id).
    pub fn detach_workload(
        &mut self,
        id: crate::runtime::placement::WorkloadId,
    ) -> Result<crate::runtime::placement::WorkloadUnit, crate::runtime::placement::PlacementError>
    {
        self.environment.detach_workload(id)
    }

    /// The environment's current placeable state (capacity + resident units).
    pub fn placement(&self) -> crate::runtime::placement::NodePlacement {
        self.environment.placement()
    }

    /// Name and current counters of every agent, in registration order — the
    /// per-node telemetry the fleet layer snapshots at epoch barriers.
    pub fn agent_snapshots(&self) -> Vec<(String, AgentStats)> {
        self.agents.iter().map(|slot| (slot.name.clone(), slot.driver.stats())).collect()
    }

    /// Learned state of every agent, in registration order — what the node
    /// ships to the fleet's learning plane at epoch barriers. Agents without
    /// an exchangeable learner contribute `None`.
    pub fn learned_snapshots(&self) -> Vec<Option<LearnedState>> {
        self.agents.iter().map(|slot| slot.driver.export_learned()).collect()
    }

    /// Read access to the environment (before or after a run segment).
    pub fn environment(&self) -> &E {
        &self.environment
    }

    /// Mutable access to the environment.
    pub fn environment_mut(&mut self) -> &mut E {
        &mut self.environment
    }

    /// The current virtual time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    fn push_event(&mut self, at: Timestamp, kind: EventKind<E>) {
        self.events.schedule(at, kind);
    }

    /// Whether a queued event still reflects current state.
    fn event_valid(agents: &[AgentSlot<E>], kind: &EventKind<E>) -> bool {
        match *kind {
            EventKind::AgentWake { id, gen } => agents[id.0].gen == gen,
            EventKind::Intervention(_) => true,
        }
    }

    /// (Re)schedules the wake event for one agent if its wake time moved or
    /// its previous event was consumed.
    fn schedule_wake(&mut self, idx: usize) {
        let wake = self.agents[idx].driver.next_wake();
        if self.agents[idx].scheduled_at == Some(wake) {
            return;
        }
        let slot = &mut self.agents[idx];
        slot.gen += 1;
        slot.scheduled_at = Some(wake);
        let gen = slot.gen;
        self.push_event(wake, EventKind::AgentWake { id: AgentId(idx), gen });
    }

    /// Runs all agents for `horizon` of virtual time and returns the final
    /// state of the environment and every agent.
    ///
    /// Equivalent to [`run_until`](Self::run_until) up to `now + horizon`
    /// followed by [`finish`](Self::finish); use those directly to run in
    /// segments (the fleet runtime advances every node epoch by epoch under
    /// one virtual clock).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::EmptyHorizon`] if `horizon` is zero.
    pub fn run_for(mut self, horizon: SimDuration) -> Result<NodeReport<E>, RuntimeError> {
        if horizon.is_zero() {
            return Err(RuntimeError::EmptyHorizon);
        }
        let end = self.clock.now() + horizon;
        self.run_until(end);
        Ok(self.finish())
    }

    /// Advances the simulation to virtual time `end` (a no-op if `end` is not
    /// in the future), leaving the runtime resumable: event queue, pending
    /// interventions, and per-agent state all carry over into the next
    /// segment, so consecutive `run_until` calls behave like one continuous
    /// run whose environment is additionally advanced at each segment
    /// boundary.
    pub fn run_until(&mut self, end: Timestamp) {
        if !self.started {
            for idx in 0..self.agents.len() {
                self.schedule_wake(idx);
            }
            self.env_step_at = self.clock.now() + self.max_env_step;
            self.started = true;
        }

        // One segment is driven by exactly one thread; let the environment
        // acquire whatever per-part exclusivity it wants once for the whole
        // batch instead of once per call (see [`Environment::begin_batch`]).
        self.environment.begin_batch();

        // Agents touched by this tick's events (wakes popped, delays
        // applied); only they are step-checked and rescheduled, so a tick
        // costs O(events at that time), not O(agents). Both scratch buffers
        // are reused across every tick of the run.
        let mut touched = std::mem::take(&mut self.touched);
        let mut due = std::mem::take(&mut self.due);

        loop {
            let now = self.clock.now();
            if now >= end {
                break;
            }

            // Earliest valid event (stale wakes are discarded on the way),
            // capped by the environment-step boundary.
            let agents = &self.agents;
            let next = match self.events.peek(|kind| Self::event_valid(agents, kind)) {
                None => end.min(self.env_step_at),
                Some(at) => at.min(self.env_step_at),
            };
            let next = next.max(now).min(end);

            // Advance time and the environment exactly once per tick.
            self.clock.set(next);
            self.environment.advance_to(next);

            // Drain the whole run of events due at this tick as one batch
            // slice (same timestamp, plus anything the clamp to `end` made
            // due). Interventions apply in schedule order, before any agent
            // steps. A delay intervention moves its target's wake, so the
            // target needs rescheduling even if it was not due.
            self.events.drain_due(next, &mut due);
            for kind in due.drain(..) {
                match kind {
                    EventKind::AgentWake { id, gen } => {
                        let slot = &mut self.agents[id.0];
                        if slot.gen == gen {
                            slot.scheduled_at = None;
                            touched.push(id.0);
                        }
                    }
                    EventKind::Intervention(iv) => match iv {
                        Intervention::DelayModel { id, duration } => {
                            self.agents[id.0].driver.delay_model(next + duration);
                            touched.push(id.0);
                        }
                        Intervention::DelayActuator { id, duration } => {
                            self.agents[id.0].driver.delay_actuator(next + duration);
                            touched.push(id.0);
                        }
                        Intervention::Mutate(mut f) => f(&mut self.environment, next),
                    },
                }
            }

            // Step the touched agents that are due, in registration order,
            // then reschedule their wakes. Untouched agents cannot be due:
            // their wake events (kept exactly at their wake times) did not
            // fire.
            touched.sort_unstable();
            touched.dedup();
            for &idx in &touched {
                let slot = &mut self.agents[idx];
                if slot.driver.next_wake() <= next {
                    slot.driver.step(next, &mut self.environment);
                }
            }
            for &idx in &touched {
                self.schedule_wake(idx);
            }
            touched.clear();

            // The environment advanced to `next`, so the boundary moves with
            // it — a plain store, no heap traffic.
            self.env_step_at = next + self.max_env_step;
        }

        self.environment.end_batch();
        self.touched = touched;
        self.due = due;
    }

    /// Heap bytes retained by this node: the event queue's slab capacity plus
    /// whatever the environment reports (see [`Environment::mem_bytes`]).
    pub fn mem_bytes(&self) -> usize {
        self.events.mem_bytes() + self.environment.mem_bytes()
    }

    /// Consumes the runtime and returns the final state of the environment
    /// and every agent, running clean-up routines first when
    /// [`cleanup_on_finish`](Self::cleanup_on_finish) was requested.
    pub fn finish(mut self) -> NodeReport<E> {
        let ended_at = self.clock.now();
        if self.cleanup_on_finish {
            for slot in &mut self.agents {
                slot.driver.clean_up(ended_at);
            }
        }
        let agents = self
            .agents
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| AgentReport {
                id: AgentId(idx),
                name: slot.name,
                stats: slot.driver.stats(),
                driver: slot.driver,
            })
            .collect();
        NodeReport { environment: self.environment, agents, ended_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::testutil::{schedule, ConstModel, CountActuator, StepEnv};
    use crate::runtime::NullEnvironment;

    #[test]
    fn rejects_empty_horizon() {
        let mut rt = NodeRuntime::new(NullEnvironment);
        rt.register_agent("a", ConstModel { value: 1.0 }, CountActuator::default(), schedule(100));
        assert!(matches!(rt.run_for(SimDuration::ZERO), Err(RuntimeError::EmptyHorizon)));
    }

    #[test]
    fn rejects_zero_environment_step() {
        let rt = NodeRuntime::new(NullEnvironment);
        assert!(matches!(
            rt.max_environment_step(SimDuration::ZERO),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn runs_two_heterogeneous_agents_on_one_environment() {
        let mut rt = NodeRuntime::new(StepEnv::default());
        let fast =
            rt.register_agent("fast", ConstModel { value: 1.0 }, CountActuator::default(), {
                schedule(100)
            });
        let slow =
            rt.register_agent("slow", ConstModel { value: 2.0 }, CountActuator::default(), {
                schedule(200)
            });
        let report = rt.run_for(SimDuration::from_secs(10)).unwrap();
        // 10 s / (5 samples * 100 ms) = 20 epochs for the fast agent, half
        // the rate for the slow one.
        assert_eq!(report.agent_report(fast).unwrap().stats.model.epochs_completed, 20);
        assert_eq!(report.agent_report(slow).unwrap().stats.model.epochs_completed, 10);
        assert_eq!(report.agent_report(fast).unwrap().name, "fast");
        assert_eq!(report.environment.last, Timestamp::from_secs(10));
        assert_eq!(report.ended_at, Timestamp::from_secs(10));
    }

    #[test]
    fn interventions_target_only_the_addressed_agent() {
        let mut rt = NodeRuntime::new(NullEnvironment);
        let delayed =
            rt.register_agent("delayed", ConstModel { value: 1.0 }, CountActuator::default(), {
                schedule(100)
            });
        let healthy =
            rt.register_agent("healthy", ConstModel { value: 1.0 }, CountActuator::default(), {
                schedule(100)
            });
        rt.delay_model_at(delayed, Timestamp::from_secs(2), SimDuration::from_secs(5));
        let report = rt.run_for(SimDuration::from_secs(10)).unwrap();
        assert!(report.agent_report(delayed).unwrap().stats.model.epochs_completed < 20);
        assert_eq!(report.agent_report(healthy).unwrap().stats.model.epochs_completed, 20);
        assert!(report.agent_report(delayed).unwrap().stats.actuator.actuation_timeouts >= 1);
        assert_eq!(report.agent_report(healthy).unwrap().stats.actuator.actuation_timeouts, 0);
    }

    #[test]
    fn actuator_delay_targets_only_the_addressed_agent() {
        let mut rt = NodeRuntime::new(NullEnvironment);
        let delayed =
            rt.register_agent("delayed", ConstModel { value: 1.0 }, CountActuator::default(), {
                schedule(100)
            });
        let healthy =
            rt.register_agent("healthy", ConstModel { value: 1.0 }, CountActuator::default(), {
                schedule(100)
            });
        rt.delay_actuator_at(delayed, Timestamp::from_secs(1), SimDuration::from_secs(4));
        let report = rt.run_for(SimDuration::from_secs(10)).unwrap();
        let delayed_actions =
            report.agent_report(delayed).unwrap().inner::<LoopAgent<ConstModel, CountActuator>>();
        let healthy_actions =
            report.agent_report(healthy).unwrap().inner::<LoopAgent<ConstModel, CountActuator>>();
        assert!(
            delayed_actions.unwrap().actuator().actions
                < healthy_actions.unwrap().actuator().actions
        );
    }

    #[test]
    fn environment_mutation_fires_at_requested_time() {
        let mut rt = NodeRuntime::new(StepEnv::default());
        rt.register_agent("a", ConstModel { value: 1.0 }, CountActuator::default(), schedule(100));
        rt.mutate_environment_at(Timestamp::from_secs(3), |env, now| {
            assert!(now >= Timestamp::from_secs(3));
            env.fault = true;
        });
        let report = rt.run_for(SimDuration::from_secs(5)).unwrap();
        assert!(report.environment.fault);
    }

    #[test]
    fn same_tick_interventions_apply_in_scheduling_order() {
        // Two non-commuting mutations at the same timestamp: the wheel's
        // per-bucket counters must preserve scheduling order exactly as the
        // old global sequence number did ((x * 3) + 10, not (x + 10) * 3).
        let run = |flipped: bool| {
            let mut rt = NodeRuntime::new(StepEnv::default());
            rt.register_agent("a", ConstModel { value: 1.0 }, CountActuator::default(), {
                schedule(100)
            });
            let triple = |env: &mut StepEnv, _| env.advances *= 3;
            let add_ten = |env: &mut StepEnv, _| env.advances += 10;
            let at = Timestamp::from_secs(2);
            if flipped {
                rt.mutate_environment_at(at, add_ten);
                rt.mutate_environment_at(at, triple);
            } else {
                rt.mutate_environment_at(at, triple);
                rt.mutate_environment_at(at, add_ten);
            }
            // The run ends exactly at the intervention tick, so the final
            // counter is the interventions' combined effect on the advance
            // count N the run had accrued by then.
            let report = rt.run_for(SimDuration::from_secs(2)).unwrap();
            report.environment.advances
        };
        // Scheduling order: 3N + 10 vs (N + 10) * 3 = 3N + 30. Applying
        // either pair in reverse would flip the +20 gap's sign.
        assert_eq!(run(true), run(false) + 20);
    }

    #[test]
    fn cleanup_on_finish_cleans_every_agent() {
        let mut rt = NodeRuntime::new(NullEnvironment);
        let a = rt.register_agent("a", ConstModel { value: 1.0 }, CountActuator::default(), {
            schedule(100)
        });
        let b = rt.register_agent("b", ConstModel { value: 1.0 }, CountActuator::default(), {
            schedule(100)
        });
        let report = rt.cleanup_on_finish(true).run_for(SimDuration::from_secs(2)).unwrap();
        for id in [a, b] {
            assert_eq!(report.agent_report(id).unwrap().stats.actuator.cleanups, 1);
            let agent = report
                .agent_report(id)
                .unwrap()
                .inner::<LoopAgent<ConstModel, CountActuator>>()
                .unwrap();
            assert!(agent.actuator().cleaned);
        }
    }

    #[test]
    fn report_recovers_concrete_agents() {
        let mut rt = NodeRuntime::new(NullEnvironment);
        let id = rt.register_agent("a", ConstModel { value: 4.0 }, CountActuator::default(), {
            schedule(100)
        });
        let mut report = rt.run_for(SimDuration::from_secs(2)).unwrap();
        let agent = report
            .take_agent(id)
            .unwrap()
            .into_inner::<LoopAgent<ConstModel, CountActuator>>()
            .expect("registered type");
        let (model, actuator, stats) = agent.into_parts();
        assert_eq!(model.value, 4.0);
        assert!(actuator.actions > 0);
        assert!(stats.model.epochs_completed > 0);
    }

    #[test]
    fn report_lookup_stays_correct_after_take_agent() {
        let mut rt = NodeRuntime::new(NullEnvironment);
        let a = rt.register_agent("a", ConstModel { value: 1.0 }, CountActuator::default(), {
            schedule(100)
        });
        let b = rt.register_agent("b", ConstModel { value: 2.0 }, CountActuator::default(), {
            schedule(100)
        });
        let mut report = rt.run_for(SimDuration::from_secs(2)).unwrap();
        let taken = report.take_agent(a).unwrap();
        assert_eq!(taken.name, "a");
        // Id-based lookup must survive the removal shifting positions.
        assert_eq!(report.agent_report(b).unwrap().name, "b");
        assert_eq!(report.take_agent(b).unwrap().name, "b");
    }

    #[test]
    fn explicit_environment_step_survives_later_registrations() {
        let rt = NodeRuntime::new(StepEnv::default())
            .max_environment_step(SimDuration::from_millis(500))
            .unwrap();
        let mut rt = rt;
        // A fast agent (100 ms collects) must not shrink the explicit 500 ms.
        rt.register_agent("fast", ConstModel { value: 1.0 }, CountActuator::default(), {
            schedule(100)
        });
        assert_eq!(rt.max_env_step, SimDuration::from_millis(500));
    }

    #[test]
    fn identical_multi_agent_runs_are_deterministic() {
        let run = || {
            let mut rt = NodeRuntime::new(StepEnv::default());
            let a = rt.register_agent("a", ConstModel { value: 1.0 }, CountActuator::default(), {
                schedule(100)
            });
            let b = rt.register_agent("b", ConstModel { value: 2.0 }, CountActuator::default(), {
                schedule(70)
            });
            let report = rt.run_for(SimDuration::from_secs(7)).unwrap();
            (
                report.agent_report(a).unwrap().stats.clone(),
                report.agent_report(b).unwrap().stats.clone(),
                report.environment.advances,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn segmented_run_until_matches_run_for() {
        // NullEnvironment: segment boundaries add environment advances but no
        // observable state, so a segmented run must reproduce run_for exactly
        // — including an intervention spanning a segment boundary.
        let build = || {
            let mut rt = NodeRuntime::new(NullEnvironment);
            let a = rt.register_agent("a", ConstModel { value: 1.0 }, CountActuator::default(), {
                schedule(100)
            });
            let b = rt.register_agent("b", ConstModel { value: 2.0 }, CountActuator::default(), {
                schedule(70)
            });
            rt.delay_model_at(a, Timestamp::from_secs(2), SimDuration::from_secs(2));
            (rt, a, b)
        };

        let (rt, a, b) = build();
        let full = rt.run_for(SimDuration::from_secs(7)).unwrap();

        let (mut rt, a2, b2) = build();
        for secs in [1, 3, 6, 7] {
            rt.run_until(Timestamp::from_secs(secs));
        }
        // A non-advancing segment must be a no-op.
        rt.run_until(Timestamp::from_secs(5));
        let segmented = rt.finish();

        assert_eq!(
            format!("{:#?}", full.agent_report(a).unwrap().stats),
            format!("{:#?}", segmented.agent_report(a2).unwrap().stats),
        );
        assert_eq!(
            format!("{:#?}", full.agent_report(b).unwrap().stats),
            format!("{:#?}", segmented.agent_report(b2).unwrap().stats),
        );
        assert_eq!(full.ended_at, segmented.ended_at);
    }

    #[test]
    fn agents_registered_between_segments_participate() {
        let mut rt = NodeRuntime::new(NullEnvironment);
        let early = rt.register_agent(
            "early",
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(100),
        );
        rt.run_until(Timestamp::from_secs(2));
        // A late joiner must be scheduled immediately, not sit inert.
        let late =
            rt.register_agent("late", ConstModel { value: 2.0 }, CountActuator::default(), {
                schedule(100)
            });
        rt.run_until(Timestamp::from_secs(4));
        let report = rt.finish();
        assert_eq!(report.agent_report(early).unwrap().stats.model.epochs_completed, 8);
        // The late agent's loops started at t=2s, so it completes the
        // remaining two seconds' worth of epochs.
        assert_eq!(report.agent_report(late).unwrap().stats.model.epochs_completed, 4);
    }

    #[test]
    fn finish_without_running_reports_zeroed_agents() {
        let mut rt = NodeRuntime::new(NullEnvironment);
        let a = rt.register_agent("a", ConstModel { value: 1.0 }, CountActuator::default(), {
            schedule(100)
        });
        let report = rt.finish();
        assert_eq!(report.ended_at, Timestamp::ZERO);
        assert_eq!(report.agent_report(a).unwrap().stats.model.epochs_completed, 0);
    }

    #[test]
    fn environment_advances_at_most_one_step_apart() {
        /// Environment asserting consecutive advances are close together.
        #[derive(Debug, Default)]
        struct BoundedEnv {
            last: Timestamp,
            max_gap: SimDuration,
        }
        impl Environment for BoundedEnv {
            fn advance_to(&mut self, now: Timestamp) {
                self.max_gap = self.max_gap.max(now.duration_since(self.last));
                self.last = now;
            }
        }
        let mut rt = NodeRuntime::new(BoundedEnv::default());
        // One very sparse agent: collects every 900 ms.
        rt.register_agent("sparse", ConstModel { value: 1.0 }, CountActuator::default(), {
            schedule(900)
        });
        let rt = rt.max_environment_step(SimDuration::from_millis(250)).unwrap();
        let report = rt.run_for(SimDuration::from_secs(5)).unwrap();
        assert!(
            report.environment.max_gap <= SimDuration::from_millis(250),
            "gap {} exceeds the configured step",
            report.environment.max_gap
        );
    }
}
