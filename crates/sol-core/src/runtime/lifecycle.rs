//! Node lifecycle: crash, join, and drain as first-class fleet events.
//!
//! SOL's deployment story is a fleet where servers fail, reimage, and rejoin
//! constantly — controllers that never face a node disappearing are not
//! facing the one disturbance every production platform guarantees. This
//! module makes availability churn a typed, deterministic input to a fleet
//! run:
//!
//! * a [`NodeRegistry`] keeps one versioned [`NodeRecord`] per node slot with
//!   the state machine `Joining → Active → Draining → Drained | Crashed`;
//!   illegal transitions are loud [`LifecycleError`]s, never silent repairs;
//! * a [`LifecycleEvent`] (`Crash`, `Join`, `Drain`) can be emitted by any
//!   [`FleetController`](crate::runtime::placement::FleetController) in its
//!   [`PlacementPlan`](crate::runtime::placement::PlacementPlan), exactly
//!   like a placement command; and
//! * a seeded [`FaultPlan`] injects lifecycle events at epoch boundaries
//!   independently of the controller — the availability analogue of an
//!   [`ArrivalTrace`](crate::runtime::placement::ArrivalTrace), applied by
//!   [`FleetRuntime::run_with_faults`](crate::runtime::fleet::FleetRuntime::run_with_faults).
//!
//! The [`FleetRuntime`](crate::runtime::fleet::FleetRuntime) applies the
//! events inside its deterministic barrier protocol: a crashed node's
//! resident [`WorkloadUnit`](crate::runtime::placement::WorkloadUnit)s are
//! surfaced as displaced in the next
//! [`FleetView`](crate::runtime::placement::FleetView) so controllers must
//! re-place them, joins stamp a fresh node from the
//! [`ScenarioRecipe`](crate::runtime::builder::ScenarioRecipe) mid-run
//! (collision-free [`NodeSeed::derive`](crate::runtime::fleet::NodeSeed) at
//! the next free index), and draining nodes reject new admissions while the
//! controller migrates residents off.

use crate::time::{SimDuration, Timestamp};

use super::fleet::{splitmix64, GAMMA};

/// Where one node slot is in its life. The only legal transitions are
///
/// ```text
/// Joining ──► Active ──► Draining ──► Drained
///    │           │           │
///    └───────────┴───────────┴──────► Crashed
/// ```
///
/// — terminal states ([`Drained`](Self::Drained), [`Crashed`](Self::Crashed))
/// are never left, and a node cannot drain without passing through
/// [`Active`](Self::Active). [`NodeRegistry::transition`] rejects everything
/// else with a [`LifecycleError::IllegalTransition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeState {
    /// Stamped out mid-run and not yet eligible for admissions; activates at
    /// the next epoch boundary.
    Joining,
    /// Fully in service: runs agents, hosts workloads, accepts admissions.
    Active,
    /// Being emptied: rejects new admissions, keeps running its residents
    /// until the controller migrates them off.
    Draining,
    /// Terminal: drained to zero residents and retired cleanly.
    Drained,
    /// Terminal: failed abruptly; its residents were displaced.
    Crashed,
}

impl NodeState {
    /// Whether a transition from `self` to `to` is legal.
    pub fn can_transition(self, to: NodeState) -> bool {
        matches!(
            (self, to),
            (NodeState::Joining, NodeState::Active)
                | (NodeState::Joining, NodeState::Crashed)
                | (NodeState::Active, NodeState::Draining)
                | (NodeState::Active, NodeState::Crashed)
                | (NodeState::Draining, NodeState::Drained)
                | (NodeState::Draining, NodeState::Crashed)
        )
    }

    /// Whether the node accepts new workload admissions.
    pub fn is_active(self) -> bool {
        matches!(self, NodeState::Active)
    }

    /// Whether the node is still running (has a live simulation behind it).
    pub fn is_live(self) -> bool {
        matches!(self, NodeState::Joining | NodeState::Active | NodeState::Draining)
    }

    /// Whether the state is terminal (never left).
    pub fn is_terminal(self) -> bool {
        matches!(self, NodeState::Drained | NodeState::Crashed)
    }
}

impl std::fmt::Display for NodeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            NodeState::Joining => "joining",
            NodeState::Active => "active",
            NodeState::Draining => "draining",
            NodeState::Drained => "drained",
            NodeState::Crashed => "crashed",
        };
        f.write_str(name)
    }
}

/// The versioned lifecycle record of one node slot in a [`NodeRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRecord {
    /// The node's index in the fleet (stable for the whole run; slots are
    /// never reused).
    pub node: usize,
    /// The node's current lifecycle state.
    pub state: NodeState,
    /// Bumped on every transition; starts at 1 when the record is created.
    pub version: u64,
    /// The epoch boundary at which the node entered the fleet (0 for the
    /// initial population).
    pub joined_epoch: u64,
    /// The epoch boundary of the record's most recent transition.
    pub updated_epoch: u64,
}

impl NodeRecord {
    /// The record of an initial-population node that never transitioned:
    /// `Active` at version 1 since epoch 0. This is also what
    /// [`FleetRuntime::run_node`](crate::runtime::fleet::FleetRuntime::run_node)
    /// stamps, so a surviving node's fleet report matches its solo run.
    pub fn initial(node: usize) -> NodeRecord {
        NodeRecord { node, state: NodeState::Active, version: 1, joined_epoch: 0, updated_epoch: 0 }
    }
}

/// Why a lifecycle operation was rejected. These are loud errors: the fleet
/// aborts the run rather than guessing what a controller meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleError {
    /// The addressed node index does not exist in the registry.
    UnknownNode(usize),
    /// The requested transition is not an edge of the state machine.
    IllegalTransition {
        /// The addressed node.
        node: usize,
        /// Its current state.
        from: NodeState,
        /// The rejected target state.
        to: NodeState,
    },
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifecycleError::UnknownNode(node) => {
                write!(f, "lifecycle event addressed unknown node {node}")
            }
            LifecycleError::IllegalTransition { node, from, to } => {
                write!(f, "illegal lifecycle transition for node {node}: {from} -> {to}")
            }
        }
    }
}

impl std::error::Error for LifecycleError {}

/// The fleet's versioned lifecycle ledger: one [`NodeRecord`] per node slot,
/// append-only (slots are never reused), with every state change validated
/// against the [`NodeState`] machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRegistry {
    records: Vec<NodeRecord>,
}

impl NodeRegistry {
    /// A registry of `initial_nodes` slots, all `Active` since epoch 0.
    pub fn new(initial_nodes: usize) -> NodeRegistry {
        NodeRegistry { records: (0..initial_nodes).map(NodeRecord::initial).collect() }
    }

    /// Number of node slots ever registered (live and terminal).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the registry holds no slots.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in node-index order.
    pub fn records(&self) -> &[NodeRecord] {
        &self.records
    }

    /// The record of one node, if the slot exists.
    pub fn record(&self, node: usize) -> Option<&NodeRecord> {
        self.records.get(node)
    }

    /// The state of one node, if the slot exists.
    pub fn state(&self, node: usize) -> Option<NodeState> {
        self.records.get(node).map(|r| r.state)
    }

    /// Number of live (joining, active, or draining) nodes.
    pub fn live(&self) -> usize {
        self.records.iter().filter(|r| r.state.is_live()).count()
    }

    /// Registers a new `Joining` node at the next free index and returns that
    /// index. Indices grow monotonically, so a joined node's
    /// [`NodeSeed`](crate::runtime::fleet::NodeSeed) never collides with any
    /// earlier node's.
    pub fn join(&mut self, epoch: u64) -> usize {
        let node = self.records.len();
        self.records.push(NodeRecord {
            node,
            state: NodeState::Joining,
            version: 1,
            joined_epoch: epoch,
            updated_epoch: epoch,
        });
        node
    }

    /// Moves `node` to `to`, bumping the record's version.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::UnknownNode`] if the slot does not exist;
    /// [`LifecycleError::IllegalTransition`] if the edge is not part of the
    /// state machine. On error the record is untouched.
    pub fn transition(
        &mut self,
        node: usize,
        to: NodeState,
        epoch: u64,
    ) -> Result<(), LifecycleError> {
        let record = self.records.get_mut(node).ok_or(LifecycleError::UnknownNode(node))?;
        if !record.state.can_transition(to) {
            return Err(LifecycleError::IllegalTransition { node, from: record.state, to });
        }
        record.state = to;
        record.version += 1;
        record.updated_epoch = epoch;
        Ok(())
    }
}

/// One availability event, issued by a controller (via
/// [`PlacementPlan`](crate::runtime::placement::PlacementPlan)) or injected
/// by a [`FaultPlan`] at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// `node` fails abruptly: its agents stop, its resident workloads are
    /// displaced into the next
    /// [`FleetView`](crate::runtime::placement::FleetView).
    Crash {
        /// The failing node.
        node: usize,
    },
    /// A fresh node is stamped from the recipe at the next free index; it is
    /// `Joining` until the next boundary, then `Active`.
    Join,
    /// `node` stops accepting admissions and waits for the controller to
    /// migrate its residents off; once observed empty at a boundary it
    /// retires as `Drained`.
    Drain {
        /// The node to empty.
        node: usize,
    },
}

/// One timestamped entry of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The event fires at the first epoch boundary at or after this time.
    pub at: Timestamp,
    /// What happens.
    pub event: LifecycleEvent,
}

/// Shape of a generated [`FaultPlan`]: how many of each event, spread over
/// what span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanConfig {
    /// Number of node crashes.
    pub crashes: usize,
    /// Number of node joins.
    pub joins: usize,
    /// Number of node drains.
    pub drains: usize,
    /// Event times are spread uniformly over `(0, span]`.
    pub span: SimDuration,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig { crashes: 1, joins: 1, drains: 1, span: SimDuration::from_secs(60) }
    }
}

/// A seeded, deterministic schedule of availability events — the failure
/// analogue of an [`ArrivalTrace`](crate::runtime::placement::ArrivalTrace).
///
/// Crash and drain targets are sampled *without replacement* from the initial
/// node population, so a generated plan never asks the same node to both
/// crash and drain (which would be an illegal transition once the first event
/// lands). The plan is a pure function of `(seed, nodes, FaultPlanConfig)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// A plan with no events: `run_with_faults` under an empty plan is
    /// byte-identical to `run_with`.
    pub fn empty() -> FaultPlan {
        FaultPlan { events: Vec::new(), cursor: 0 }
    }

    /// A plan over explicit events (sorted by time; ties keep their given
    /// order). Useful for scripting a precise failure scenario in tests and
    /// examples.
    pub fn from_events(mut events: Vec<FaultEvent>) -> FaultPlan {
        events.sort_by_key(|e| e.at);
        FaultPlan { events, cursor: 0 }
    }

    /// Generates a plan from a seed, the initial fleet size, and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `crashes + drains > nodes` (targets are sampled without
    /// replacement) or if `span` is zero while the plan has events.
    pub fn generate(seed: u64, nodes: usize, config: &FaultPlanConfig) -> FaultPlan {
        let targeted = config.crashes + config.drains;
        assert!(
            targeted <= nodes,
            "fault plan wants {targeted} crash/drain targets but the fleet has {nodes} nodes"
        );
        let total = targeted + config.joins;
        assert!(total == 0 || !config.span.is_zero(), "a non-empty fault plan needs a span");
        // Domain separation from `NodeSeed::derive` and the arrival trace.
        const FAULT_DOMAIN: u64 = 0x4641_494c_4f56_4552; // "FAILOVER"
        let root = splitmix64(seed ^ FAULT_DOMAIN);
        let draw = |salt: u64| splitmix64(root.wrapping_add(salt.wrapping_mul(GAMMA)));
        // Partial Fisher-Yates over the node indices: the first `targeted`
        // entries are the distinct crash/drain victims.
        let mut pool: Vec<usize> = (0..nodes).collect();
        for i in 0..targeted {
            let j = i + (draw(i as u64) as usize) % (nodes - i);
            pool.swap(i, j);
        }
        let at = |salt: u64| {
            let frac = (draw(salt) >> 11) as f64 / 9_007_199_254_740_992.0;
            Timestamp::ZERO
                + SimDuration::from_nanos(((config.span.as_nanos() as f64 * frac) as u64).max(1))
        };
        let mut events = Vec::with_capacity(total);
        for (i, &node) in pool[..config.crashes].iter().enumerate() {
            events.push(FaultEvent {
                at: at(1_000 + i as u64),
                event: LifecycleEvent::Crash { node },
            });
        }
        for (i, &node) in pool[config.crashes..targeted].iter().enumerate() {
            events.push(FaultEvent {
                at: at(2_000 + i as u64),
                event: LifecycleEvent::Drain { node },
            });
        }
        for i in 0..config.joins {
            events.push(FaultEvent { at: at(3_000 + i as u64), event: LifecycleEvent::Join });
        }
        events.sort_by_key(|e| e.at);
        FaultPlan { events, cursor: 0 }
    }

    /// The plan's events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Advances the cursor past every event due at or before `now` and
    /// returns them, in time order.
    pub fn due(&mut self, now: Timestamp) -> Vec<LifecycleEvent> {
        let mut fired = Vec::new();
        while self.cursor < self.events.len() && self.events[self.cursor].at <= now {
            fired.push(self.events[self.cursor].event);
            self.cursor += 1;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_STATES: [NodeState; 5] = [
        NodeState::Joining,
        NodeState::Active,
        NodeState::Draining,
        NodeState::Drained,
        NodeState::Crashed,
    ];

    #[test]
    fn exactly_six_edges_are_legal() {
        let mut legal = 0;
        for from in ALL_STATES {
            for to in ALL_STATES {
                if from.can_transition(to) {
                    legal += 1;
                    assert!(from.is_live(), "only live states may transition: {from} -> {to}");
                }
                if from.is_terminal() {
                    assert!(!from.can_transition(to), "terminal {from} must never leave");
                }
            }
        }
        assert_eq!(legal, 6);
        // Spot checks on both sides of the fence.
        assert!(NodeState::Active.can_transition(NodeState::Draining));
        assert!(!NodeState::Active.can_transition(NodeState::Drained));
        assert!(!NodeState::Joining.can_transition(NodeState::Draining));
        assert!(!NodeState::Crashed.can_transition(NodeState::Active));
    }

    #[test]
    fn registry_tracks_versions_and_epochs() {
        let mut registry = NodeRegistry::new(2);
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.record(0), Some(&NodeRecord::initial(0)));
        assert_eq!(registry.live(), 2);

        registry.transition(0, NodeState::Draining, 3).unwrap();
        registry.transition(0, NodeState::Drained, 5).unwrap();
        let record = registry.record(0).unwrap();
        assert_eq!(record.state, NodeState::Drained);
        assert_eq!(record.version, 3);
        assert_eq!(record.joined_epoch, 0);
        assert_eq!(record.updated_epoch, 5);
        assert_eq!(registry.live(), 1);

        let joined = registry.join(4);
        assert_eq!(joined, 2);
        let record = *registry.record(joined).unwrap();
        assert_eq!(record.state, NodeState::Joining);
        assert_eq!(record.version, 1);
        assert_eq!(record.joined_epoch, 4);
        registry.transition(joined, NodeState::Active, 5).unwrap();
        assert_eq!(registry.state(joined), Some(NodeState::Active));
    }

    #[test]
    fn registry_rejects_illegal_operations_loudly_and_untouched() {
        let mut registry = NodeRegistry::new(1);
        assert_eq!(
            registry.transition(7, NodeState::Crashed, 0),
            Err(LifecycleError::UnknownNode(7))
        );
        let err = registry.transition(0, NodeState::Drained, 2).unwrap_err();
        assert_eq!(
            err,
            LifecycleError::IllegalTransition {
                node: 0,
                from: NodeState::Active,
                to: NodeState::Drained
            }
        );
        assert!(err.to_string().contains("active -> drained"));
        // The failed transition left the record untouched.
        assert_eq!(registry.record(0), Some(&NodeRecord::initial(0)));
    }

    #[test]
    fn fault_plan_is_deterministic_sorted_and_collision_free() {
        let config =
            FaultPlanConfig { crashes: 2, joins: 2, drains: 2, span: SimDuration::from_secs(30) };
        let a = FaultPlan::generate(9, 6, &config);
        assert_eq!(a, FaultPlan::generate(9, 6, &config));
        assert_ne!(a, FaultPlan::generate(10, 6, &config));
        assert_eq!(a.events().len(), 6);
        for pair in a.events().windows(2) {
            assert!(pair[0].at <= pair[1].at, "events must be time-sorted");
        }
        // Crash and drain targets never overlap, so the plan is always legal.
        let mut targets = Vec::new();
        for e in a.events() {
            match e.event {
                LifecycleEvent::Crash { node } | LifecycleEvent::Drain { node } => {
                    assert!(!targets.contains(&node), "node {node} targeted twice");
                    assert!(node < 6);
                    targets.push(node);
                }
                LifecycleEvent::Join => {}
            }
        }
        assert_eq!(targets.len(), 4);
    }

    #[test]
    #[should_panic(expected = "crash/drain targets")]
    fn fault_plan_rejects_more_targets_than_nodes() {
        let config =
            FaultPlanConfig { crashes: 3, joins: 0, drains: 2, span: SimDuration::from_secs(10) };
        FaultPlan::generate(0, 4, &config);
    }

    #[test]
    fn fault_plan_cursor_fires_each_event_once() {
        let crash = LifecycleEvent::Crash { node: 0 };
        let mut plan = FaultPlan::from_events(vec![
            FaultEvent { at: Timestamp::from_secs(5), event: LifecycleEvent::Join },
            FaultEvent { at: Timestamp::from_secs(2), event: crash },
        ]);
        assert_eq!(plan.due(Timestamp::from_secs(1)), Vec::new());
        assert_eq!(plan.due(Timestamp::from_secs(2)), vec![crash]);
        assert_eq!(plan.due(Timestamp::from_secs(10)), vec![LifecycleEvent::Join]);
        assert_eq!(plan.due(Timestamp::from_secs(20)), Vec::new());
        assert!(FaultPlan::empty().is_empty());
    }
}
