//! Fleet-level workload placement: the programmable epoch-barrier
//! coordination point.
//!
//! SOL's safety story is evaluated per node, but its deployment story is
//! fleet-wide: Azure-style platforms continuously admit, drain, and move VMs
//! across servers, and on-node learners must stay safe *while the platform
//! reshuffles work under them*. This module turns the
//! [`FleetRuntime`](crate::runtime::fleet::FleetRuntime)'s epoch barrier from
//! a dead clock-sync point into a programmable coordination point:
//!
//! * a [`WorkloadUnit`] is a first-class, movable unit of work (a VM in
//!   protean terms) with a stable [`WorkloadId`] — no longer a
//!   build-time-frozen workload box;
//! * environments opt into hosting units through the placement hooks on
//!   [`Environment`](crate::runtime::Environment)
//!   (`attach_workload`/`detach_workload`/`placement`), surfaced between
//!   epoch segments via
//!   [`NodeRuntime`](crate::runtime::node::NodeRuntime) and
//!   [`ScenarioBuilder`](crate::runtime::builder::ScenarioBuilder);
//! * an object-safe [`FleetController`] is invoked at every epoch boundary
//!   with a [`FleetView`] — per-node [`AgentStats`] snapshots,
//!   recipe-extracted telemetry, and the current placement — and returns a
//!   [`PlacementPlan`] of typed [`FleetCommand`]s (admit, depart, migrate)
//!   that [`run_with`](crate::runtime::fleet::FleetRuntime::run_with) applies
//!   deterministically before releasing the barrier.
//!
//! Two controllers ship with the framework: [`NullController`] (no commands;
//! `run(horizon)` is sugar for `run_with(&mut NullController, horizon)`) and
//! [`GreedyPacker`], a protean-style harvest-aware packer driven by a seeded
//! [`ArrivalTrace`] of VM arrivals and departures.
//!
//! # Determinism
//!
//! Everything here is a pure function of its inputs: the controller runs on
//! the coordinator thread against a [`FleetView`] sorted by node index, the
//! plan is applied in a fixed phase order (departures and migration-detaches,
//! then admissions, then migration-attaches, each stable-sorted by target
//! node index), and [`ArrivalTrace::generate`] derives every event from the
//! seed with the same SplitMix64 mix the per-node seeds use. Fleet reports
//! therefore stay byte-identical across worker-thread counts even with a
//! controller migrating work every epoch (pinned in
//! `tests/tests/determinism.rs`).

use crate::stats::AgentStats;
use crate::time::{SimDuration, Timestamp};

use super::fleet::{splitmix64, GAMMA};
use super::lifecycle::{LifecycleEvent, NodeState};

/// Stable identity of a placeable [`WorkloadUnit`], assigned by whoever
/// creates the unit (an [`ArrivalTrace`], a test, a custom controller) and
/// preserved across migrations between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkloadId(pub u64);

impl std::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm#{}", self.0)
    }
}

/// A first-class, movable unit of work: the descriptor a hosting environment
/// turns into load (a VM's core demand and compute-boundedness, in the fluid
/// model the node simulators use).
///
/// Units are plain data so they can travel between nodes — and between the
/// worker threads hosting those nodes — when a [`FleetCommand::Migrate`] is
/// applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadUnit {
    /// Stable identity, preserved across migrations.
    pub id: WorkloadId,
    /// Cores' worth of compute the unit demands while resident.
    pub cores: f64,
    /// Fraction of the unit's busy cycles that are productive (not stalled);
    /// feeds the hosting node's counter model.
    pub cpu_bound_fraction: f64,
}

impl WorkloadUnit {
    /// Creates a unit with the given core demand and a fully compute-bound
    /// profile.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not finite and positive.
    pub fn new(id: WorkloadId, cores: f64) -> Self {
        assert!(cores.is_finite() && cores > 0.0, "workload cores must be positive");
        WorkloadUnit { id, cores, cpu_bound_fraction: 1.0 }
    }

    /// Returns the unit with the given CPU-bound fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_cpu_bound_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "cpu-bound fraction must be in [0, 1]");
        self.cpu_bound_fraction = fraction;
        self
    }
}

/// Why a placement operation on an environment failed.
///
/// Failed operations are normal outcomes of a fleet run (a controller may
/// over-subscribe a node); the runtime counts them in
/// [`PlacementStats`](crate::runtime::fleet::PlacementStats) rather than
/// aborting.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The environment hosts no placeable slots (the default for every
    /// [`Environment`](crate::runtime::Environment) that does not opt in).
    Unsupported,
    /// Admitting the unit would exceed the environment's placeable capacity.
    CapacityExceeded {
        /// Cores the rejected unit demanded.
        requested: f64,
        /// Placeable cores that were still free.
        free: f64,
    },
    /// A unit with the same [`WorkloadId`] is already resident.
    DuplicateWorkload(WorkloadId),
    /// No resident unit has the requested [`WorkloadId`].
    UnknownWorkload(WorkloadId),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::Unsupported => {
                write!(f, "environment hosts no placeable workload slots")
            }
            PlacementError::CapacityExceeded { requested, free } => {
                write!(f, "workload wants {requested} cores but only {free} are placeable")
            }
            PlacementError::DuplicateWorkload(id) => write!(f, "{id} is already resident"),
            PlacementError::UnknownWorkload(id) => write!(f, "{id} is not resident"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Snapshot of one environment's placeable state: its capacity and the units
/// currently resident.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodePlacement {
    /// Placeable core capacity (0 for environments without placeable slots).
    pub capacity: f64,
    /// Units currently resident, in admission order.
    pub resident: Vec<WorkloadUnit>,
}

impl NodePlacement {
    /// The snapshot of an environment with no placeable slots.
    pub fn none() -> Self {
        NodePlacement::default()
    }

    /// Cores demanded by the resident units.
    pub fn used(&self) -> f64 {
        self.resident.iter().map(|u| u.cores).sum()
    }

    /// Placeable cores still free.
    pub fn free(&self) -> f64 {
        (self.capacity - self.used()).max(0.0)
    }

    /// Used fraction of the placeable capacity, in `[0, 1]`-ish (0 when the
    /// environment has no capacity).
    pub fn occupancy(&self) -> f64 {
        if self.capacity > 0.0 {
            self.used() / self.capacity
        } else {
            0.0
        }
    }

    /// Whether a unit with `id` is resident.
    pub fn hosts(&self, id: WorkloadId) -> bool {
        self.resident.iter().any(|u| u.id == id)
    }
}

/// Name and current counters of one agent, as seen at an epoch barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentTelemetry {
    /// The name the agent was registered under.
    pub name: String,
    /// The agent's counters accumulated so far (not just this epoch).
    pub stats: AgentStats,
}

/// Telemetry snapshot of one node at an epoch barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeView {
    /// The node's index in the fleet.
    pub node: usize,
    /// Per-agent counters, in registration order.
    pub agents: Vec<AgentTelemetry>,
    /// Environment readings extracted by the recipe's
    /// [`with_telemetry`](crate::runtime::builder::ScenarioRecipe::with_telemetry)
    /// closure.
    pub telemetry: Vec<(String, f64)>,
    /// The node's current workload placement.
    pub placement: NodePlacement,
    /// The node's lifecycle state, stamped from the fleet's
    /// [`NodeRegistry`](crate::runtime::lifecycle::NodeRegistry). Retired
    /// nodes ([`Drained`](NodeState::Drained) / [`Crashed`](NodeState::Crashed))
    /// appear as tombstones: empty agents, empty telemetry, no placement.
    pub state: NodeState,
}

impl NodeView {
    /// A named telemetry reading, if the recipe reported it.
    pub fn reading(&self, name: &str) -> Option<f64> {
        self.telemetry.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// What a [`FleetController`] sees at an epoch boundary: every node's
/// telemetry and placement, folded in node-index order (never completion
/// order, so the view is identical for any worker-thread count).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetView {
    /// The virtual time of the boundary.
    pub now: Timestamp,
    /// Zero-based index of the boundary (`0` is the first barrier, at one
    /// epoch of virtual time).
    pub epoch: u64,
    /// Per-node snapshots, sorted by node index.
    pub nodes: Vec<NodeView>,
    /// Workload units displaced by node crashes and not yet re-placed, in
    /// displacement order. They stay in this pool (and reappear in every
    /// subsequent view) until a controller successfully re-admits them; any
    /// still displaced when the run ends are counted as failed placements.
    pub displaced: Vec<WorkloadUnit>,
}

impl FleetView {
    /// The index of the node currently hosting `id`, if any.
    pub fn locate(&self, id: WorkloadId) -> Option<usize> {
        self.nodes.iter().find(|n| n.placement.hosts(id)).map(|n| n.node)
    }
}

/// A node's first full observation: everything a coordinator needs to seed
/// its base [`NodeView`] for that node. Shipped once per node (at the first
/// barrier the node reaches); every later barrier sends a [`NodeDelta`]
/// against it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeInit {
    /// Per-agent names and counters, in registration order.
    pub agents: Vec<AgentTelemetry>,
    /// Recipe-extracted environment readings.
    pub telemetry: Vec<(String, f64)>,
    /// The node's workload placement.
    pub placement: NodePlacement,
}

/// The changes in one node's [`NodeView`] between two epoch barriers.
///
/// Fleet workers ship deltas instead of full snapshots: the coordinator
/// holds one persistent base [`FleetView`] and patches it in place, so the
/// per-barrier cost scales with what *changed* (for a quiet node: nothing)
/// rather than with the node's agent count and telemetry width. Agent
/// counters are keyed by registration position and telemetry readings by
/// emission position — both orders are fixed for the lifetime of a node, so
/// positions are stable keys and names never need to travel twice.
///
/// `diff`/`apply` form a codec: `apply(diff(prev, next), prev) == next` for
/// any two views of the same node (property-tested across churn sequences in
/// `tests/tests/delta_views.rs`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeDelta {
    /// The node's index in the fleet.
    pub node: usize,
    /// The full first observation; `Some` replaces the base wholesale
    /// (also used when a node's agent or telemetry population changed shape,
    /// which positional patches cannot express).
    pub init: Option<NodeInit>,
    /// Changed agent counters, by registration position.
    pub agents: Vec<(usize, AgentStats)>,
    /// Changed telemetry readings, by emission position.
    pub telemetry: Vec<(usize, f64)>,
    /// The new placement, if it changed.
    pub placement: Option<NodePlacement>,
    /// The new lifecycle state, if it changed.
    pub state: Option<NodeState>,
}

impl NodeDelta {
    /// The empty delta for `node`: applying it changes nothing.
    pub fn empty(node: usize) -> Self {
        NodeDelta { node, ..NodeDelta::default() }
    }

    /// Whether applying this delta would change nothing.
    pub fn is_empty(&self) -> bool {
        self.init.is_none()
            && self.agents.is_empty()
            && self.telemetry.is_empty()
            && self.placement.is_none()
            && self.state.is_none()
    }

    /// The delta turning `prev` into `next`.
    ///
    /// Falls back to a full [`NodeInit`] when the agent or telemetry
    /// populations changed shape (different lengths or names) — positional
    /// patches only make sense against an identical layout.
    pub fn diff(prev: &NodeView, next: &NodeView) -> NodeDelta {
        debug_assert_eq!(prev.node, next.node, "deltas are per-node");
        let mut delta = NodeDelta::empty(next.node);
        if next.state != prev.state {
            delta.state = Some(next.state);
        }
        let same_layout = prev.agents.len() == next.agents.len()
            && prev.agents.iter().zip(&next.agents).all(|(a, b)| a.name == b.name)
            && prev.telemetry.len() == next.telemetry.len()
            && prev.telemetry.iter().zip(&next.telemetry).all(|((a, _), (b, _))| a == b);
        if !same_layout {
            delta.init = Some(NodeInit {
                agents: next.agents.clone(),
                telemetry: next.telemetry.clone(),
                placement: next.placement.clone(),
            });
            return delta;
        }
        for (role, (prev_agent, next_agent)) in prev.agents.iter().zip(&next.agents).enumerate() {
            if prev_agent.stats != next_agent.stats {
                delta.agents.push((role, next_agent.stats.clone()));
            }
        }
        for (slot, ((_, prev_value), (_, next_value))) in
            prev.telemetry.iter().zip(&next.telemetry).enumerate()
        {
            if prev_value != next_value {
                delta.telemetry.push((slot, *next_value));
            }
        }
        if prev.placement != next.placement {
            delta.placement = Some(next.placement.clone());
        }
        delta
    }

    /// Patches `view` in place.
    ///
    /// Positions out of range for the view's current layout are ignored —
    /// they can only arise from applying a delta against the wrong base,
    /// and dropping them keeps `apply` total.
    pub fn apply(&self, view: &mut NodeView) {
        debug_assert_eq!(self.node, view.node, "deltas are per-node");
        if let Some(init) = &self.init {
            view.agents = init.agents.clone();
            view.telemetry = init.telemetry.clone();
            view.placement = init.placement.clone();
        }
        for (role, stats) in &self.agents {
            if let Some(agent) = view.agents.get_mut(*role) {
                agent.stats = stats.clone();
            }
        }
        for (slot, value) in &self.telemetry {
            if let Some((_, reading)) = view.telemetry.get_mut(*slot) {
                *reading = *value;
            }
        }
        if let Some(placement) = &self.placement {
            view.placement = placement.clone();
        }
        if let Some(state) = self.state {
            view.state = state;
        }
    }
}

/// One typed placement command issued by a [`FleetController`].
#[derive(Debug, Clone, PartialEq)]
pub enum FleetCommand {
    /// Attach `unit` to `node` (a VM arrival).
    Admit {
        /// Target node index.
        node: usize,
        /// The unit to attach.
        unit: WorkloadUnit,
    },
    /// Detach the unit from `node` and drop it (a VM departure / drain).
    Depart {
        /// The node currently hosting the unit.
        node: usize,
        /// The unit to detach.
        workload: WorkloadId,
    },
    /// Detach the unit from `from` and attach it to `to`.
    Migrate {
        /// The node currently hosting the unit.
        from: usize,
        /// The destination node.
        to: usize,
        /// The unit to move.
        workload: WorkloadId,
    },
}

/// The commands a [`FleetController`] returns for one epoch boundary.
///
/// The runtime applies a plan's lifecycle events first (crashes displace,
/// joins stamp new nodes, drains close admissions), then its placement
/// commands in three phases — departures and migration-detaches, then
/// admissions, then migration-attaches — each phase stable-sorted by target
/// node index, so freed capacity is available to the same barrier's
/// admissions and application order never depends on the worker-thread
/// layout. Because lifecycle events land first, a placement command against a
/// node crashed in the same plan fails (counted, not fatal).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlacementPlan {
    commands: Vec<FleetCommand>,
    lifecycle: Vec<LifecycleEvent>,
}

impl PlacementPlan {
    /// An empty plan.
    pub fn new() -> Self {
        PlacementPlan::default()
    }

    /// Queues an [`FleetCommand::Admit`].
    pub fn admit(&mut self, node: usize, unit: WorkloadUnit) {
        self.commands.push(FleetCommand::Admit { node, unit });
    }

    /// Queues a [`FleetCommand::Depart`].
    pub fn depart(&mut self, node: usize, workload: WorkloadId) {
        self.commands.push(FleetCommand::Depart { node, workload });
    }

    /// Queues a [`FleetCommand::Migrate`].
    pub fn migrate(&mut self, from: usize, to: usize, workload: WorkloadId) {
        self.commands.push(FleetCommand::Migrate { from, to, workload });
    }

    /// Queues an arbitrary command.
    pub fn push(&mut self, command: FleetCommand) {
        self.commands.push(command);
    }

    /// Queues a [`LifecycleEvent::Crash`] of `node`.
    pub fn crash(&mut self, node: usize) {
        self.lifecycle.push(LifecycleEvent::Crash { node });
    }

    /// Queues a [`LifecycleEvent::Join`]: a fresh node stamped from the
    /// recipe at the next free index.
    pub fn join(&mut self) {
        self.lifecycle.push(LifecycleEvent::Join);
    }

    /// Queues a [`LifecycleEvent::Drain`] of `node`.
    pub fn drain(&mut self, node: usize) {
        self.lifecycle.push(LifecycleEvent::Drain { node });
    }

    /// Queues an arbitrary lifecycle event.
    pub fn lifecycle(&mut self, event: LifecycleEvent) {
        self.lifecycle.push(event);
    }

    /// The queued commands, in issue order.
    pub fn commands(&self) -> &[FleetCommand] {
        &self.commands
    }

    /// The queued lifecycle events, in issue order.
    pub fn lifecycle_events(&self) -> &[LifecycleEvent] {
        &self.lifecycle
    }

    /// Number of queued commands and lifecycle events.
    pub fn len(&self) -> usize {
        self.commands.len() + self.lifecycle.len()
    }

    /// Whether the plan issues no commands and no lifecycle events.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty() && self.lifecycle.is_empty()
    }

    /// Consumes the plan, returning its commands (lifecycle events are
    /// dropped; use [`into_parts`](Self::into_parts) to keep both).
    pub fn into_commands(self) -> Vec<FleetCommand> {
        self.commands
    }

    /// Consumes the plan, returning its commands and lifecycle events.
    pub fn into_parts(self) -> (Vec<FleetCommand>, Vec<LifecycleEvent>) {
        (self.commands, self.lifecycle)
    }
}

/// The programmable epoch-barrier hook: invoked by
/// [`FleetRuntime::run_with`](crate::runtime::fleet::FleetRuntime::run_with)
/// at every epoch boundary, after all nodes reached the barrier and before
/// any node is released into the next epoch.
///
/// The trait is object-safe so controllers can be swapped at run time and
/// composed behind `&mut dyn FleetController`. Implementations must be
/// deterministic in the view (no wall clock, no ambient randomness) or fleet
/// reports lose their byte-identity across thread counts.
pub trait FleetController: Send {
    /// Returns the placement commands to apply at this boundary.
    fn plan(&mut self, view: &FleetView) -> PlacementPlan;

    /// Whether this controller reads the per-node agent counters and
    /// telemetry of the [`FleetView`] it is planning against.
    ///
    /// Defaults to `true`. A controller that plans from placement and
    /// lifecycle state alone (or from nothing, like [`NullController`]) can
    /// return `false`: the fleet runtime then skips extracting agent stats
    /// and telemetry at every barrier — the dominant per-node fixed cost of
    /// an idle epoch — and hands [`plan`](Self::plan) views whose per-node
    /// `agents`/`telemetry` vectors are empty while `now`, `epoch`,
    /// `placement`, `state`, and `displaced` stay exact. The answer is
    /// sampled once per run, before the first barrier.
    fn wants_view(&self) -> bool {
        true
    }
}

/// The do-nothing controller: issues no commands, ever.
/// [`FleetRuntime::run`](crate::runtime::fleet::FleetRuntime::run) is sugar
/// for running with this controller.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullController;

impl FleetController for NullController {
    fn plan(&mut self, _view: &FleetView) -> PlacementPlan {
        PlacementPlan::new()
    }

    /// Never looks at the view, so barrier snapshots can be skipped entirely.
    fn wants_view(&self) -> bool {
        false
    }
}

/// Shape of a generated [`ArrivalTrace`]: how many VM arrivals, over what
/// span, and the ranges their sizes and lifetimes are drawn from.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTraceConfig {
    /// Number of VM arrivals in the trace.
    pub workloads: usize,
    /// Arrivals are spread uniformly over `[0, span)`.
    pub span: SimDuration,
    /// Smallest core demand drawn.
    pub min_cores: f64,
    /// Largest core demand drawn.
    pub max_cores: f64,
    /// Shortest VM lifetime drawn.
    pub min_lifetime: SimDuration,
    /// Longest VM lifetime drawn.
    pub max_lifetime: SimDuration,
}

impl Default for ArrivalTraceConfig {
    fn default() -> Self {
        ArrivalTraceConfig {
            workloads: 32,
            span: SimDuration::from_secs(60),
            min_cores: 0.5,
            max_cores: 2.0,
            min_lifetime: SimDuration::from_secs(5),
            max_lifetime: SimDuration::from_secs(30),
        }
    }
}

/// What happens at one point of an [`ArrivalTrace`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A VM arrives and wants to be placed.
    Arrive(WorkloadUnit),
    /// A previously arrived VM departs.
    Depart(WorkloadId),
}

/// One timestamped event of an [`ArrivalTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the event is due.
    pub at: Timestamp,
    /// Arrival or departure.
    pub kind: TraceEventKind,
}

/// A seeded, deterministic sequence of VM arrivals and departures — the
/// demand side of a protean-style placement run.
///
/// Every event is derived from the seed with the same SplitMix64 mix the
/// per-node seeds use, so a trace is a pure function of
/// `(seed, ArrivalTraceConfig)`. Seed the trace from the fleet's master seed
/// (or any constant) — per-node [`NodeSeed`](crate::runtime::fleet::NodeSeed)
/// streams are for on-node consumers; the trace is a fleet-level input.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    events: Vec<TraceEvent>,
    arrivals: usize,
}

impl ArrivalTrace {
    /// An empty trace (no arrivals, no departures).
    pub fn empty() -> Self {
        ArrivalTrace { events: Vec::new(), arrivals: 0 }
    }

    /// Generates a trace from a seed and a shape.
    ///
    /// Departures always fall strictly after their arrival (lifetimes are
    /// clamped to at least one nanosecond) and may fall past any run horizon,
    /// in which case the VM simply never departs within the run.
    ///
    /// # Panics
    ///
    /// Panics if a range is inverted (`min_cores > max_cores`,
    /// `min_lifetime > max_lifetime`), if `min_cores` is not positive, or if
    /// `span` is zero while `workloads > 0`.
    pub fn generate(seed: u64, config: &ArrivalTraceConfig) -> Self {
        assert!(config.min_cores > 0.0, "min_cores must be positive");
        assert!(config.min_cores <= config.max_cores, "min_cores must not exceed max_cores");
        assert!(
            config.min_lifetime <= config.max_lifetime,
            "min_lifetime must not exceed max_lifetime"
        );
        assert!(
            config.workloads == 0 || !config.span.is_zero(),
            "a non-empty trace needs a non-zero span"
        );
        // Domain separation from `NodeSeed::derive`: traces are routinely
        // seeded with the fleet master seed, and without this extra mix
        // variate k would be bit-identical to node k's derived seed.
        const TRACE_DOMAIN: u64 = 0x4152_5249_5641_4c53; // "ARRIVALS"
        let root = splitmix64(seed ^ TRACE_DOMAIN);
        let uniform = |salt: u64| {
            // 53 random mantissa bits -> [0, 1).
            (splitmix64(root.wrapping_add(salt.wrapping_mul(GAMMA))) >> 11) as f64
                / 9_007_199_254_740_992.0
        };
        let mut events = Vec::with_capacity(config.workloads * 2);
        for i in 0..config.workloads as u64 {
            let arrival_frac = uniform(i * 4);
            let cores_frac = uniform(i * 4 + 1);
            let lifetime_frac = uniform(i * 4 + 2);
            let bound_frac = uniform(i * 4 + 3);
            let at = Timestamp::ZERO
                + SimDuration::from_nanos((config.span.as_nanos() as f64 * arrival_frac) as u64);
            let cores = config.min_cores + (config.max_cores - config.min_cores) * cores_frac;
            let lifetime_nanos = config.min_lifetime.as_nanos() as f64
                + (config.max_lifetime.as_nanos() - config.min_lifetime.as_nanos()) as f64
                    * lifetime_frac;
            let lifetime = SimDuration::from_nanos((lifetime_nanos as u64).max(1));
            let unit = WorkloadUnit::new(WorkloadId(i), cores)
                .with_cpu_bound_fraction(0.6 + 0.4 * bound_frac);
            events.push(TraceEvent { at, kind: TraceEventKind::Arrive(unit) });
            events.push(TraceEvent { at: at + lifetime, kind: TraceEventKind::Depart(unit.id) });
        }
        // Stable by time: a VM's arrival was pushed before its departure, so
        // equal timestamps keep arrive-before-depart order.
        events.sort_by_key(|e| e.at);
        ArrivalTrace { events, arrivals: config.workloads }
    }

    /// The trace's events, sorted by time.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of VM arrivals in the trace.
    pub fn arrivals(&self) -> usize {
        self.arrivals
    }
}

/// Tuning knobs for the [`GreedyPacker`].
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyPackerConfig {
    /// Rebalancing triggers when the free-capacity gap between the emptiest
    /// and fullest node exceeds this many cores; `<= 0` disables rebalancing
    /// migrations entirely.
    pub rebalance_gap: f64,
    /// At most this many rebalancing migrations per epoch boundary.
    pub max_rebalances_per_epoch: usize,
}

impl Default for GreedyPackerConfig {
    fn default() -> Self {
        GreedyPackerConfig { rebalance_gap: 2.0, max_rebalances_per_epoch: 1 }
    }
}

/// A protean-style harvest-aware packer driven by an [`ArrivalTrace`].
///
/// At every epoch boundary the packer
///
/// 1. absorbs the trace events that came due since the previous boundary
///    (departures of resident units become [`FleetCommand::Depart`]s;
///    departures of units that were never placed just leave the queue);
/// 2. queues crash-displaced units from [`FleetView::displaced`] at the front
///    of its pending queue (skipping units whose trace departure has already
///    passed), so re-placements come before fresh arrivals;
/// 3. evacuates [`Draining`](NodeState::Draining) nodes: each resident
///    (smallest first) migrates to the emptiest `Active` node with room —
///    what does not fit stays and is retried at the next boundary;
/// 4. places queued arrivals worst-fit — each unit goes to the `Active` node
///    with the most free placeable capacity, i.e. the most harvestable idle
///    headroom (ties break toward the lower node index). Eligibility is
///    re-evaluated against the *current* [`FleetView`] at every boundary, so
///    a unit deferred while the fleet was full lands on a node that joined
///    after the deferral; units that fit nowhere stay queued; and
/// 5. issues up to
///    [`max_rebalances_per_epoch`](GreedyPackerConfig::max_rebalances_per_epoch)
///    [`FleetCommand::Migrate`]s toward the emptiest `Active` node when the
///    free-capacity gap exceeds
///    [`rebalance_gap`](GreedyPackerConfig::rebalance_gap): the donor is the
///    least-free `Active` node that has a movable unit fitting the recipient
///    (nodes with nothing movable — e.g. zero-capacity nodes — are skipped,
///    not allowed to wedge rebalancing), and the smallest such unit moves.
///
/// Only `Active` nodes receive work: `Joining`, `Draining`, and retired
/// nodes are skipped as admission and migration targets.
///
/// All choices are functions of the (index-sorted) [`FleetView`] and the
/// packer's own deterministic queue, so runs stay byte-identical across
/// worker-thread counts.
#[derive(Debug, Clone)]
pub struct GreedyPacker {
    events: Vec<TraceEvent>,
    cursor: usize,
    pending: Vec<WorkloadUnit>,
    /// Ids whose trace departure has come due; displaced copies of these
    /// must not be re-placed.
    departed: Vec<WorkloadId>,
    config: GreedyPackerConfig,
    deferred_placements: u64,
}

impl GreedyPacker {
    /// Creates a packer over a trace with the default tuning.
    pub fn new(trace: ArrivalTrace) -> Self {
        GreedyPacker::with_config(trace, GreedyPackerConfig::default())
    }

    /// Creates a packer over a trace with explicit tuning.
    pub fn with_config(trace: ArrivalTrace, config: GreedyPackerConfig) -> Self {
        GreedyPacker {
            events: trace.events,
            cursor: 0,
            pending: Vec::new(),
            departed: Vec::new(),
            config,
            deferred_placements: 0,
        }
    }

    /// Arrivals currently queued because no node had room.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Times an arrival had to be deferred to a later boundary because no
    /// node had room (the same unit can defer more than once).
    pub fn deferred_placements(&self) -> u64 {
        self.deferred_placements
    }
}

/// Position of the largest value among the eligible positions, ties broken
/// toward the *lowest* position (`Iterator::max_by` would take the highest —
/// the packer's documented tie-break is the lower node index).
fn first_max(free: &[f64], eligible: impl Fn(usize) -> bool) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, &value) in free.iter().enumerate() {
        if eligible(i) && best.is_none_or(|b| value > free[b]) {
            best = Some(i);
        }
    }
    best
}

/// Position of the smallest value among the eligible positions, ties broken
/// toward the lowest position.
fn first_min_where(free: &[f64], eligible: impl Fn(usize) -> bool) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, &value) in free.iter().enumerate() {
        if eligible(i) && best.is_none_or(|b| value < free[b]) {
            best = Some(i);
        }
    }
    best
}

impl FleetController for GreedyPacker {
    fn plan(&mut self, view: &FleetView) -> PlacementPlan {
        let mut plan = PlacementPlan::new();
        // Only Active nodes receive admissions and migration attaches.
        let active = |i: usize| view.nodes[i].state.is_active();
        // Free capacity per view position, debited as the plan assigns work.
        let mut free: Vec<f64> = view.nodes.iter().map(|n| n.placement.free()).collect();
        // Units this plan already departs or migrates (not eligible again).
        let mut touched: Vec<WorkloadId> = Vec::new();

        // 1. Absorb due trace events.
        while self.cursor < self.events.len() && self.events[self.cursor].at <= view.now {
            match &self.events[self.cursor].kind {
                TraceEventKind::Arrive(unit) => self.pending.push(*unit),
                TraceEventKind::Depart(id) => {
                    self.departed.push(*id);
                    if let Some(pos) = self.pending.iter().position(|u| u.id == *id) {
                        // Departed before it was ever placed.
                        self.pending.remove(pos);
                    } else if let Some(node) = view.locate(*id) {
                        let pos = view.nodes.iter().position(|n| n.node == node).expect("located");
                        let cores = view.nodes[pos]
                            .placement
                            .resident
                            .iter()
                            .find(|u| u.id == *id)
                            .map(|u| u.cores)
                            .unwrap_or(0.0);
                        free[pos] += cores;
                        touched.push(*id);
                        plan.depart(node, *id);
                    }
                }
            }
            self.cursor += 1;
        }

        // 2. Crash-displaced units re-enter at the front of the queue, so
        // re-placements come before fresh arrivals. Units already queued (a
        // prior boundary's enqueue whose admission failed) and units whose
        // trace departure has passed are skipped; the latter stay in the
        // fleet's displaced pool and are counted as failed placements when
        // the run ends.
        let mut queue: Vec<WorkloadUnit> = view
            .displaced
            .iter()
            .filter(|u| !self.departed.contains(&u.id))
            .filter(|u| !self.pending.iter().any(|p| p.id == u.id))
            .copied()
            .collect();
        queue.append(&mut self.pending);
        self.pending = queue;

        // 3. Evacuate draining nodes: each resident (smallest first, ties by
        // id) migrates to the emptiest Active node with room; what does not
        // fit stays resident and is retried at the next boundary.
        for pos in 0..view.nodes.len() {
            if view.nodes[pos].state != NodeState::Draining {
                continue;
            }
            let mut residents = view.nodes[pos].placement.resident.clone();
            residents.sort_by(|a, b| {
                a.cores.partial_cmp(&b.cores).expect("finite cores").then(a.id.cmp(&b.id))
            });
            for unit in residents {
                if touched.contains(&unit.id) {
                    continue; // departed this plan
                }
                let Some(target) = first_max(&free, |i| active(i) && free[i] + 1e-9 >= unit.cores)
                else {
                    continue;
                };
                free[target] -= unit.cores;
                free[pos] += unit.cores;
                touched.push(unit.id);
                plan.migrate(view.nodes[pos].node, view.nodes[target].node, unit.id);
            }
        }

        // 4. Worst-fit placement of queued arrivals and re-placements.
        // Eligibility is a fresh function of the current view: nodes that
        // joined since a unit was deferred are candidates like any other.
        let mut still_pending = Vec::new();
        for unit in self.pending.drain(..) {
            let target = first_max(&free, |i| active(i) && free[i] + 1e-9 >= unit.cores);
            match target {
                Some(i) => {
                    free[i] -= unit.cores;
                    plan.admit(view.nodes[i].node, unit);
                }
                None => {
                    self.deferred_placements += 1;
                    still_pending.push(unit);
                }
            }
        }
        self.pending = still_pending;

        // 5. Rebalancing migrations toward the emptiest Active node. The
        // donor is the least-free Active node that can actually contribute —
        // a node with no movable (unmoved, fitting) resident unit is skipped
        // rather than wedging rebalancing for the whole fleet (e.g. a
        // zero-capacity node is always the free-capacity minimum but never a
        // donor).
        if self.config.rebalance_gap > 0.0 && free.len() > 1 {
            for _ in 0..self.config.max_rebalances_per_epoch {
                let Some(recipient) = first_max(&free, active) else { break };
                // The smallest movable unit per eligible donor: resident,
                // not already moved this epoch, and fitting the recipient.
                let movable = |donor: usize| {
                    view.nodes[donor]
                        .placement
                        .resident
                        .iter()
                        .filter(|u| !touched.contains(&u.id))
                        .filter(|u| free[recipient] + 1e-9 >= u.cores)
                        .min_by(|a, b| {
                            a.cores
                                .partial_cmp(&b.cores)
                                .expect("finite cores")
                                .then(a.id.cmp(&b.id))
                        })
                        .copied()
                };
                let donor = first_min_where(&free, |i| {
                    active(i)
                        && i != recipient
                        && free[recipient] - free[i] >= self.config.rebalance_gap
                        && movable(i).is_some()
                });
                let Some(donor) = donor else { break };
                let unit = movable(donor).expect("donor eligibility checked");
                free[donor] += unit.cores;
                free[recipient] -= unit.cores;
                touched.push(unit.id);
                plan.migrate(view.nodes[donor].node, view.nodes[recipient].node, unit.id);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_of(now: Timestamp, nodes: Vec<(NodePlacement, NodeState)>) -> FleetView {
        FleetView {
            now,
            epoch: 0,
            nodes: nodes
                .into_iter()
                .enumerate()
                .map(|(i, (placement, state))| NodeView {
                    node: i,
                    agents: Vec::new(),
                    telemetry: Vec::new(),
                    placement,
                    state,
                })
                .collect(),
            displaced: Vec::new(),
        }
    }

    fn view_at(now: Timestamp, nodes: Vec<NodePlacement>) -> FleetView {
        view_of(now, nodes.into_iter().map(|p| (p, NodeState::Active)).collect())
    }

    fn view(nodes: Vec<NodePlacement>) -> FleetView {
        view_at(Timestamp::from_secs(1), nodes)
    }

    fn placeable(capacity: f64, resident: Vec<WorkloadUnit>) -> NodePlacement {
        NodePlacement { capacity, resident }
    }

    #[test]
    fn node_placement_accounting() {
        let p = placeable(
            8.0,
            vec![WorkloadUnit::new(WorkloadId(0), 2.0), WorkloadUnit::new(WorkloadId(1), 1.5)],
        );
        assert_eq!(p.used(), 3.5);
        assert_eq!(p.free(), 4.5);
        assert!((p.occupancy() - 3.5 / 8.0).abs() < 1e-12);
        assert!(p.hosts(WorkloadId(1)));
        assert!(!p.hosts(WorkloadId(2)));
        let none = NodePlacement::none();
        assert_eq!(none.occupancy(), 0.0);
        assert_eq!(none.free(), 0.0);
    }

    #[test]
    fn arrival_trace_is_deterministic_and_ordered() {
        let config = ArrivalTraceConfig { workloads: 16, ..ArrivalTraceConfig::default() };
        let a = ArrivalTrace::generate(7, &config);
        let b = ArrivalTrace::generate(7, &config);
        assert_eq!(a, b);
        assert_ne!(a, ArrivalTrace::generate(8, &config));
        assert_eq!(a.arrivals(), 16);
        assert_eq!(a.events().len(), 32);
        for pair in a.events().windows(2) {
            assert!(pair[0].at <= pair[1].at, "events must be time-sorted");
        }
        // Every arrival precedes its own departure.
        for (i, event) in a.events().iter().enumerate() {
            if let TraceEventKind::Depart(id) = &event.kind {
                let arrived_before = a.events()[..i]
                    .iter()
                    .any(|e| matches!(&e.kind, TraceEventKind::Arrive(u) if u.id == *id));
                assert!(arrived_before, "{id} departs before arriving");
            }
        }
        // Sizes and lifetimes stay in their configured ranges.
        for event in a.events() {
            if let TraceEventKind::Arrive(unit) = &event.kind {
                assert!(unit.cores >= config.min_cores && unit.cores <= config.max_cores);
                assert!((0.6..=1.0).contains(&unit.cpu_bound_fraction));
            }
        }
    }

    #[test]
    fn packer_places_worst_fit() {
        // Rebalancing off so the test isolates the placement decision.
        let mut packer = GreedyPacker::with_config(
            ArrivalTrace::empty(),
            GreedyPackerConfig { rebalance_gap: 0.0, max_rebalances_per_epoch: 0 },
        );
        packer.pending.push(WorkloadUnit::new(WorkloadId(9), 1.0));
        let v = view(vec![
            placeable(8.0, vec![WorkloadUnit::new(WorkloadId(0), 5.0)]), // free 3
            placeable(8.0, vec![WorkloadUnit::new(WorkloadId(1), 1.0)]), // free 7 <- target
            placeable(4.0, vec![]),                                      // free 4
        ]);
        let plan = packer.plan(&v);
        assert_eq!(
            plan.commands(),
            &[FleetCommand::Admit { node: 1, unit: WorkloadUnit::new(WorkloadId(9), 1.0) }]
        );
    }

    #[test]
    fn packer_ties_break_toward_the_lower_node_index() {
        let mut packer = GreedyPacker::with_config(
            ArrivalTrace::empty(),
            GreedyPackerConfig { rebalance_gap: 0.0, max_rebalances_per_epoch: 0 },
        );
        packer.pending.push(WorkloadUnit::new(WorkloadId(0), 1.0));
        // Three equally empty nodes: the documented tie-break is the lowest
        // node index (Iterator::max_by would pick the highest).
        let v = view(vec![placeable(8.0, vec![]), placeable(8.0, vec![]), placeable(8.0, vec![])]);
        let plan = packer.plan(&v);
        assert!(matches!(plan.commands()[0], FleetCommand::Admit { node: 0, .. }));
    }

    #[test]
    fn packer_defers_when_nothing_fits_and_retries() {
        let trace = ArrivalTrace::empty();
        let mut packer = GreedyPacker::new(trace);
        packer.pending.push(WorkloadUnit::new(WorkloadId(3), 6.0));
        let full = view(vec![placeable(4.0, vec![])]);
        let plan = packer.plan(&full);
        assert!(plan.is_empty());
        assert_eq!(packer.pending(), 1);
        assert_eq!(packer.deferred_placements(), 1);
        // Once capacity appears, the queued unit is placed.
        let roomy = view(vec![placeable(8.0, vec![])]);
        let plan = packer.plan(&roomy);
        assert_eq!(plan.len(), 1);
        assert_eq!(packer.pending(), 0);
    }

    #[test]
    fn packer_departs_resident_units_and_forgets_unplaced_ones() {
        let unit = WorkloadUnit::new(WorkloadId(0), 1.0);
        let never_placed = WorkloadUnit::new(WorkloadId(1), 100.0);
        let trace = ArrivalTrace {
            events: vec![
                TraceEvent { at: Timestamp::from_millis(10), kind: TraceEventKind::Arrive(unit) },
                TraceEvent {
                    at: Timestamp::from_millis(20),
                    kind: TraceEventKind::Arrive(never_placed),
                },
                TraceEvent {
                    at: Timestamp::from_millis(900),
                    kind: TraceEventKind::Depart(unit.id),
                },
                TraceEvent {
                    at: Timestamp::from_millis(901),
                    kind: TraceEventKind::Depart(never_placed.id),
                },
            ],
            arrivals: 2,
        };
        let mut packer = GreedyPacker::new(trace);
        // First barrier (before the departures are due): both arrivals due;
        // only `unit` fits.
        let plan = packer.plan(&view_at(Timestamp::from_millis(100), vec![placeable(2.0, vec![])]));
        assert_eq!(plan.len(), 1);
        // Second barrier: `unit` is resident and departs; `never_placed`
        // departs silently from the queue.
        let plan = packer.plan(&view(vec![placeable(2.0, vec![unit])]));
        assert_eq!(plan.commands(), &[FleetCommand::Depart { node: 0, workload: unit.id }]);
        assert_eq!(packer.pending(), 0);
    }

    #[test]
    fn packer_rebalances_across_a_wide_gap() {
        let small = WorkloadUnit::new(WorkloadId(0), 1.0);
        let big = WorkloadUnit::new(WorkloadId(1), 4.0);
        let mut packer = GreedyPacker::with_config(
            ArrivalTrace::empty(),
            GreedyPackerConfig { rebalance_gap: 2.0, max_rebalances_per_epoch: 4 },
        );
        let v = view(vec![
            placeable(8.0, vec![small, big]), // free 3
            placeable(8.0, vec![]),           // free 8
        ]);
        let plan = packer.plan(&v);
        // The smallest unit moves from the loaded node to the empty one; the
        // remaining gap (7 free vs 4 free... after moving `small`) is checked
        // again and a second move of `big` closes it under the threshold.
        assert!(plan
            .commands()
            .iter()
            .any(|c| matches!(c, FleetCommand::Migrate { from: 0, to: 1, workload } if *workload == small.id)));
        // Disabled rebalancing issues nothing.
        let mut off = GreedyPacker::with_config(
            ArrivalTrace::empty(),
            GreedyPackerConfig { rebalance_gap: 0.0, max_rebalances_per_epoch: 4 },
        );
        assert!(off.plan(&v).is_empty());
    }

    #[test]
    fn zero_capacity_nodes_cannot_wedge_rebalancing() {
        // Node 0 has no placeable capacity (free == 0, the minimum) and no
        // residents; it must be skipped as donor so the real imbalance
        // between nodes 1 and 2 still rebalances.
        let stuck = WorkloadUnit::new(WorkloadId(4), 1.0);
        let mut packer = GreedyPacker::with_config(
            ArrivalTrace::empty(),
            GreedyPackerConfig { rebalance_gap: 2.0, max_rebalances_per_epoch: 1 },
        );
        let v = view(vec![
            placeable(0.0, vec![]),      // free 0 — not a donor
            placeable(8.0, vec![stuck]), // free 7
            placeable(8.0, vec![]),      // free 8... wait, gap 1 < 2
        ]);
        // Widen the gap: load node 1 heavily.
        let heavy = WorkloadUnit::new(WorkloadId(5), 5.0);
        let mut nodes = v.nodes;
        nodes[1].placement.resident.push(heavy); // free 2 vs free 8: gap 6
        let v = FleetView { nodes, ..v };
        let plan = packer.plan(&v);
        assert!(
            plan.commands()
                .iter()
                .any(|c| matches!(c, FleetCommand::Migrate { from: 1, to: 2, .. })),
            "node 1 must donate despite node 0 being the free-capacity minimum: {plan:?}"
        );
    }

    #[test]
    fn null_controller_is_empty() {
        let v = view(vec![placeable(8.0, vec![])]);
        assert!(NullController.plan(&v).is_empty());
    }

    #[test]
    fn placement_plan_collects_commands_and_lifecycle_events() {
        let mut plan = PlacementPlan::new();
        assert!(plan.is_empty());
        plan.admit(0, WorkloadUnit::new(WorkloadId(0), 1.0));
        plan.depart(1, WorkloadId(2));
        plan.migrate(1, 0, WorkloadId(3));
        assert_eq!(plan.len(), 3);
        assert!(matches!(plan.commands()[2], FleetCommand::Migrate { from: 1, to: 0, .. }));
        assert_eq!(plan.clone().into_commands().len(), 3);

        plan.crash(2);
        plan.join();
        plan.drain(4);
        assert_eq!(plan.len(), 6);
        assert_eq!(
            plan.lifecycle_events(),
            &[
                LifecycleEvent::Crash { node: 2 },
                LifecycleEvent::Join,
                LifecycleEvent::Drain { node: 4 }
            ]
        );
        let (commands, lifecycle) = plan.into_parts();
        assert_eq!(commands.len(), 3);
        assert_eq!(lifecycle.len(), 3);
    }

    #[test]
    fn packer_only_targets_active_nodes() {
        let mut packer = GreedyPacker::with_config(
            ArrivalTrace::empty(),
            GreedyPackerConfig { rebalance_gap: 0.0, max_rebalances_per_epoch: 0 },
        );
        packer.pending.push(WorkloadUnit::new(WorkloadId(0), 1.0));
        // The roomiest nodes are draining/joining; only node 2 may admit.
        let v = view_of(
            Timestamp::from_secs(1),
            vec![
                (placeable(8.0, vec![]), NodeState::Draining),
                (placeable(8.0, vec![]), NodeState::Joining),
                (placeable(4.0, vec![]), NodeState::Active),
            ],
        );
        let plan = packer.plan(&v);
        assert_eq!(
            plan.commands(),
            &[FleetCommand::Admit { node: 2, unit: WorkloadUnit::new(WorkloadId(0), 1.0) }]
        );
        // With no Active node at all, the unit defers instead of landing on a
        // non-admitting node.
        let mut stuck = GreedyPacker::new(ArrivalTrace::empty());
        stuck.pending.push(WorkloadUnit::new(WorkloadId(1), 1.0));
        let v =
            view_of(Timestamp::from_secs(1), vec![(placeable(8.0, vec![]), NodeState::Draining)]);
        assert!(stuck.plan(&v).is_empty());
        assert_eq!(stuck.pending(), 1);
    }

    #[test]
    fn packer_evacuates_draining_nodes_smallest_first() {
        let small = WorkloadUnit::new(WorkloadId(0), 1.0);
        let big = WorkloadUnit::new(WorkloadId(1), 3.0);
        let mut packer = GreedyPacker::with_config(
            ArrivalTrace::empty(),
            GreedyPackerConfig { rebalance_gap: 0.0, max_rebalances_per_epoch: 0 },
        );
        let v = view_of(
            Timestamp::from_secs(1),
            vec![
                (placeable(8.0, vec![big, small]), NodeState::Draining),
                (placeable(8.0, vec![]), NodeState::Active), // free 8: takes both
                (placeable(2.0, vec![]), NodeState::Active), // free 2
            ],
        );
        let plan = packer.plan(&v);
        assert_eq!(
            plan.commands(),
            &[
                FleetCommand::Migrate { from: 0, to: 1, workload: small.id },
                FleetCommand::Migrate { from: 0, to: 1, workload: big.id },
            ],
            "smallest resident first, each to the then-emptiest Active node \
             (node 1 stays emptier than node 2 even after taking the first unit)"
        );
        // Nothing fits anywhere: the resident stays put, retried later.
        let mut wedged = GreedyPacker::new(ArrivalTrace::empty());
        let huge = WorkloadUnit::new(WorkloadId(2), 9.0);
        let v = view_of(
            Timestamp::from_secs(1),
            vec![
                (placeable(10.0, vec![huge]), NodeState::Draining),
                (placeable(4.0, vec![]), NodeState::Active),
            ],
        );
        assert!(wedged.plan(&v).is_empty());
    }

    #[test]
    fn packer_replaces_displaced_units_before_fresh_arrivals() {
        let displaced = WorkloadUnit::new(WorkloadId(7), 3.0);
        let fresh = WorkloadUnit::new(WorkloadId(8), 3.0);
        let mut packer = GreedyPacker::with_config(
            ArrivalTrace::empty(),
            GreedyPackerConfig { rebalance_gap: 0.0, max_rebalances_per_epoch: 0 },
        );
        packer.pending.push(fresh);
        // Room for only one of the two: the displaced unit must win.
        let mut v = view(vec![placeable(4.0, vec![])]);
        v.displaced.push(displaced);
        let plan = packer.plan(&v);
        assert_eq!(
            plan.commands(),
            &[FleetCommand::Admit { node: 0, unit: displaced }],
            "displaced units queue ahead of fresh arrivals"
        );
        assert_eq!(packer.pending(), 1, "the fresh arrival defers");
        // The same displaced unit reappearing in the pool is not re-queued
        // while it is still pending.
        let mut v = view(vec![placeable(0.0, vec![])]);
        v.displaced.push(displaced);
        packer.plan(&v);
        packer.plan(&v);
        assert_eq!(
            packer.pending.iter().filter(|u| u.id == displaced.id).count(),
            1,
            "pool re-offers must not duplicate the queue entry"
        );
    }

    #[test]
    fn packer_skips_displaced_units_that_already_departed() {
        let unit = WorkloadUnit::new(WorkloadId(0), 1.0);
        let trace = ArrivalTrace {
            events: vec![
                TraceEvent { at: Timestamp::from_millis(10), kind: TraceEventKind::Arrive(unit) },
                TraceEvent {
                    at: Timestamp::from_millis(500),
                    kind: TraceEventKind::Depart(unit.id),
                },
            ],
            arrivals: 1,
        };
        let mut packer = GreedyPacker::new(trace);
        // Boundary 1: arrive + admit.
        let plan = packer.plan(&view_at(Timestamp::from_millis(100), vec![placeable(4.0, vec![])]));
        assert_eq!(plan.commands().len(), 1);
        // The node hosting it crashed, and by the next boundary the unit's
        // departure has passed: the displaced copy must not be re-placed.
        let mut v = view_at(Timestamp::from_secs(1), vec![placeable(4.0, vec![])]);
        v.displaced.push(unit);
        let plan = packer.plan(&v);
        assert!(plan.is_empty(), "departed displaced units are not revived: {plan:?}");
        assert_eq!(packer.pending(), 0);
    }

    /// Regression test for the deferral-queue bugfix: a unit deferred while
    /// every node was full must land on a node that *joined after* the
    /// deferral — eligibility is re-evaluated against the current view, not
    /// the node set that existed when the unit was queued.
    #[test]
    fn deferred_units_land_on_nodes_joined_after_the_deferral() {
        let unit = WorkloadUnit::new(WorkloadId(0), 5.0);
        let mut packer = GreedyPacker::new(ArrivalTrace::empty());
        packer.pending.push(unit);
        // Boundary 1: one full node; the unit defers.
        let full = placeable(6.0, vec![WorkloadUnit::new(WorkloadId(9), 4.0)]);
        assert!(packer.plan(&view(vec![full.clone()])).is_empty());
        assert_eq!(packer.deferred_placements(), 1);
        // Boundary 2: a freshly joined node (index 1) has room; the deferred
        // unit must be admitted there.
        let v = view_of(
            Timestamp::from_secs(2),
            vec![(full, NodeState::Active), (placeable(6.0, vec![]), NodeState::Active)],
        );
        let plan = packer.plan(&v);
        assert_eq!(plan.commands(), &[FleetCommand::Admit { node: 1, unit }]);
        assert_eq!(packer.pending(), 0);
    }

    #[test]
    fn fleet_view_locates_workloads() {
        let unit = WorkloadUnit::new(WorkloadId(5), 1.0);
        let v = view(vec![placeable(4.0, vec![]), placeable(4.0, vec![unit])]);
        assert_eq!(v.locate(unit.id), Some(1));
        assert_eq!(v.locate(WorkloadId(99)), None);
        assert_eq!(v.nodes[1].reading("nope"), None);
    }
}
