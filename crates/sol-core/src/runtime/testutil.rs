//! Shared test fixtures for the runtime drivers: a counting environment and
//! a trivial agent, used by both the `node` and `sim` test suites so the two
//! stay in sync — plus [`ReferenceQueue`], the pre-wheel event queue kept
//! alive as the oracle for the scheduler-equivalence proptest.

use crate::actuator::{Actuator, ActuatorAssessment};
use crate::error::DataError;
use crate::model::{Model, ModelAssessment};
use crate::prediction::Prediction;
use crate::runtime::Environment;
use crate::schedule::Schedule;
use crate::time::{SimDuration, Timestamp};

/// The event queue [`NodeRuntime`](crate::runtime::node::NodeRuntime) used
/// before the time wheel: a binary heap over `(at, global_seq)`. It is the
/// reference model for the wheel's pop order — the equivalence proptest in
/// [`wheel`](crate::runtime::wheel) drives arbitrary
/// schedule/invalidate/peek/drain sequences through both and asserts
/// identical observable behaviour (a cancel+reschedule is an invalidate of
/// the old entry plus a fresh schedule, exactly how the runtime models it).
pub(crate) struct ReferenceQueue<K> {
    heap: std::collections::BinaryHeap<ReferenceEntry<K>>,
    seq: u64,
}

struct ReferenceEntry<K> {
    at: u64,
    seq: u64,
    kind: K,
}

impl<K> PartialEq for ReferenceEntry<K> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<K> Eq for ReferenceEntry<K> {}

impl<K> PartialOrd for ReferenceEntry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K> Ord for ReferenceEntry<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, pops want earliest-first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<K> ReferenceQueue<K> {
    pub(crate) fn new() -> Self {
        ReferenceQueue { heap: std::collections::BinaryHeap::new(), seq: 0 }
    }

    pub(crate) fn schedule(&mut self, at: Timestamp, kind: K) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(ReferenceEntry { at: at.as_nanos(), seq, kind });
    }

    /// Earliest pending event time, lazily discarding invalidated heads —
    /// the old runtime's peek semantics.
    pub(crate) fn peek(&mut self, valid: impl Fn(&K) -> bool) -> Option<Timestamp> {
        while let Some(e) = self.heap.peek() {
            if valid(&e.kind) {
                return Some(Timestamp::from_nanos(e.at));
            }
            self.heap.pop();
        }
        None
    }

    /// Pops every event due at or before `next` into `out`, in `(at, seq)`
    /// order, invalidated events included — the old runtime's pop loop.
    pub(crate) fn drain_due(&mut self, next: Timestamp, out: &mut Vec<K>) {
        while self.heap.peek().is_some_and(|e| e.at <= next.as_nanos()) {
            out.push(self.heap.pop().expect("peeked").kind);
        }
    }
}

/// A counter environment recording how far it was advanced.
#[derive(Debug, Default)]
pub(crate) struct StepEnv {
    pub(crate) last: Timestamp,
    pub(crate) advances: u64,
    pub(crate) fault: bool,
}

impl Environment for StepEnv {
    fn advance_to(&mut self, now: Timestamp) {
        assert!(now >= self.last, "environment time went backwards");
        self.last = now;
        self.advances += 1;
    }
}

/// A model that always collects and predicts the same value.
pub(crate) struct ConstModel {
    pub(crate) value: f64,
}

impl Model for ConstModel {
    type Data = f64;
    type Pred = f64;
    fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
        Ok(self.value)
    }
    fn validate_data(&self, d: &f64) -> bool {
        d.is_finite()
    }
    fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
    fn update_model(&mut self, _now: Timestamp) {}
    fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
        Some(Prediction::model(self.value, now, now + SimDuration::from_secs(1)))
    }
    fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
        Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
    }
    fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
        ModelAssessment::Healthy
    }
}

/// An actuator counting its calls.
#[derive(Default)]
pub(crate) struct CountActuator {
    pub(crate) actions: u64,
    pub(crate) with_pred: u64,
    pub(crate) cleaned: bool,
}

impl Actuator for CountActuator {
    type Pred = f64;
    fn take_action(&mut self, _now: Timestamp, pred: Option<&Prediction<f64>>) {
        self.actions += 1;
        if pred.is_some() {
            self.with_pred += 1;
        }
    }
    fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
        ActuatorAssessment::Acceptable
    }
    fn mitigate(&mut self, _now: Timestamp) {}
    fn clean_up(&mut self, _now: Timestamp) {
        self.cleaned = true;
    }
}

/// A 5-samples-per-epoch schedule collecting every `collect_ms`, with the
/// epoch timeout comfortably above 5 samples' worth so epochs never time
/// out, a 2 s actuation deadline, and a 1 s safeguard interval.
pub(crate) fn schedule(collect_ms: u64) -> Schedule {
    Schedule::builder()
        .data_per_epoch(5)
        .data_collect_interval(SimDuration::from_millis(collect_ms))
        .max_epoch_time(SimDuration::from_millis(collect_ms * 20))
        .assess_model_every_epochs(1)
        .max_actuation_delay(SimDuration::from_secs(2))
        .assess_actuator_interval(SimDuration::from_secs(1))
        .build()
        .unwrap()
}
