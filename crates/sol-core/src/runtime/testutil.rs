//! Shared test fixtures for the runtime drivers: a counting environment and
//! a trivial agent, used by both the `node` and `sim` test suites so the two
//! stay in sync.

use crate::actuator::{Actuator, ActuatorAssessment};
use crate::error::DataError;
use crate::model::{Model, ModelAssessment};
use crate::prediction::Prediction;
use crate::runtime::Environment;
use crate::schedule::Schedule;
use crate::time::{SimDuration, Timestamp};

/// A counter environment recording how far it was advanced.
#[derive(Debug, Default)]
pub(crate) struct StepEnv {
    pub(crate) last: Timestamp,
    pub(crate) advances: u64,
    pub(crate) fault: bool,
}

impl Environment for StepEnv {
    fn advance_to(&mut self, now: Timestamp) {
        assert!(now >= self.last, "environment time went backwards");
        self.last = now;
        self.advances += 1;
    }
}

/// A model that always collects and predicts the same value.
pub(crate) struct ConstModel {
    pub(crate) value: f64,
}

impl Model for ConstModel {
    type Data = f64;
    type Pred = f64;
    fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
        Ok(self.value)
    }
    fn validate_data(&self, d: &f64) -> bool {
        d.is_finite()
    }
    fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
    fn update_model(&mut self, _now: Timestamp) {}
    fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
        Some(Prediction::model(self.value, now, now + SimDuration::from_secs(1)))
    }
    fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
        Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
    }
    fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
        ModelAssessment::Healthy
    }
}

/// An actuator counting its calls.
#[derive(Default)]
pub(crate) struct CountActuator {
    pub(crate) actions: u64,
    pub(crate) with_pred: u64,
    pub(crate) cleaned: bool,
}

impl Actuator for CountActuator {
    type Pred = f64;
    fn take_action(&mut self, _now: Timestamp, pred: Option<&Prediction<f64>>) {
        self.actions += 1;
        if pred.is_some() {
            self.with_pred += 1;
        }
    }
    fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
        ActuatorAssessment::Acceptable
    }
    fn mitigate(&mut self, _now: Timestamp) {}
    fn clean_up(&mut self, _now: Timestamp) {
        self.cleaned = true;
    }
}

/// A 5-samples-per-epoch schedule collecting every `collect_ms`, with the
/// epoch timeout comfortably above 5 samples' worth so epochs never time
/// out, a 2 s actuation deadline, and a 1 s safeguard interval.
pub(crate) fn schedule(collect_ms: u64) -> Schedule {
    Schedule::builder()
        .data_per_epoch(5)
        .data_collect_interval(SimDuration::from_millis(collect_ms))
        .max_epoch_time(SimDuration::from_millis(collect_ms * 20))
        .assess_model_every_epochs(1)
        .max_actuation_delay(SimDuration::from_secs(2))
        .assess_actuator_interval(SimDuration::from_secs(1))
        .build()
        .unwrap()
}
