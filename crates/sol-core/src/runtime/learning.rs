//! The fleet learning plane: exchange, robust aggregation, and
//! redistribution of learned state across node churn.
//!
//! SOL's agents learn on-node, but a fleet of thousands of nodes learns the
//! same task thousands of times over. The learning plane turns the fleet's
//! epoch barrier into a periodic model-exchange point: nodes piggyback
//! [`LearnedState`] snapshots of their learners on the barrier observations
//! they already ship (quiet learners ship nothing, exactly like
//! [`NodeDelta`](crate::runtime::placement::NodeDelta)s), the coordinator
//! folds the per-role states with a robust [`AggregationRule`] —
//! coordinate-wise median and trimmed mean tolerate a bounded number of
//! poisoned or faulty contributions, where a plain mean does not — and
//! redistributes the aggregate under a [`BlendPolicy`]. Nodes
//! that [`Join`](crate::runtime::lifecycle::LifecycleEvent::Join) mid-run
//! warm-start from the latest aggregate instead of learning from scratch.
//!
//! Everything here is keyed by node index and applied coordinator-side in
//! index order, so fleet reports stay byte-identical across worker-thread
//! counts — the determinism contract of
//! [`FleetRuntime`](crate::runtime::fleet::FleetRuntime) extends to the
//! learning plane unchanged.

use serde::Serialize;
use sol_ml::exchange::{AggregationRule, BlendPolicy, LearnedState};

/// Configuration of the fleet learning plane
/// ([`FleetConfig::learning`](crate::runtime::fleet::FleetConfig::learning)).
///
/// # Examples
///
/// ```
/// use sol_core::prelude::*;
/// use sol_ml::exchange::{AggregationRule, BlendPolicy};
///
/// let plane = LearningPlane {
///     exchange_every: 4,
///     rule: AggregationRule::TrimmedMean { k: 1 },
///     blend: BlendPolicy::Mix { weight: 0.5 },
/// };
/// let config = FleetConfig { learning: Some(plane), ..FleetConfig::default() };
/// assert_eq!(config.learning.unwrap().exchange_every, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LearningPlane {
    /// Run an exchange round every this-many epoch barriers (1 = every
    /// barrier). Must be at least 1.
    pub exchange_every: u64,
    /// How the coordinator folds per-node states into the fleet aggregate.
    /// The robust rules (`CoordinateWiseMedian`, `TrimmedMean`) tolerate a
    /// bounded number of arbitrarily corrupted contributions.
    pub rule: AggregationRule,
    /// How each node adopts the aggregate: replace its local state outright
    /// or mix convexly.
    pub blend: BlendPolicy,
}

impl Default for LearningPlane {
    /// Exchange at every barrier, aggregate by coordinate-wise median (the
    /// safe default: robust to a minority of corrupted nodes), replace local
    /// state with the aggregate.
    fn default() -> Self {
        LearningPlane {
            exchange_every: 1,
            rule: AggregationRule::CoordinateWiseMedian,
            blend: BlendPolicy::Replace,
        }
    }
}

impl LearningPlane {
    /// Validates the plane, returning a human-readable complaint for the
    /// fleet config error path.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.exchange_every == 0 {
            return Err("learning plane: exchange_every must be at least 1".into());
        }
        if let BlendPolicy::Mix { weight } = self.blend {
            if !weight.is_finite() || !(0.0..=1.0).contains(&weight) {
                return Err(format!(
                    "learning plane: blend weight must be a finite value in [0, 1], got {weight}"
                ));
            }
        }
        Ok(())
    }

    /// Whether the barrier at 0-based epoch index `epoch` is an exchange
    /// round (the `exchange_every`-th, counting from the first barrier).
    pub(crate) fn is_learn_epoch(&self, epoch: u64) -> bool {
        (epoch + 1).is_multiple_of(self.exchange_every)
    }
}

/// Counters of one fleet run's learning-plane activity
/// ([`FleetReport::learning`](crate::runtime::fleet::FleetReport::learning)).
/// All-zero when the fleet ran without a [`LearningPlane`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct LearningStats {
    /// Exchange rounds the coordinator ran.
    pub rounds: u64,
    /// Node exports absorbed across all rounds (a node that shipped at least
    /// one changed state counts once per round).
    pub participants: u64,
    /// Total payload exchanged, in bytes of `f64` values, counting both
    /// directions (node exports absorbed plus aggregates redistributed).
    pub bytes_exchanged: u64,
    /// The redistribution share of [`bytes_exchanged`](Self::bytes_exchanged):
    /// bytes of blended aggregates imported back into nodes (running rounds
    /// and joiner warm-starts alike). `bytes_exchanged − bytes_redistributed`
    /// is therefore the export direction, so the two counters together
    /// answer which way a learning fleet's bandwidth actually flows.
    pub bytes_redistributed: u64,
    /// States excluded from aggregation or redistribution because their kind
    /// or shape disagreed with the role's reference state, plus imports the
    /// receiving model refused.
    pub rejected: u64,
    /// Blended aggregates imported back into running nodes (one per agent
    /// slot per node per round; unchanged blends are skipped and not
    /// counted).
    pub redistributed: u64,
    /// Nodes that joined mid-run and were seeded from the fleet aggregate
    /// instead of learning from scratch.
    pub warm_starts: u64,
}

impl LearningStats {
    /// Adds another run's counters onto this one, field by field (used by
    /// callers comparing or pooling runs). The exhaustive destructuring (no
    /// `..`) makes adding a field without accumulating it a compile error.
    pub fn accumulate(&mut self, other: &LearningStats) {
        let LearningStats {
            rounds,
            participants,
            bytes_exchanged,
            bytes_redistributed,
            rejected,
            redistributed,
            warm_starts,
        } = other;
        self.rounds += rounds;
        self.participants += participants;
        self.bytes_exchanged += bytes_exchanged;
        self.bytes_redistributed += bytes_redistributed;
        self.rejected += rejected;
        self.redistributed += redistributed;
        self.warm_starts += warm_starts;
    }
}

/// One node's learning-plane payload for a barrier: the learned states that
/// changed since the node's last export, keyed by agent slot (registration
/// order). Piggybacks on the worker's `EpochDone` message.
#[derive(Debug, Clone)]
pub(crate) struct NodeLearnedExport {
    /// The exporting node's fleet index.
    pub(crate) node: usize,
    /// `(agent slot, state)` pairs, in slot order. Never empty — a node with
    /// nothing new ships no export at all.
    pub(crate) states: Vec<(usize, LearnedState)>,
}

/// The coordinator's half of the learning plane: a per-node mirror of the
/// last known learned states (patched from exports, exactly like the
/// placement base view is patched from `NodeDelta`s), the latest per-slot
/// fleet aggregates (kept for warm-starting joiners between rounds), and the
/// run's cumulative [`LearningStats`].
///
/// All methods are deterministic functions of their inputs; callers must
/// feed them node indices in ascending order where order matters (`round`
/// and the redistribution loop do), which the fleet coordinator guarantees
/// by iterating the registry in index order.
pub(crate) struct LearningExchange {
    plane: LearningPlane,
    /// `mirror[node][slot]` is the last state node `node`'s agent `slot`
    /// exported (or had imported), `None` before its first export. Retired
    /// nodes' rows are cleared so they stop contributing to aggregates.
    mirror: Vec<Vec<Option<LearnedState>>>,
    /// Latest per-slot aggregates, refreshed by [`round`](Self::round).
    aggregates: Vec<Option<LearnedState>>,
    stats: LearningStats,
}

impl LearningExchange {
    pub(crate) fn new(plane: LearningPlane, nodes: usize) -> Self {
        LearningExchange {
            plane,
            mirror: vec![Vec::new(); nodes],
            aggregates: Vec::new(),
            stats: LearningStats::default(),
        }
    }

    pub(crate) fn plane(&self) -> &LearningPlane {
        &self.plane
    }

    /// Grows the mirror to `nodes` rows (joined nodes extend the fleet; the
    /// mirror must extend with it before their first export).
    pub(crate) fn grow(&mut self, nodes: usize) {
        if nodes > self.mirror.len() {
            self.mirror.resize(nodes, Vec::new());
        }
    }

    /// Clears a retired node's mirror row: crashed and drained nodes stop
    /// contributing to aggregates from the barrier they retire at.
    pub(crate) fn forget(&mut self, node: usize) {
        if let Some(row) = self.mirror.get_mut(node) {
            row.clear();
        }
    }

    /// Absorbs a barrier's exports into the mirror. Exports are keyed by
    /// node index, so arrival order (which depends on worker scheduling)
    /// never affects the result; the sort below is only so `participants`
    /// and `bytes_exchanged` grow in a canonical order for debugging.
    pub(crate) fn absorb(&mut self, mut exports: Vec<NodeLearnedExport>) {
        exports.sort_by_key(|export| export.node);
        for export in exports {
            debug_assert!(!export.states.is_empty(), "quiet nodes ship no export");
            self.stats.participants += 1;
            let row = &mut self.mirror[export.node];
            for (slot, state) in export.states {
                if row.len() <= slot {
                    row.resize(slot + 1, None);
                }
                self.stats.bytes_exchanged += state.byte_len() as u64;
                row[slot] = Some(state);
            }
        }
    }

    /// Runs one exchange round: folds the mirrored states of `live` (node
    /// indices in ascending order) into per-slot aggregates under the
    /// plane's rule. The first live node holding a state for a slot is that
    /// slot's reference; states of other nodes that disagree with it in kind
    /// or shape are excluded and counted as rejected. Slots nobody exported
    /// aggregate to `None`.
    pub(crate) fn round(&mut self, live: &[usize]) {
        self.stats.rounds += 1;
        let slots = live.iter().map(|&node| self.mirror[node].len()).max().unwrap_or(0);
        let mut aggregates: Vec<Option<LearnedState>> = Vec::with_capacity(slots);
        for slot in 0..slots {
            let mut column: Vec<&LearnedState> = Vec::with_capacity(live.len());
            for &node in live {
                let Some(state) = self.mirror[node].get(slot).and_then(Option::as_ref) else {
                    continue;
                };
                match column.first() {
                    Some(reference) if reference.compatible_with(state).is_err() => {
                        self.stats.rejected += 1;
                    }
                    _ => column.push(state),
                }
            }
            let column: Vec<LearnedState> = column.into_iter().cloned().collect();
            // A fold of finite states can still overflow to infinity (e.g. a
            // mean of huge poisoned values); such a round yields no aggregate
            // for the slot rather than poisoning every node with it.
            aggregates.push(self.plane.rule.aggregate(&column).ok());
        }
        self.aggregates = aggregates;
    }

    /// The latest per-slot aggregates (empty before the first round).
    pub(crate) fn aggregates(&self) -> &[Option<LearnedState>] {
        &self.aggregates
    }

    /// The mirrored local state of `(node, slot)`, if any.
    pub(crate) fn local(&self, node: usize, slot: usize) -> Option<&LearnedState> {
        self.mirror.get(node)?.get(slot)?.as_ref()
    }

    /// Records a successful import of a blended aggregate into a running
    /// node, updating the mirror so the next diff baselines against what the
    /// node now actually holds.
    pub(crate) fn record_import(&mut self, node: usize, slot: usize, state: LearnedState) {
        self.stats.redistributed += 1;
        self.stats.bytes_exchanged += state.byte_len() as u64;
        self.stats.bytes_redistributed += state.byte_len() as u64;
        let row = &mut self.mirror[node];
        if row.len() <= slot {
            row.resize(slot + 1, None);
        }
        row[slot] = Some(state);
    }

    /// Records an import the receiving model refused (or a blend that could
    /// not be formed): the state is dropped, loudly.
    pub(crate) fn record_rejected(&mut self) {
        self.stats.rejected += 1;
    }

    /// Records one warm-started joiner (counted per node, however many of
    /// its agent slots imported an aggregate).
    pub(crate) fn record_warm_start(&mut self) {
        self.stats.warm_starts += 1;
    }

    /// The run's cumulative counters.
    pub(crate) fn stats(&self) -> LearningStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sol_ml::exchange::StateKind;

    fn state(values: &[f64]) -> LearnedState {
        LearnedState::new(StateKind::LinearWeights, vec![values.len()], values.to_vec()).unwrap()
    }

    fn export(node: usize, slot: usize, values: &[f64]) -> NodeLearnedExport {
        NodeLearnedExport { node, states: vec![(slot, state(values))] }
    }

    #[test]
    fn plane_validation_rejects_degenerate_configs() {
        assert!(LearningPlane::default().validate().is_ok());
        let zero = LearningPlane { exchange_every: 0, ..LearningPlane::default() };
        assert!(zero.validate().unwrap_err().contains("exchange_every"));
        for weight in [f64::NAN, -0.1, 1.5] {
            let mix =
                LearningPlane { blend: BlendPolicy::Mix { weight }, ..LearningPlane::default() };
            assert!(mix.validate().unwrap_err().contains("blend weight"));
        }
        let edge =
            LearningPlane { blend: BlendPolicy::Mix { weight: 1.0 }, ..LearningPlane::default() };
        assert!(edge.validate().is_ok());
    }

    #[test]
    fn learn_epochs_follow_the_exchange_cadence() {
        let every_third = LearningPlane { exchange_every: 3, ..LearningPlane::default() };
        let rounds: Vec<u64> = (0..9).filter(|&k| every_third.is_learn_epoch(k)).collect();
        assert_eq!(rounds, vec![2, 5, 8]);
        let every = LearningPlane::default();
        assert!((0..4).all(|k| every.is_learn_epoch(k)));
    }

    #[test]
    fn absorb_then_round_aggregates_in_node_order() {
        let mut exchange = LearningExchange::new(LearningPlane::default(), 3);
        // Deliver out of order, as a racing worker pool would.
        exchange.absorb(vec![
            export(2, 0, &[3.0, 30.0]),
            export(0, 0, &[1.0, 10.0]),
            export(1, 0, &[2.0, 20.0]),
        ]);
        exchange.round(&[0, 1, 2]);
        let aggregate = exchange.aggregates()[0].as_ref().unwrap();
        assert_eq!(aggregate.values(), &[2.0, 20.0]);
        let stats = exchange.stats();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.participants, 3);
        assert_eq!(stats.bytes_exchanged, 3 * 2 * 8);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn incompatible_states_are_rejected_against_the_first_seen_reference() {
        let mut exchange = LearningExchange::new(LearningPlane::default(), 3);
        exchange.absorb(vec![
            export(0, 0, &[1.0, 10.0]),
            // Wrong shape for the slot: excluded, counted, and harmless.
            export(1, 0, &[5.0, 5.0, 5.0]),
            export(2, 0, &[3.0, 30.0]),
        ]);
        exchange.round(&[0, 1, 2]);
        let aggregate = exchange.aggregates()[0].as_ref().unwrap();
        assert_eq!(aggregate.shape(), &[2]);
        assert_eq!(aggregate.values(), &[2.0, 20.0]);
        assert_eq!(exchange.stats().rejected, 1);
    }

    #[test]
    fn forgotten_nodes_stop_contributing() {
        let mut exchange = LearningExchange::new(LearningPlane::default(), 2);
        exchange.absorb(vec![export(0, 0, &[1.0]), export(1, 0, &[9.0])]);
        exchange.forget(1);
        exchange.round(&[0, 1]);
        assert_eq!(exchange.aggregates()[0].as_ref().unwrap().values(), &[1.0]);
        assert!(exchange.local(1, 0).is_none());
    }

    #[test]
    fn unexported_slots_aggregate_to_none() {
        let mut exchange = LearningExchange::new(LearningPlane::default(), 2);
        exchange.absorb(vec![NodeLearnedExport { node: 0, states: vec![(1, state(&[4.0]))] }]);
        exchange.round(&[0, 1]);
        assert_eq!(exchange.aggregates().len(), 2);
        assert!(exchange.aggregates()[0].is_none());
        assert_eq!(exchange.aggregates()[1].as_ref().unwrap().values(), &[4.0]);
    }

    #[test]
    fn imports_update_the_mirror_and_count_bytes_both_ways() {
        let mut exchange = LearningExchange::new(LearningPlane::default(), 1);
        exchange.absorb(vec![export(0, 0, &[1.0, 2.0])]);
        exchange.record_import(0, 0, state(&[5.0, 6.0]));
        assert_eq!(exchange.local(0, 0).unwrap().values(), &[5.0, 6.0]);
        let stats = exchange.stats();
        assert_eq!(stats.redistributed, 1);
        assert_eq!(stats.bytes_exchanged, 2 * 2 * 8);
        // Only the import direction counts as redistribution traffic.
        assert_eq!(stats.bytes_redistributed, 2 * 8);
    }

    #[test]
    fn grow_extends_the_mirror_for_joiners() {
        let mut exchange = LearningExchange::new(LearningPlane::default(), 1);
        exchange.grow(3);
        exchange.absorb(vec![export(2, 0, &[7.0])]);
        assert_eq!(exchange.local(2, 0).unwrap().values(), &[7.0]);
    }

    #[test]
    fn stats_accumulate_field_by_field() {
        // Reminder: this destructuring must stay exhaustive. If adding a
        // field here just broke the build, extend `accumulate` (and this
        // test) rather than papering over it with `..`.
        let a = LearningStats {
            rounds: 1,
            participants: 2,
            bytes_exchanged: 3,
            bytes_redistributed: 4,
            rejected: 5,
            redistributed: 6,
            warm_starts: 7,
        };
        let mut total = a;
        total.accumulate(&a);
        assert_eq!(
            total,
            LearningStats {
                rounds: 2,
                participants: 4,
                bytes_exchanged: 6,
                bytes_redistributed: 8,
                rejected: 10,
                redistributed: 12,
                warm_starts: 14,
            }
        );
    }
}
