//! A two-level bucketed time wheel: the event queue under
//! [`NodeRuntime`](crate::runtime::node::NodeRuntime).
//!
//! A binary heap pays `O(log n)` pointer-chasing per event and a global `u64`
//! sequence number per push. The simulation's event population is small but
//! extremely hot (tens of thousands of 1 ms-cadence wakes per virtual
//! minute), and almost every event fires within a few milliseconds of being
//! scheduled. The wheel exploits that shape:
//!
//! * **Near horizon** — `BUCKETS` slots of `GRANULE` nanoseconds each
//!   (~1 ms, a power of two so slot mapping is a shift+mask). An event due
//!   within the wheel's span is appended to its slot's `Vec` — amortized one
//!   bounds check and a pointer bump. Slots are drained through a head
//!   cursor and their buffers are cleared-but-retained, so steady state runs
//!   allocation-free ("slab" reuse across epochs).
//! * **Far horizon** — everything past the span goes to a small overflow
//!   heap and migrates into the wheel as the base advances. Migration
//!   happens *before* any same-time direct insert can target those slots, so
//!   migrated events keep their scheduling order.
//!
//! # Exact pop order
//!
//! Events pop in exactly the old heap's order: earliest timestamp first,
//! ties broken by schedule order. Within a slot, insertion order is recorded
//! by a *per-bucket* `u32` counter (reset every time the slot empties —
//! there is no global sequence state), and a slot is lazily sorted by
//! `(at, seq)` only when pushes arrived out of time order. Across slots,
//! ring position is time order; across the two levels, the overflow heap
//! orders by `(at, seq)` and migrates ahead of any direct insert at the same
//! timestamp. The equivalence proptest in this module (driving the
//! test-only `runtime::testutil::ReferenceQueue` model) feeds arbitrary
//! schedule/drain/invalidate sequences through this wheel and a
//! reference heap and asserts identical pop sequences.

use std::collections::BinaryHeap;

use crate::time::Timestamp;

/// Number of near-horizon slots (power of two).
const BUCKETS: usize = 32;
/// log2 of each slot's width in nanoseconds (2^20 ns ≈ 1.05 ms).
const GRANULE_SHIFT: u32 = 20;
/// Width of one slot in nanoseconds.
const GRANULE: u64 = 1 << GRANULE_SHIFT;
/// Virtual time covered by the near horizon.
const SPAN: u64 = GRANULE * BUCKETS as u64;

/// An event resident in a near-horizon slot.
struct BucketEntry<K> {
    at: u64,
    /// Per-bucket insertion counter value at push time.
    seq: u32,
    kind: K,
}

/// One near-horizon slot: a drain-in-place vector of events.
struct Bucket<K> {
    events: Vec<BucketEntry<K>>,
    /// Index of the first undrained event; everything before it is dead.
    /// Draining advances this cursor instead of shifting the vector, and the
    /// buffer (capacity retained) is recycled once fully drained.
    head: usize,
    /// Next insertion sequence; reset to zero when the slot empties.
    seq: u32,
    /// Whether `events[head..]` is known to be `(at, seq)`-sorted.
    sorted: bool,
}

impl<K> Bucket<K> {
    const fn new() -> Self {
        Bucket { events: Vec::new(), head: 0, seq: 0, sorted: true }
    }

    fn is_empty(&self) -> bool {
        self.head == self.events.len()
    }

    fn push(&mut self, at: u64, kind: K) {
        if let Some(last) = self.events.last() {
            if at < last.at {
                self.sorted = false;
            }
        }
        let seq = self.seq;
        self.seq += 1;
        self.events.push(BucketEntry { at, seq, kind });
    }

    /// Sorts the undrained tail if pushes arrived out of time order. Keys
    /// `(at, seq)` are unique within a slot, so the order is total and the
    /// unstable sort is exact.
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.events[self.head..].sort_unstable_by_key(|e| (e.at, e.seq));
            self.sorted = true;
        }
    }

    /// Recycles the slot once fully drained: capacity is retained, the
    /// sequence counter restarts.
    fn recycle(&mut self) {
        debug_assert!(self.is_empty());
        self.events.clear();
        self.head = 0;
        self.seq = 0;
        self.sorted = true;
    }
}

/// An event parked beyond the near horizon.
struct OverflowEntry<K> {
    at: u64,
    /// Overflow-level insertion counter value at push time.
    seq: u64,
    kind: K,
}

impl<K> PartialEq for OverflowEntry<K> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<K> Eq for OverflowEntry<K> {}

impl<K> PartialOrd for OverflowEntry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K> Ord for OverflowEntry<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, migration wants earliest first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The two-level wheel. `K` is the event payload; the scheduler itself only
/// knows times and insertion order.
///
/// The type is `#[doc(hidden)]` public: it is an internal scheduling
/// primitive of [`NodeRuntime`](crate::runtime::node::NodeRuntime), exposed
/// only so the workspace's micro-benchmarks can race it against the old
/// binary-heap discipline. It is exempt from semver.
pub struct TimeWheel<K> {
    /// Slot-aligned lower edge of the near horizon. Every undrained event in
    /// the slots satisfies `base <= at < base + SPAN` — except past-due
    /// events, which are clamped into the base slot.
    base: u64,
    buckets: Box<[Bucket<K>; BUCKETS]>,
    /// Events at or beyond `base + SPAN`, ordered `(at, seq)`.
    overflow: BinaryHeap<OverflowEntry<K>>,
    overflow_seq: u64,
    /// Total undrained events across both levels.
    len: usize,
}

impl<K> Default for TimeWheel<K> {
    fn default() -> Self {
        TimeWheel::new()
    }
}

impl<K> TimeWheel<K> {
    /// An empty wheel with its base at the origin of simulated time.
    pub fn new() -> Self {
        TimeWheel {
            base: 0,
            buckets: Box::new([const { Bucket::new() }; BUCKETS]),
            overflow: BinaryHeap::new(),
            overflow_seq: 0,
            len: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The near horizon's exclusive upper edge, saturating so `Timestamp::MAX`
    /// sentinels cannot wrap the comparison.
    fn horizon(&self) -> u64 {
        self.base.saturating_add(SPAN)
    }

    fn slot_of(&self, at: u64) -> usize {
        // Past-due events (schedules at or before already-drained time) are
        // clamped into the base slot; they still pop first because slots
        // order by `(at, seq)`.
        let eff = at.max(self.base);
        ((eff >> GRANULE_SHIFT) as usize) & (BUCKETS - 1)
    }

    /// Inserts an event. `O(1)` amortized: an append for the near horizon, a
    /// heap push for the far one.
    pub fn schedule(&mut self, at: Timestamp, kind: K) {
        let at = at.as_nanos();
        if at >= self.horizon() {
            let seq = self.overflow_seq;
            self.overflow_seq += 1;
            self.overflow.push(OverflowEntry { at, seq, kind });
        } else {
            let slot = self.slot_of(at);
            self.buckets[slot].push(at, kind);
        }
        self.len += 1;
    }

    /// Pulls every overflow event now inside the near horizon into its slot,
    /// in `(at, seq)` order so migrated events keep their scheduling order
    /// (they always precede later direct inserts at the same timestamp).
    fn migrate_overflow(&mut self) {
        let horizon = self.horizon();
        while self.overflow.peek().map(|e| e.at < horizon).unwrap_or(false) {
            let e = self.overflow.pop().expect("peeked");
            let slot = self.slot_of(e.at);
            self.buckets[slot].push(e.at, e.kind);
        }
        if self.overflow.is_empty() {
            self.overflow_seq = 0;
        }
    }

    /// Advances `base` to the slot containing `at` (never backwards) and
    /// migrates newly near overflow events.
    fn advance_base_to(&mut self, at: u64) {
        let aligned = at & !(GRANULE - 1);
        if aligned > self.base {
            self.base = aligned;
            self.migrate_overflow();
        }
    }

    /// Index of the first non-empty slot in ring order from `base`, after
    /// advancing `base` (and migrating) to skip leading empty slots. Returns
    /// `None` when every slot is empty.
    fn first_busy_slot(&mut self) -> Option<usize> {
        if self.len == self.overflow.len() {
            return None;
        }
        let mut slot = (self.base >> GRANULE_SHIFT) as usize & (BUCKETS - 1);
        for step in 0..BUCKETS {
            if !self.buckets[slot].is_empty() {
                if step > 0 {
                    // Skipped slots are empty: base can move to this slot's
                    // granule so future scans start here and overflow events
                    // inside the widened horizon come near.
                    let slot_start =
                        self.base.saturating_add(step as u64 * GRANULE) & !(GRANULE - 1);
                    self.advance_base_to(slot_start);
                }
                return Some(slot);
            }
            slot = (slot + 1) & (BUCKETS - 1);
        }
        unreachable!("len accounting says a slot is busy");
    }

    /// Earliest pending event time, discarding invalidated head events along
    /// the way (matching the old heap's lazy invalidation on peek). `valid`
    /// is consulted only for events that would define the wheel's head.
    pub fn peek(&mut self, valid: impl Fn(&K) -> bool) -> Option<Timestamp> {
        loop {
            match self.first_busy_slot() {
                Some(slot) => {
                    let bucket = &mut self.buckets[slot];
                    bucket.ensure_sorted();
                    while bucket.head < bucket.events.len() {
                        if valid(&bucket.events[bucket.head].kind) {
                            return Some(Timestamp::from_nanos(bucket.events[bucket.head].at));
                        }
                        bucket.head += 1;
                        self.len -= 1;
                    }
                    bucket.recycle();
                }
                None => {
                    let horizon = self.horizon();
                    match self.overflow.peek() {
                        None => return None,
                        Some(e) if e.at >= horizon && self.base >= e.at & !(GRANULE - 1) => {
                            // Saturating top end: the event cannot be brought
                            // inside any horizon (at ~ u64::MAX). Peek it in
                            // place, discarding stale heads like a slot would.
                            if valid(&self.overflow.peek().expect("peeked").kind) {
                                return Some(Timestamp::from_nanos(
                                    self.overflow.peek().expect("peeked").at,
                                ));
                            }
                            self.overflow.pop();
                            self.len -= 1;
                        }
                        Some(e) => {
                            let at = e.at;
                            self.advance_base_to(at);
                        }
                    }
                }
            }
        }
    }

    /// Drains every event due at or before `next` into `out`, in exact
    /// `(at, seq)` order — the batch-slice pop: one sorted slot walk instead
    /// of one heap rebalance per event. Invalidated events are drained too
    /// (the caller's dispatch ignores them), matching the old heap.
    pub fn drain_due(&mut self, next: Timestamp, out: &mut Vec<K>) {
        let next = next.as_nanos();
        loop {
            match self.first_busy_slot() {
                Some(slot) => {
                    let bucket = &mut self.buckets[slot];
                    bucket.ensure_sorted();
                    if bucket.events[bucket.head].at > next {
                        return;
                    }
                    let mut end = bucket.head + 1;
                    while end < bucket.events.len() && bucket.events[end].at <= next {
                        end += 1;
                    }
                    self.len -= end - bucket.head;
                    let mut drained = bucket.events.drain(..end);
                    // Skip (and drop) the invalidated prefix peek left behind.
                    for _ in 0..bucket.head {
                        drained.next();
                    }
                    out.extend(drained.map(|e| e.kind));
                    bucket.head = 0;
                    if bucket.events.is_empty() {
                        bucket.recycle();
                        // Past-due events can span several slots; keep going.
                        continue;
                    }
                    return;
                }
                None => match self.overflow.peek() {
                    Some(e) if e.at <= next => {
                        let e = self.overflow.pop().expect("peeked");
                        out.push(e.kind);
                        self.len -= 1;
                    }
                    _ => return,
                },
            }
        }
    }

    /// Heap bytes retained by the scheduler (slot and overflow capacity).
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + std::mem::size_of::<[Bucket<K>; BUCKETS]>()
            + self
                .buckets
                .iter()
                .map(|b| b.events.capacity() * std::mem::size_of::<BucketEntry<K>>())
                .sum::<usize>()
            + self.overflow.capacity() * std::mem::size_of::<OverflowEntry<K>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(n: u64) -> Timestamp {
        Timestamp::from_nanos(n)
    }

    /// Pops every event one at a time via peek + drain_due(peek time).
    fn pop_all(wheel: &mut TimeWheel<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some(at) = wheel.peek(|_| true) {
            let mut batch = Vec::new();
            wheel.drain_due(at, &mut batch);
            assert!(!batch.is_empty(), "peek promised a due event");
            out.extend(batch.into_iter().map(|k| (at.as_nanos(), k)));
        }
        assert_eq!(wheel.len(), 0);
        out
    }

    #[test]
    fn pops_in_time_then_schedule_order() {
        let mut wheel = TimeWheel::new();
        // Deliberately out of time order, with same-time collisions.
        wheel.schedule(ts(500), 0);
        wheel.schedule(ts(100), 1);
        wheel.schedule(ts(500), 2);
        wheel.schedule(ts(100), 3);
        wheel.schedule(ts(0), 4);
        let popped = pop_all(&mut wheel);
        assert_eq!(popped, vec![(0, 4), (100, 1), (100, 3), (500, 0), (500, 2)]);
    }

    #[test]
    fn far_events_overflow_and_migrate_in_schedule_order() {
        let mut wheel = TimeWheel::new();
        let far = SPAN * 3 + 17;
        wheel.schedule(ts(far), 0);
        wheel.schedule(ts(far), 1);
        wheel.schedule(ts(10), 2);
        wheel.schedule(ts(far + GRANULE), 3);
        let popped = pop_all(&mut wheel);
        assert_eq!(popped, vec![(10, 2), (far, 0), (far, 1), (far + GRANULE, 3)]);
    }

    #[test]
    fn migrated_event_precedes_later_direct_insert_at_same_time() {
        let mut wheel = TimeWheel::new();
        let t = SPAN + 5;
        wheel.schedule(ts(t), 0); // beyond horizon: parked in overflow
        wheel.schedule(ts(1), 1);
        let mut batch = Vec::new();
        wheel.drain_due(ts(1), &mut batch);
        assert_eq!(batch, vec![1]);
        // Base has not advanced past t yet; peek advances it and migrates.
        assert_eq!(wheel.peek(|_| true), Some(ts(t)));
        wheel.schedule(ts(t), 2); // direct insert at the same timestamp
        let popped = pop_all(&mut wheel);
        assert_eq!(popped, vec![(t, 0), (t, 2)]);
    }

    #[test]
    fn drain_due_crosses_slot_boundaries() {
        let mut wheel = TimeWheel::new();
        for i in 0..8u32 {
            wheel.schedule(ts(u64::from(i) * GRANULE), i);
        }
        let mut batch = Vec::new();
        wheel.drain_due(ts(5 * GRANULE), &mut batch);
        assert_eq!(batch, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(wheel.len(), 2);
        assert_eq!(wheel.peek(|_| true), Some(ts(6 * GRANULE)));
    }

    #[test]
    fn past_due_schedule_pops_before_future_events() {
        let mut wheel = TimeWheel::new();
        wheel.schedule(ts(SPAN * 2), 0);
        // Drain time forward so base advances well past zero.
        assert_eq!(wheel.peek(|_| true), Some(ts(SPAN * 2)));
        // Now schedule something earlier than the current base.
        wheel.schedule(ts(3), 1);
        let popped = pop_all(&mut wheel);
        assert_eq!(popped, vec![(3, 1), (SPAN * 2, 0)]);
    }

    #[test]
    fn peek_discards_invalid_head_events() {
        let mut wheel = TimeWheel::new();
        wheel.schedule(ts(10), 0);
        wheel.schedule(ts(20), 1);
        wheel.schedule(ts(30), 2);
        // Events 0 and 1 are stale: peek must skip (and drop) them.
        assert_eq!(wheel.peek(|k| *k >= 2), Some(ts(30)));
        assert_eq!(wheel.len(), 1);
        let popped = pop_all(&mut wheel);
        assert_eq!(popped, vec![(30, 2)]);
    }

    #[test]
    fn timestamp_max_sentinel_is_schedulable_and_popped() {
        let mut wheel = TimeWheel::new();
        wheel.schedule(Timestamp::MAX, 0);
        wheel.schedule(Timestamp::MAX, 1);
        wheel.schedule(ts(7), 2);
        assert_eq!(wheel.peek(|_| true), Some(ts(7)));
        let popped = pop_all(&mut wheel);
        assert_eq!(
            popped,
            vec![(7, 2), (u64::MAX, 0), (u64::MAX, 1)],
            "MAX sentinels pop last, in schedule order"
        );
    }

    #[test]
    fn max_sentinel_head_respects_validity() {
        let mut wheel = TimeWheel::new();
        wheel.schedule(Timestamp::MAX, 0);
        wheel.schedule(Timestamp::MAX, 1);
        // The first sentinel is stale: peek drops it, keeps the second.
        assert_eq!(wheel.peek(|k| *k == 1), Some(Timestamp::MAX));
        assert_eq!(wheel.len(), 1);
    }

    #[test]
    fn slot_buffers_are_recycled_not_reallocated() {
        let mut wheel = TimeWheel::new();
        for round in 0..3u64 {
            for i in 0..100u32 {
                wheel.schedule(ts(round * 10 + u64::from(i % 3)), i);
            }
            let mut batch = Vec::new();
            wheel.drain_due(ts(round * 10 + 2), &mut batch);
            assert_eq!(batch.len(), 100);
        }
        let bytes_after_warmup = wheel.mem_bytes();
        for round in 3..6u64 {
            for i in 0..100u32 {
                wheel.schedule(ts(round * 10 + u64::from(i % 3)), i);
            }
            let mut batch = Vec::new();
            wheel.drain_due(ts(round * 10 + 2), &mut batch);
            assert_eq!(batch.len(), 100);
        }
        assert_eq!(wheel.mem_bytes(), bytes_after_warmup, "steady state allocates nothing new");
    }

    #[test]
    fn mem_bytes_tracks_slot_capacity() {
        let mut wheel = TimeWheel::new();
        let empty = wheel.mem_bytes();
        for i in 0..1000u32 {
            wheel.schedule(ts(u64::from(i)), i);
        }
        assert!(wheel.mem_bytes() > empty);
    }

    mod equivalence {
        use proptest::prelude::*;

        use super::super::{TimeWheel, GRANULE, SPAN};
        use crate::runtime::testutil::ReferenceQueue;
        use crate::time::Timestamp;

        /// One step of the scheduler workload. A cancel+reschedule is an
        /// `Invalidate` of the old entry plus a fresh `Schedule`, which the
        /// sequence generator produces by composition.
        #[derive(Debug, Clone)]
        enum Op {
            /// Schedule a fresh event at an absolute time (nanos).
            Schedule(u64),
            /// Schedule a `Timestamp::MAX` parked-sentinel event.
            ScheduleMax,
            /// Invalidate a previously scheduled event (index modulo the
            /// number scheduled so far).
            Invalidate(usize),
            /// Peek both queues under the current validity set and compare.
            Peek,
            /// Drain both queues to an absolute time and compare order.
            Drain(u64),
        }

        fn op() -> impl Strategy<Value = Op> {
            prop_oneof![
                // Dense near-horizon traffic: same-slot collisions and ties.
                3 => (0u64..GRANULE * 8).prop_map(Op::Schedule),
                // Sparse far traffic: overflow parking and migration.
                3 => (0u64..SPAN * 4).prop_map(Op::Schedule),
                1 => Just(Op::ScheduleMax),
                2 => any::<usize>().prop_map(Op::Invalidate),
                2 => Just(Op::Peek),
                3 => (0u64..SPAN * 4).prop_map(Op::Drain),
            ]
        }

        proptest! {
            /// The wheel is observationally identical to the old global-
            /// sequence heap: same peek times, same drain order, same lazy
            /// discard of invalidated heads — under arbitrary interleavings
            /// of near/far/past-due/sentinel schedules, cancellations, and
            /// partial drains.
            #[test]
            fn wheel_matches_reference_heap(ops in proptest::collection::vec(op(), 1..250)) {
                let mut wheel = TimeWheel::new();
                let mut reference = ReferenceQueue::new();
                let mut next_id: u32 = 0;
                let mut invalid = std::collections::HashSet::new();
                for op in ops {
                    match op {
                        Op::Schedule(at) => {
                            wheel.schedule(Timestamp::from_nanos(at), next_id);
                            reference.schedule(Timestamp::from_nanos(at), next_id);
                            next_id += 1;
                        }
                        Op::ScheduleMax => {
                            wheel.schedule(Timestamp::MAX, next_id);
                            reference.schedule(Timestamp::MAX, next_id);
                            next_id += 1;
                        }
                        Op::Invalidate(i) => {
                            if next_id > 0 {
                                invalid.insert((i % next_id as usize) as u32);
                            }
                        }
                        Op::Peek => {
                            let w = wheel.peek(|k| !invalid.contains(k));
                            let r = reference.peek(|k| !invalid.contains(k));
                            prop_assert_eq!(w, r);
                        }
                        Op::Drain(t) => {
                            let (mut w, mut r) = (Vec::new(), Vec::new());
                            wheel.drain_due(Timestamp::from_nanos(t), &mut w);
                            reference.drain_due(Timestamp::from_nanos(t), &mut r);
                            prop_assert_eq!(w, r);
                        }
                    }
                }
                // Run both queues dry; they must agree to exhaustion.
                loop {
                    let w = wheel.peek(|k| !invalid.contains(k));
                    let r = reference.peek(|k| !invalid.contains(k));
                    prop_assert_eq!(w, r);
                    let Some(at) = w else { break };
                    let (mut w, mut r) = (Vec::new(), Vec::new());
                    wheel.drain_due(at, &mut w);
                    reference.drain_due(at, &mut r);
                    prop_assert_eq!(&w, &r);
                    prop_assert!(!w.is_empty(), "peek promised a due event");
                }
                prop_assert_eq!(wheel.len(), 0);
            }
        }
    }
}
