//! Threaded runtime: the deployment shape described in paper §4.2.
//!
//! The Model and Actuator control loops run in separately scheduled OS
//! threads connected by a prediction queue, so the Actuator can continue to
//! operate and take safe actions when the Model is throttled or
//! underperforming. This runtime uses wall-clock time; experiments use the
//! deterministic [`SimRuntime`](crate::runtime::sim::SimRuntime) instead.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use crossbeam::channel::{self, RecvTimeoutError};

use crate::actuator::Actuator;
use crate::error::RuntimeError;
use crate::loops::{ActuatorLoop, ModelLoop};
use crate::model::Model;
use crate::prediction::Prediction;
use crate::schedule::Schedule;
use crate::stats::AgentStats;
use crate::time::{Clock, SimDuration, SystemClock};

/// Outcome of a completed threaded run.
#[derive(Debug)]
pub struct ThreadedReport<M, A> {
    /// The model, returned for post-run inspection.
    pub model: M,
    /// The actuator, returned for post-run inspection.
    pub actuator: A,
    /// Runtime counters for the agent.
    pub stats: AgentStats,
}

/// How long `Drop` waits for each control-loop thread to exit before
/// detaching it. Both loops sleep at most 20 ms between stop-flag checks, so
/// a healthy agent is joined in well under this bound.
const DROP_JOIN_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(2);

/// Handle to a running agent hosted on two OS threads.
///
/// Dropping the handle without calling [`stop`](ThreadedAgent::stop) signals
/// the threads to stop and joins them (with a bounded timeout, after which a
/// wedged thread is detached rather than hanging the caller), so tests and
/// short-lived processes do not leak threads.
pub struct ThreadedAgent<M: Model, A: Actuator<Pred = M::Pred>> {
    stop: Arc<AtomicBool>,
    model_thread: Option<JoinHandle<(M, crate::stats::ModelLoopStats)>>,
    actuator_thread: Option<JoinHandle<(A, crate::stats::ActuatorLoopStats)>>,
}

/// Process-wide count of control-loop threads that missed their drop
/// deadline and were detached. See [`leaked_threads`].
static LEAKED_THREADS: AtomicU64 = AtomicU64::new(0);

/// Number of control-loop threads that, over the life of this process, missed
/// the [`ThreadedAgent`] drop deadline and were detached (still running,
/// unobservable through any report). A non-zero value means an agent loop
/// wedged — the silent-leak failure mode this counter makes visible.
pub fn leaked_threads() -> u64 {
    LEAKED_THREADS.load(Ordering::Relaxed)
}

/// What [`join_by_deadline`] did with the thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JoinOutcome {
    /// The thread exited in time and was joined.
    Joined,
    /// The thread missed the deadline and was detached (leaked).
    Leaked,
}

/// Joins `handle` if it finishes before `deadline`; otherwise detaches it,
/// bumping the process-wide [`leaked_threads`] counter and logging the leak
/// so wedged agents are observable instead of silent.
fn join_by_deadline<T>(handle: JoinHandle<T>, deadline: std::time::Instant) -> JoinOutcome {
    while !handle.is_finished() {
        if std::time::Instant::now() >= deadline {
            let name = handle.thread().name().unwrap_or("<unnamed>").to_string();
            let leaked_so_far = LEAKED_THREADS.fetch_add(1, Ordering::Relaxed) + 1;
            eprintln!(
                "sol-core: control-loop thread {name:?} missed its drop deadline and was detached \
                 ({leaked_so_far} leaked so far)"
            );
            return JoinOutcome::Leaked;
        }
        thread::sleep(std::time::Duration::from_millis(1));
    }
    let _ = handle.join();
    JoinOutcome::Joined
}

impl<M, A> ThreadedAgent<M, A>
where
    M: Model + 'static,
    A: Actuator<Pred = M::Pred> + 'static,
    M::Pred: Send,
{
    /// Starts the agent: spawns the Model and Actuator control-loop threads
    /// according to the developer-provided schedule (paper Listing 3,
    /// `SOL::RunAgent`).
    pub fn run(model: M, actuator: A, schedule: Schedule) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let clock = SystemClock::new();
        let (tx, rx) = channel::unbounded::<Prediction<M::Pred>>();

        let model_stop = Arc::clone(&stop);
        let model_clock = clock.clone();
        let model_schedule = schedule.clone();
        let model_thread = thread::Builder::new()
            .name("sol-model".into())
            .spawn(move || {
                let mut loop_ = ModelLoop::new(model, model_schedule, model_clock.now());
                while !model_stop.load(Ordering::Relaxed) {
                    let now = model_clock.now();
                    let wake = loop_.next_wake();
                    if now < wake {
                        let sleep = wake.duration_since(now).min(SimDuration::from_millis(20));
                        thread::sleep(sleep.to_std());
                        continue;
                    }
                    if let Some(prediction) = loop_.step(now) {
                        // The receiver disappears when the actuator thread
                        // stops first; that is a normal shutdown race.
                        let _ = tx.send(prediction);
                    }
                }
                loop_.into_parts()
            })
            .expect("spawn model thread");

        let actuator_stop = Arc::clone(&stop);
        let actuator_clock = clock;
        let actuator_thread = thread::Builder::new()
            .name("sol-actuator".into())
            .spawn(move || {
                let mut loop_ = ActuatorLoop::new(actuator, schedule, actuator_clock.now());
                while !actuator_stop.load(Ordering::Relaxed) {
                    let now = actuator_clock.now();
                    let wake = loop_.next_wake().max(now);
                    let timeout =
                        wake.duration_since(now).min(SimDuration::from_millis(20)).to_std();
                    match rx.recv_timeout(timeout) {
                        Ok(prediction) => {
                            loop_.deliver(prediction);
                            loop_.step(actuator_clock.now());
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            loop_.step(actuator_clock.now());
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            loop_.step(actuator_clock.now());
                            if actuator_stop.load(Ordering::Relaxed) {
                                break;
                            }
                            thread::sleep(std::time::Duration::from_millis(1));
                        }
                    }
                }
                loop_.clean_up(actuator_clock.now());
                loop_.into_parts()
            })
            .expect("spawn actuator thread");

        ThreadedAgent {
            stop,
            model_thread: Some(model_thread),
            actuator_thread: Some(actuator_thread),
        }
    }

    /// Signals both control loops to stop, waits for them, runs `CleanUp`, and
    /// returns the final state.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::WorkerPanicked`] if either control-loop thread
    /// panicked.
    pub fn stop(mut self) -> Result<ThreadedReport<M, A>, RuntimeError> {
        self.stop.store(true, Ordering::Relaxed);
        let model_thread = self.model_thread.take().expect("model thread present");
        let actuator_thread = self.actuator_thread.take().expect("actuator thread present");
        // Join both before propagating either error, so a panicked loop
        // never leaves its sibling thread detached and running.
        let model_result = model_thread.join();
        let actuator_result = actuator_thread.join();
        let (model, model_stats) =
            model_result.map_err(|_| RuntimeError::WorkerPanicked("model"))?;
        let (actuator, actuator_stats) =
            actuator_result.map_err(|_| RuntimeError::WorkerPanicked("actuator"))?;
        Ok(ThreadedReport {
            model,
            actuator,
            stats: AgentStats { model: model_stats, actuator: actuator_stats },
        })
    }

    /// Lets the agent run for the given wall-clock duration, then stops it.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError::WorkerPanicked`] from [`stop`](Self::stop).
    pub fn run_for(
        self,
        duration: std::time::Duration,
    ) -> Result<ThreadedReport<M, A>, RuntimeError> {
        thread::sleep(duration);
        self.stop()
    }
}

impl<M: Model, A: Actuator<Pred = M::Pred>> Drop for ThreadedAgent<M, A> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.model_thread.take() {
            join_by_deadline(handle, std::time::Instant::now() + DROP_JOIN_TIMEOUT);
        }
        if let Some(handle) = self.actuator_thread.take() {
            join_by_deadline(handle, std::time::Instant::now() + DROP_JOIN_TIMEOUT);
        }
    }
}

/// Convenience alias matching the paper's `SOL::RunAgent` entry point: builds
/// a [`ThreadedAgent`] and runs it until stopped.
pub fn run_agent<M, A>(model: M, actuator: A, schedule: Schedule) -> ThreadedAgent<M, A>
where
    M: Model + 'static,
    A: Actuator<Pred = M::Pred> + 'static,
    M::Pred: Send,
{
    ThreadedAgent::run(model, actuator, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ActuatorAssessment;
    use crate::error::DataError;
    use crate::model::ModelAssessment;
    use crate::time::Timestamp as Ts;

    struct TickModel;

    impl Model for TickModel {
        type Data = u64;
        type Pred = u64;
        fn collect_data(&mut self, now: Ts) -> Result<u64, DataError> {
            Ok(now.as_nanos())
        }
        fn validate_data(&self, _d: &u64) -> bool {
            true
        }
        fn commit_data(&mut self, _now: Ts, _d: u64) {}
        fn update_model(&mut self, _now: Ts) {}
        fn predict(&mut self, now: Ts) -> Option<Prediction<u64>> {
            Some(Prediction::model(1, now, now + SimDuration::from_secs(1)))
        }
        fn default_predict(&self, now: Ts) -> Prediction<u64> {
            Prediction::fallback(0, now, now + SimDuration::from_secs(1))
        }
        fn assess_model(&mut self, _now: Ts) -> ModelAssessment {
            ModelAssessment::Healthy
        }
    }

    #[derive(Default)]
    struct TickActuator {
        actions: u64,
        cleaned: bool,
    }

    impl Actuator for TickActuator {
        type Pred = u64;
        fn take_action(&mut self, _now: Ts, _pred: Option<&Prediction<u64>>) {
            self.actions += 1;
        }
        fn assess_performance(&mut self, _now: Ts) -> ActuatorAssessment {
            ActuatorAssessment::Acceptable
        }
        fn mitigate(&mut self, _now: Ts) {}
        fn clean_up(&mut self, _now: Ts) {
            self.cleaned = true;
        }
    }

    #[test]
    fn threaded_agent_runs_and_cleans_up() {
        let schedule = Schedule::builder()
            .data_per_epoch(2)
            .data_collect_interval(SimDuration::from_millis(5))
            .max_epoch_time(SimDuration::from_millis(50))
            .assess_model_every_epochs(1)
            .max_actuation_delay(SimDuration::from_millis(20))
            .assess_actuator_interval(SimDuration::from_millis(10))
            .build()
            .unwrap();
        let agent = ThreadedAgent::run(TickModel, TickActuator::default(), schedule);
        let report = agent.run_for(std::time::Duration::from_millis(200)).unwrap();
        assert!(report.stats.model.epochs_completed >= 1);
        assert!(report.actuator.actions >= 1);
        assert!(report.actuator.cleaned);
        assert_eq!(report.stats.actuator.cleanups, 1);
    }

    #[test]
    fn missed_deadline_is_counted_as_a_leak() {
        let before = leaked_threads();
        let wedged = thread::Builder::new()
            .name("sol-wedged".into())
            .spawn(|| thread::sleep(std::time::Duration::from_millis(300)))
            .unwrap();
        let outcome = join_by_deadline(
            wedged,
            std::time::Instant::now() + std::time::Duration::from_millis(10),
        );
        assert_eq!(outcome, JoinOutcome::Leaked, "a wedged thread must be detached");
        assert!(leaked_threads() > before, "the leak must be counted, not silent");

        // A healthy thread joins in time and leaves the counter alone.
        let after_leak = leaked_threads();
        let healthy = thread::spawn(|| {});
        let outcome = join_by_deadline(
            healthy,
            std::time::Instant::now() + std::time::Duration::from_secs(5),
        );
        assert_eq!(outcome, JoinOutcome::Joined);
        assert_eq!(leaked_threads(), after_leak);
    }

    #[test]
    fn drop_joins_worker_threads() {
        let schedule = Schedule::builder()
            .data_per_epoch(2)
            .data_collect_interval(SimDuration::from_millis(5))
            .max_epoch_time(SimDuration::from_millis(50))
            .assess_model_every_epochs(1)
            .max_actuation_delay(SimDuration::from_millis(20))
            .assess_actuator_interval(SimDuration::from_millis(10))
            .build()
            .unwrap();
        let agent = ThreadedAgent::run(TickModel, TickActuator::default(), schedule);
        let stop = Arc::clone(&agent.stop);
        thread::sleep(std::time::Duration::from_millis(30));
        drop(agent);
        // Both worker threads held a clone of the stop flag; after a joining
        // drop only our clone remains. A detaching drop (the old behaviour)
        // leaves up to two racing clones alive.
        assert_eq!(Arc::strong_count(&stop), 1, "drop must join both control-loop threads");
    }
}
