//! `FleetRuntime`: many simulated servers, one virtual clock.
//!
//! SOL's deployment story is fleet-wide: every server runs its own on-node
//! learners and the platform watches safety signals across thousands of
//! nodes. [`FleetRuntime`] makes that scale representable. It stamps out *N*
//! [`NodeRuntime`]s from one
//! [`ScenarioRecipe`] — a replayable closure over the
//! [`ScenarioBuilder`](crate::runtime::builder::ScenarioBuilder), seeded per
//! node through [`NodeSeed`] so nodes are heterogeneous but deterministic —
//! shards the nodes across a worker-thread pool, synchronizes all of them on
//! epoch boundaries of one virtual clock, and aggregates every node's
//! [`AgentStats`] into a [`FleetReport`] of fleet-level safety dashboards:
//! safeguard-activation rates, environment metric summaries (SLO violations,
//! tail latencies), and per-agent-role percentiles, keyed by the same
//! [`AgentHandle`](crate::runtime::builder::AgentHandle)s the recipe's
//! builder returned.
//!
//! # Determinism
//!
//! A fleet run is a pure function of `(recipe, FleetConfig, horizon)`:
//!
//! * per-node seeds come from an invertible mix of the fleet seed and the
//!   node index ([`NodeSeed::derive`]), so they never collide and never
//!   depend on scheduling;
//! * every node advances through the same epoch grid
//!   (`epoch, 2·epoch, …, horizon`) regardless of which worker hosts it, so
//!   a node's trajectory is independent of the thread count; and
//! * aggregation folds nodes in index order, never completion order.
//!
//! The resulting [`FleetReport`] is byte-identical for 1, 2, or 64 worker
//! threads (enforced in `tests/tests/determinism.rs`).
//!
//! # Examples
//!
//! ```
//! use sol_core::prelude::*;
//! # use sol_core::error::DataError;
//! # #[derive(Clone)]
//! # struct M(f64);
//! # impl Model for M {
//! #     type Data = f64;
//! #     type Pred = f64;
//! #     fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> { Ok(self.0) }
//! #     fn validate_data(&self, d: &f64) -> bool { d.is_finite() }
//! #     fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
//! #     fn update_model(&mut self, _now: Timestamp) {}
//! #     fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
//! #         Some(Prediction::model(self.0, now, now + SimDuration::from_secs(1)))
//! #     }
//! #     fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
//! #         Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
//! #     }
//! #     fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment { ModelAssessment::Healthy }
//! # }
//! # #[derive(Default)]
//! # struct A { count: u64 }
//! # impl Actuator for A {
//! #     type Pred = f64;
//! #     fn take_action(&mut self, _now: Timestamp, _pred: Option<&Prediction<f64>>) {
//! #         self.count += 1;
//! #     }
//! #     fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
//! #         ActuatorAssessment::Acceptable
//! #     }
//! #     fn mitigate(&mut self, _now: Timestamp) {}
//! #     fn clean_up(&mut self, _now: Timestamp) {}
//! # }
//! let schedule = Schedule::builder()
//!     .data_per_epoch(2)
//!     .data_collect_interval(SimDuration::from_millis(100))
//!     .max_epoch_time(SimDuration::from_secs(1))
//!     .build()?;
//!
//! // One agent per node; the per-node seed makes the fleet heterogeneous.
//! let recipe = ScenarioRecipe::new(move |seed: &NodeSeed| {
//!     let mut builder = NodeRuntime::builder(NullEnvironment);
//!     builder.agent("learner", M(seed.stream(0) as f64), A::default(), schedule.clone());
//!     builder.build()
//! });
//!
//! let config = FleetConfig { nodes: 16, threads: 4, ..FleetConfig::default() };
//! let report = FleetRuntime::new(recipe, config)?.run(SimDuration::from_secs(5))?;
//! assert_eq!(report.nodes.len(), 16);
//! assert_eq!(report.roles[0].name, "learner");
//! assert_eq!(report.roles[0].totals.model.epochs_completed, 16 * 25);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::thread;

use crossbeam::channel::{self, Receiver, Sender};

use crate::error::{ReportError, RuntimeError};
use crate::runtime::builder::ScenarioRecipe;
use crate::runtime::node::{AgentId, NodeRuntime};
use crate::runtime::Environment;
use crate::stats::AgentStats;
use crate::time::{SimDuration, Timestamp};

/// Odd multiplier walking the per-node seed sequence (the golden-ratio
/// constant of SplitMix64). Oddness makes `fleet_seed + GAMMA·index` distinct
/// for every index, and [`splitmix64`] is a bijection, so derived seeds never
/// collide within a fleet.
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer: a bijective avalanche mix on `u64`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(GAMMA);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic identity of one node in a fleet: its index plus the
/// seed derived from `(fleet_seed, index)`.
///
/// Recipes split the node seed into independent streams with
/// [`stream`](Self::stream) — one per substrate or learner — so adding a new
/// consumer never perturbs the existing ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeSeed {
    fleet_seed: u64,
    index: u64,
    seed: u64,
}

impl NodeSeed {
    /// Derives the seed of node `index` in the fleet seeded by `fleet_seed`.
    ///
    /// The derivation is collision-free: for a fixed `fleet_seed`, distinct
    /// indices always yield distinct seeds (`fleet_seed + GAMMA·index` is
    /// injective because `GAMMA` is odd, and the SplitMix64 finalizer is a
    /// bijection). `tests/tests/fleet.rs` property-checks this for fleets up
    /// to 4096 nodes.
    pub fn derive(fleet_seed: u64, index: u64) -> NodeSeed {
        let seed = splitmix64(fleet_seed.wrapping_add(index.wrapping_mul(GAMMA)));
        NodeSeed { fleet_seed, index, seed }
    }

    /// The fleet master seed this node seed was derived from.
    pub fn fleet_seed(&self) -> u64 {
        self.fleet_seed
    }

    /// The node's index in the fleet (`0..nodes`).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The node's derived seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// An independent sub-seed for consumer `stream` (substrate RNG, learner
    /// RNG, …). Distinct streams of one node never collide.
    pub fn stream(&self, stream: u64) -> u64 {
        splitmix64(self.seed.wrapping_add(stream.wrapping_mul(GAMMA)))
    }
}

/// Shape of a fleet run: how many nodes, how many worker threads, the epoch
/// synchronization quantum of the shared virtual clock, and the master seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of simulated servers stamped out from the recipe.
    pub nodes: usize,
    /// Worker threads the nodes are sharded across (clamped to `nodes`).
    /// The thread count never changes results — only wall-clock time.
    pub threads: usize,
    /// Virtual time between fleet-wide synchronization barriers. Every node
    /// reaches epoch boundary `k·epoch` before any node starts epoch `k+1`.
    pub epoch: SimDuration,
    /// Master seed; per-node seeds are derived via [`NodeSeed::derive`].
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { nodes: 8, threads: 4, epoch: SimDuration::from_secs(1), seed: 0x501_f1ee7 }
    }
}

/// Final counters of one agent on one fleet node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetAgentReport {
    /// The name the agent was registered under (identical across nodes).
    pub name: String,
    /// The agent's final runtime counters.
    pub stats: AgentStats,
}

/// Outcome of one node of a fleet run: per-agent counters plus the named
/// environment metrics the recipe extracted before the node was discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetNodeReport {
    /// The node's index in the fleet.
    pub node: usize,
    /// The derived seed the node was stamped out with.
    pub seed: u64,
    /// Per-agent outcomes, in registration order (the same order on every
    /// node, so position == role).
    pub agents: Vec<FleetAgentReport>,
    /// Environment metrics extracted by the recipe's
    /// [`with_metrics`](ScenarioRecipe::with_metrics) closure.
    pub metrics: Vec<(String, f64)>,
    /// The virtual time at which the node stopped.
    pub ended_at: Timestamp,
}

/// Nearest-rank percentiles over one per-node statistic of an agent role.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Smallest per-node value.
    pub min: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Largest per-node value.
    pub max: f64,
}

impl Percentiles {
    /// Computes nearest-rank percentiles; `values` need not be sorted.
    pub fn of(values: &[f64]) -> Percentiles {
        assert!(!values.is_empty(), "percentiles need at least one value");
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |p: f64| {
            let n = sorted.len();
            let r = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
            sorted[r.min(n) - 1]
        };
        Percentiles {
            min: sorted[0],
            p50: rank(50.0),
            p90: rank(90.0),
            p99: rank(99.0),
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Fleet-wide aggregate for one agent role (one registration position of the
/// recipe), the unit of the safety dashboard.
#[derive(Debug, Clone, PartialEq)]
pub struct RoleAggregate {
    /// The name the role's agents were registered under.
    pub name: String,
    /// Number of nodes contributing to this aggregate.
    pub nodes: usize,
    /// Field-wise sum of every node's [`AgentStats`] for this role.
    pub totals: AgentStats,
    /// Fraction of nodes on which a safeguard activated at least once
    /// (an Actuator safeguard trip or a Model prediction interception).
    pub safeguard_activation_rate: f64,
    /// Per-node distribution of completed learning epochs.
    pub epochs_completed: Percentiles,
    /// Per-node distribution of actions taken.
    pub actions_taken: Percentiles,
    /// Per-node distribution of Actuator safeguard trips.
    pub safeguard_triggers: Percentiles,
}

/// Fleet-wide summary of one named environment metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Metric name, as reported by the recipe's metrics closure.
    pub name: String,
    /// Number of nodes that reported the metric.
    pub nodes: usize,
    /// Sum across nodes (e.g. total SLO violations in the fleet).
    pub total: f64,
    /// Mean across nodes.
    pub mean: f64,
    /// Smallest per-node value.
    pub min: f64,
    /// Largest per-node value.
    pub max: f64,
}

/// Results of a completed fleet run: per-node outcomes in index order plus
/// the fleet-level dashboards.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-node outcomes, sorted by node index.
    pub nodes: Vec<FleetNodeReport>,
    /// Per-role aggregates, in agent registration order. Index with the
    /// [`AgentHandle`](crate::runtime::builder::AgentHandle)s the recipe's
    /// builder returned, via [`role`](Self::role).
    pub roles: Vec<RoleAggregate>,
    /// Summaries of the recipe-extracted environment metrics, in first-seen
    /// order.
    pub metrics: Vec<MetricSummary>,
    /// The virtual time at which the fleet stopped (identical on every node).
    pub ended_at: Timestamp,
    /// Number of epoch-boundary synchronizations the run performed.
    pub epochs: u64,
}

impl FleetReport {
    /// The aggregate for one agent role, keyed by the
    /// [`AgentHandle`](crate::runtime::builder::AgentHandle) (or [`AgentId`])
    /// the recipe's builder returned.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not name a role of this fleet; use
    /// [`try_role`](Self::try_role) to handle that as a [`ReportError`].
    pub fn role(&self, handle: impl Into<AgentId>) -> &RoleAggregate {
        self.try_role(handle).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`role`](Self::role).
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::UnknownAgent`] if the handle's position is out
    /// of range for the recipe's agent population.
    pub fn try_role(&self, handle: impl Into<AgentId>) -> Result<&RoleAggregate, ReportError> {
        let id = handle.into();
        self.roles.get(id.index()).ok_or_else(|| ReportError::UnknownAgent(id.to_string()))
    }

    /// The summary of one recipe-extracted environment metric, by name.
    pub fn metric(&self, name: &str) -> Option<&MetricSummary> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// What a worker sends back to the coordinator.
enum WorkerMsg {
    /// All nodes owned by the worker reached the current epoch boundary.
    EpochDone,
    /// Final per-node outcomes (sent once, after the last epoch).
    Finished(Vec<FleetNodeReport>),
}

/// Drives *N* recipe-stamped [`NodeRuntime`]s under one virtual clock. See
/// the [module docs](self).
pub struct FleetRuntime<E: Environment + 'static> {
    recipe: ScenarioRecipe<E>,
    config: FleetConfig,
}

impl<E: Environment + 'static> Clone for FleetRuntime<E> {
    fn clone(&self) -> Self {
        FleetRuntime { recipe: self.recipe.clone(), config: self.config.clone() }
    }
}

impl<E: Environment + 'static> std::fmt::Debug for FleetRuntime<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetRuntime").field("config", &self.config).finish_non_exhaustive()
    }
}

impl<E: Environment + 'static> FleetRuntime<E> {
    /// Creates a fleet from a recipe and a config.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if `nodes` or `threads` is
    /// zero, or if `epoch` is zero.
    pub fn new(recipe: ScenarioRecipe<E>, config: FleetConfig) -> Result<Self, RuntimeError> {
        if config.nodes == 0 {
            return Err(RuntimeError::InvalidConfig("fleet must have at least one node".into()));
        }
        if config.threads == 0 {
            return Err(RuntimeError::InvalidConfig("fleet needs at least one worker".into()));
        }
        if config.epoch.is_zero() {
            return Err(RuntimeError::InvalidConfig("fleet epoch must be non-zero".into()));
        }
        Ok(FleetRuntime { recipe, config })
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The seed node `index` would be stamped out with.
    pub fn node_seed(&self, index: usize) -> NodeSeed {
        NodeSeed::derive(self.config.seed, index as u64)
    }

    /// Runs the whole fleet for `horizon` of virtual time: instantiates every
    /// node from the recipe, shards the nodes across the worker pool, and
    /// advances all of them epoch by epoch (no node enters epoch `k+1`
    /// before every node finished epoch `k`).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::EmptyHorizon`] if `horizon` is zero,
    /// [`RuntimeError::WorkerPanicked`] if a worker thread died (e.g. the
    /// recipe panicked), and [`RuntimeError::InvalidConfig`] if the recipe
    /// produced differing agent populations across nodes.
    pub fn run(&self, horizon: SimDuration) -> Result<FleetReport, RuntimeError> {
        if horizon.is_zero() {
            return Err(RuntimeError::EmptyHorizon);
        }
        let boundaries = epoch_boundaries(horizon, self.config.epoch);
        let threads = self.config.threads.min(self.config.nodes);

        // Static round-robin sharding: node i runs on worker i mod T. The
        // assignment affects wall-clock only — every node's trajectory is a
        // pure function of its seed and the shared epoch grid.
        let mut assignments: Vec<Vec<NodeSeed>> = (0..threads).map(|_| Vec::new()).collect();
        for index in 0..self.config.nodes {
            assignments[index % threads].push(self.node_seed(index));
        }

        let mut links = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for seeds in assignments {
            let (proceed_tx, proceed_rx) = channel::unbounded::<()>();
            let (done_tx, done_rx) = channel::unbounded::<WorkerMsg>();
            links.push((proceed_tx, done_rx));
            let recipe = self.recipe.clone();
            let boundaries = boundaries.clone();
            let handle = thread::Builder::new()
                .name("sol-fleet-worker".into())
                .spawn(move || worker(recipe, seeds, boundaries, proceed_rx, done_tx))
                .expect("spawn fleet worker");
            handles.push(handle);
        }

        let mut node_reports: Vec<Option<FleetNodeReport>> =
            (0..self.config.nodes).map(|_| None).collect();
        let mut failed = false;

        // Epoch barrier: collect one EpochDone per worker, then release all
        // of them into the next epoch. A worker death (recv error) aborts
        // the protocol; dropping our `proceed` senders unblocks the others.
        'protocol: {
            for k in 0..boundaries.len() {
                for (_, done_rx) in &links {
                    match done_rx.recv() {
                        Ok(WorkerMsg::EpochDone) => {}
                        _ => {
                            failed = true;
                            break 'protocol;
                        }
                    }
                }
                if k + 1 < boundaries.len() {
                    for (proceed_tx, _) in &links {
                        if proceed_tx.send(()).is_err() {
                            failed = true;
                            break 'protocol;
                        }
                    }
                }
            }
            for (_, done_rx) in &links {
                match done_rx.recv() {
                    Ok(WorkerMsg::Finished(reports)) => {
                        for report in reports {
                            let index = report.node;
                            node_reports[index] = Some(report);
                        }
                    }
                    _ => {
                        failed = true;
                        break 'protocol;
                    }
                }
            }
        }

        drop(links);
        for handle in handles {
            if handle.join().is_err() {
                failed = true;
            }
        }
        if failed {
            return Err(RuntimeError::WorkerPanicked("fleet worker"));
        }

        let nodes: Vec<FleetNodeReport> =
            node_reports.into_iter().map(|r| r.expect("every node reported")).collect();
        aggregate(nodes, boundaries.len() as u64)
    }

    /// Runs a single node of the fleet inline on the calling thread, with the
    /// same per-node seed and the same epoch segmentation as [`run`] — the
    /// resulting [`FleetNodeReport`] is byte-identical to the corresponding
    /// entry of a full fleet run. Useful for debugging one server of a large
    /// fleet and for testing that fleet aggregation is exactly the fold of
    /// per-node reports.
    ///
    /// [`run`]: Self::run
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::EmptyHorizon`] if `horizon` is zero and
    /// [`RuntimeError::InvalidConfig`] if `index` is out of range.
    pub fn run_node(
        &self,
        index: usize,
        horizon: SimDuration,
    ) -> Result<FleetNodeReport, RuntimeError> {
        if horizon.is_zero() {
            return Err(RuntimeError::EmptyHorizon);
        }
        if index >= self.config.nodes {
            return Err(RuntimeError::InvalidConfig(format!(
                "node index {index} out of range for a {}-node fleet",
                self.config.nodes
            )));
        }
        let seed = self.node_seed(index);
        let mut runtime = self.recipe.instantiate(&seed);
        for &boundary in &epoch_boundaries(horizon, self.config.epoch) {
            runtime.run_until(boundary);
        }
        Ok(summarize(&self.recipe, seed, runtime))
    }
}

/// The epoch grid: `epoch, 2·epoch, …` clamped to the horizon, ending
/// exactly at the horizon.
fn epoch_boundaries(horizon: SimDuration, epoch: SimDuration) -> Vec<Timestamp> {
    let end = Timestamp::ZERO + horizon;
    let mut boundaries = Vec::new();
    let mut t = Timestamp::ZERO;
    loop {
        t = t.saturating_add(epoch).min(end);
        boundaries.push(t);
        if t >= end {
            return boundaries;
        }
    }
}

/// Worker body: advance every owned node to each epoch boundary, barrier,
/// repeat; then finish the nodes and ship their summaries home.
fn worker<E: Environment + 'static>(
    recipe: ScenarioRecipe<E>,
    seeds: Vec<NodeSeed>,
    boundaries: Vec<Timestamp>,
    proceed_rx: Receiver<()>,
    done_tx: Sender<WorkerMsg>,
) {
    let mut nodes: Vec<(NodeSeed, NodeRuntime<E>)> =
        seeds.into_iter().map(|seed| (seed, recipe.instantiate(&seed))).collect();
    for (k, &boundary) in boundaries.iter().enumerate() {
        for (_, runtime) in &mut nodes {
            runtime.run_until(boundary);
        }
        if done_tx.send(WorkerMsg::EpochDone).is_err() {
            return;
        }
        // The coordinator releases the barrier; a closed channel means the
        // run was aborted (another worker died) — exit quietly.
        if k + 1 < boundaries.len() && proceed_rx.recv().is_err() {
            return;
        }
    }
    let reports =
        nodes.into_iter().map(|(seed, runtime)| summarize(&recipe, seed, runtime)).collect();
    let _ = done_tx.send(WorkerMsg::Finished(reports));
}

/// Finishes one node and boils its report down to the `Send`-able summary
/// the coordinator aggregates (stats + recipe-extracted metrics).
fn summarize<E: Environment + 'static>(
    recipe: &ScenarioRecipe<E>,
    seed: NodeSeed,
    runtime: NodeRuntime<E>,
) -> FleetNodeReport {
    let report = runtime.finish();
    let metrics = recipe.extract_metrics(&report);
    let agents = report
        .agents
        .iter()
        .map(|a| FleetAgentReport { name: a.name.clone(), stats: a.stats.clone() })
        .collect();
    FleetNodeReport {
        node: seed.index() as usize,
        seed: seed.seed(),
        agents,
        metrics,
        ended_at: report.ended_at,
    }
}

/// Folds per-node reports (already in index order) into the fleet dashboard.
fn aggregate(nodes: Vec<FleetNodeReport>, epochs: u64) -> Result<FleetReport, RuntimeError> {
    let first = &nodes[0];
    for node in &nodes[1..] {
        let matches = node.agents.len() == first.agents.len()
            && node.agents.iter().zip(&first.agents).all(|(a, b)| a.name == b.name);
        if !matches {
            return Err(RuntimeError::InvalidConfig(format!(
                "recipe produced differing agent populations: node 0 has {:?}, node {} has {:?}",
                first.agents.iter().map(|a| &a.name).collect::<Vec<_>>(),
                node.node,
                node.agents.iter().map(|a| &a.name).collect::<Vec<_>>(),
            )));
        }
        // Metric summaries are fleet-wide means/totals, so a node silently
        // dropping a metric would skew them; fail as loudly as a population
        // mismatch does.
        let metrics_match = node.metrics.len() == first.metrics.len()
            && node.metrics.iter().zip(&first.metrics).all(|((a, _), (b, _))| a == b);
        if !metrics_match {
            return Err(RuntimeError::InvalidConfig(format!(
                "recipe produced differing metric sets: node 0 has {:?}, node {} has {:?}",
                first.metrics.iter().map(|(n, _)| n).collect::<Vec<_>>(),
                node.node,
                node.metrics.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )));
        }
    }

    let roles = (0..first.agents.len())
        .map(|role| {
            let mut totals = AgentStats::default();
            let mut activated = 0usize;
            let mut epochs_completed = Vec::with_capacity(nodes.len());
            let mut actions = Vec::with_capacity(nodes.len());
            let mut triggers = Vec::with_capacity(nodes.len());
            for node in &nodes {
                let stats = &node.agents[role].stats;
                totals.accumulate(stats);
                if stats.actuator.safeguard_triggers > 0 || stats.model.intercepted_predictions > 0
                {
                    activated += 1;
                }
                epochs_completed.push(stats.model.epochs_completed as f64);
                actions.push(stats.actions_taken() as f64);
                triggers.push(stats.actuator.safeguard_triggers as f64);
            }
            RoleAggregate {
                name: first.agents[role].name.clone(),
                nodes: nodes.len(),
                totals,
                safeguard_activation_rate: activated as f64 / nodes.len() as f64,
                epochs_completed: Percentiles::of(&epochs_completed),
                actions_taken: Percentiles::of(&actions),
                safeguard_triggers: Percentiles::of(&triggers),
            }
        })
        .collect();

    // Metric summaries in the recipe's emission order; every node reports
    // the same names at the same positions (validated above), and values are
    // folded in node order so the layout is scheduling-independent.
    let metrics = first
        .metrics
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            let values: Vec<f64> = nodes.iter().map(|n| n.metrics[i].1).collect();
            let total: f64 = values.iter().sum();
            MetricSummary {
                name: name.clone(),
                nodes: values.len(),
                total,
                mean: total / values.len() as f64,
                min: values.iter().copied().fold(f64::INFINITY, f64::min),
                max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            }
        })
        .collect();

    let ended_at = nodes[0].ended_at;
    Ok(FleetReport { nodes, roles, metrics, ended_at, epochs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::node::NodeRuntime;
    use crate::runtime::testutil::{schedule, ConstModel, CountActuator, StepEnv};

    /// Renders a value's full Debug output as bytes for exact comparison.
    fn debug_bytes<T: std::fmt::Debug>(value: &T) -> Vec<u8> {
        format!("{value:#?}").into_bytes()
    }

    /// A two-agent recipe whose per-node collect interval is derived from the
    /// node seed, so nodes are heterogeneous but deterministic.
    fn heterogeneous_recipe() -> ScenarioRecipe<StepEnv> {
        ScenarioRecipe::new(|seed: &NodeSeed| {
            let mut builder = NodeRuntime::builder(StepEnv::default());
            let interval = 50 + seed.stream(0) % 100;
            builder.agent("fast", ConstModel { value: 1.0 }, CountActuator::default(), {
                schedule(interval)
            });
            builder.agent("slow", ConstModel { value: 2.0 }, CountActuator::default(), {
                schedule(2 * interval)
            });
            builder.build()
        })
        .with_metrics(|report| vec![("advances".into(), report.environment.advances as f64)])
    }

    #[test]
    fn node_seeds_are_unique_and_deterministic() {
        let mut seen = std::collections::HashSet::new();
        for index in 0..4096 {
            let seed = NodeSeed::derive(7, index);
            assert!(seen.insert(seed.seed()), "seed collision at node {index}");
            assert_eq!(seed.seed(), NodeSeed::derive(7, index).seed());
        }
        // Streams of one node are distinct too.
        let node = NodeSeed::derive(7, 3);
        assert_ne!(node.stream(0), node.stream(1));
    }

    #[test]
    fn rejects_degenerate_configs() {
        let bad = |config: FleetConfig| {
            matches!(
                FleetRuntime::new(heterogeneous_recipe(), config),
                Err(RuntimeError::InvalidConfig(_))
            )
        };
        assert!(bad(FleetConfig { nodes: 0, ..FleetConfig::default() }));
        assert!(bad(FleetConfig { threads: 0, ..FleetConfig::default() }));
        assert!(bad(FleetConfig { epoch: SimDuration::ZERO, ..FleetConfig::default() }));
        let fleet = FleetRuntime::new(heterogeneous_recipe(), FleetConfig::default()).unwrap();
        assert!(matches!(fleet.run(SimDuration::ZERO), Err(RuntimeError::EmptyHorizon)));
    }

    #[test]
    fn epoch_grid_clamps_to_the_horizon() {
        let grid = epoch_boundaries(SimDuration::from_secs(10), SimDuration::from_secs(3));
        assert_eq!(
            grid,
            vec![
                Timestamp::from_secs(3),
                Timestamp::from_secs(6),
                Timestamp::from_secs(9),
                Timestamp::from_secs(10),
            ]
        );
        // An epoch longer than the horizon degenerates to one boundary.
        let grid = epoch_boundaries(SimDuration::from_secs(2), SimDuration::from_secs(60));
        assert_eq!(grid, vec![Timestamp::from_secs(2)]);
    }

    #[test]
    fn report_is_byte_identical_across_thread_counts() {
        let run = |threads: usize| {
            let config = FleetConfig { nodes: 11, threads, ..FleetConfig::default() };
            let fleet = FleetRuntime::new(heterogeneous_recipe(), config).unwrap();
            debug_bytes(&fleet.run(SimDuration::from_secs(7)).unwrap())
        };
        let single = run(1);
        assert_eq!(single, run(2));
        assert_eq!(single, run(8));
        // More threads than nodes clamps rather than erroring.
        assert_eq!(single, run(64));
    }

    #[test]
    fn fleet_run_equals_the_fold_of_run_node() {
        let config = FleetConfig { nodes: 6, threads: 3, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(heterogeneous_recipe(), config).unwrap();
        let horizon = SimDuration::from_secs(5);
        let report = fleet.run(horizon).unwrap();
        for index in 0..6 {
            let solo = fleet.run_node(index, horizon).unwrap();
            assert_eq!(debug_bytes(&report.nodes[index]), debug_bytes(&solo));
        }
        assert!(matches!(fleet.run_node(6, horizon), Err(RuntimeError::InvalidConfig(_))));
    }

    #[test]
    fn seeds_make_nodes_heterogeneous() {
        let config = FleetConfig { nodes: 8, threads: 2, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(heterogeneous_recipe(), config).unwrap();
        let report = fleet.run(SimDuration::from_secs(10)).unwrap();
        let epochs: std::collections::HashSet<u64> =
            report.nodes.iter().map(|n| n.agents[0].stats.model.epochs_completed).collect();
        assert!(epochs.len() > 1, "per-node seeds must differentiate the nodes");
        // ...and the dashboards reflect the spread.
        let role = &report.roles[0];
        assert_eq!(role.name, "fast");
        assert_eq!(role.nodes, 8);
        assert!(role.epochs_completed.max > role.epochs_completed.min);
        assert_eq!(
            role.totals.model.epochs_completed,
            report.nodes.iter().map(|n| n.agents[0].stats.model.epochs_completed).sum::<u64>()
        );
    }

    #[test]
    fn metrics_aggregate_across_nodes() {
        let config = FleetConfig { nodes: 4, threads: 2, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(heterogeneous_recipe(), config).unwrap();
        let report = fleet.run(SimDuration::from_secs(3)).unwrap();
        let summary = report.metric("advances").expect("recipe reports advances");
        assert_eq!(summary.nodes, 4);
        assert!(summary.total > 0.0);
        assert!(summary.min <= summary.mean && summary.mean <= summary.max);
        assert!((summary.mean - summary.total / 4.0).abs() < 1e-9);
    }

    #[test]
    fn role_lookup_is_keyed_by_handle_position() {
        // Capture handles from a probe assembly; they are valid fleet-wide.
        let mut probe = NodeRuntime::builder(StepEnv::default());
        let fast =
            probe.agent("fast", ConstModel { value: 1.0 }, CountActuator::default(), schedule(80));
        let slow =
            probe.agent("slow", ConstModel { value: 2.0 }, CountActuator::default(), schedule(160));
        drop(probe);

        let config = FleetConfig { nodes: 3, threads: 2, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(heterogeneous_recipe(), config).unwrap();
        let report = fleet.run(SimDuration::from_secs(4)).unwrap();
        assert_eq!(report.role(fast).name, "fast");
        assert_eq!(report.role(slow).name, "slow");
        assert!(report.try_role(AgentId::from(fast)).is_ok());
    }

    #[test]
    fn differing_populations_are_rejected() {
        let recipe = ScenarioRecipe::new(|seed: &NodeSeed| {
            let mut builder = NodeRuntime::builder(StepEnv::default());
            builder.agent("a", ConstModel { value: 1.0 }, CountActuator::default(), schedule(100));
            if seed.index() % 2 == 1 {
                builder.agent("b", ConstModel { value: 1.0 }, CountActuator::default(), {
                    schedule(100)
                });
            }
            builder.build()
        });
        let config = FleetConfig { nodes: 2, threads: 1, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(recipe, config).unwrap();
        assert!(matches!(
            fleet.run(SimDuration::from_secs(1)),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn differing_metric_sets_are_rejected() {
        let recipe = ScenarioRecipe::new(|seed: &NodeSeed| {
            let env = StepEnv { fault: seed.index() % 2 == 1, ..StepEnv::default() };
            let mut builder = NodeRuntime::builder(env);
            builder.agent("a", ConstModel { value: 1.0 }, CountActuator::default(), schedule(100));
            builder.build()
        })
        .with_metrics(|report| {
            // A metric that only some nodes report would silently skew the
            // fleet-wide summaries; the aggregator must reject it.
            if report.environment.fault {
                Vec::new()
            } else {
                vec![("advances".into(), report.environment.advances as f64)]
            }
        });
        let config = FleetConfig { nodes: 4, threads: 2, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(recipe, config).unwrap();
        let result = fleet.run(SimDuration::from_secs(1));
        assert!(matches!(result, Err(RuntimeError::InvalidConfig(_))));
    }

    #[test]
    fn worker_panic_surfaces_as_runtime_error() {
        let recipe = ScenarioRecipe::new(|seed: &NodeSeed| {
            assert!(seed.index() != 1, "node 1 is cursed");
            let mut builder = NodeRuntime::builder(StepEnv::default());
            builder.agent("a", ConstModel { value: 1.0 }, CountActuator::default(), schedule(100));
            builder.build()
        });
        let config = FleetConfig { nodes: 3, threads: 2, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(recipe, config).unwrap();
        assert!(matches!(
            fleet.run(SimDuration::from_secs(1)),
            Err(RuntimeError::WorkerPanicked("fleet worker"))
        ));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let p = Percentiles::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.p50, 2.0);
        assert_eq!(p.p90, 4.0);
        assert_eq!(p.max, 4.0);
        let single = Percentiles::of(&[5.0]);
        assert_eq!(single.p50, 5.0);
        assert_eq!(single.p99, 5.0);
    }
}
