//! `FleetRuntime`: many simulated servers, one virtual clock.
//!
//! SOL's deployment story is fleet-wide: every server runs its own on-node
//! learners and the platform watches safety signals across thousands of
//! nodes. [`FleetRuntime`] makes that scale representable. It stamps out *N*
//! [`NodeRuntime`]s from one
//! [`ScenarioRecipe`] — a replayable closure over the
//! [`ScenarioBuilder`](crate::runtime::builder::ScenarioBuilder), seeded per
//! node through [`NodeSeed`] so nodes are heterogeneous but deterministic —
//! spreads the nodes across a work-stealing worker-thread pool (each worker
//! owns a task deque and steals from its siblings once its own runs dry, so
//! one slow node never idles a barrier), synchronizes all of them on
//! epoch boundaries of one virtual clock, and aggregates every node's
//! [`AgentStats`] into a [`FleetReport`] of fleet-level safety dashboards:
//! safeguard-activation rates, environment metric summaries (SLO violations,
//! tail latencies), and per-agent-role percentiles, keyed by the same
//! [`AgentHandle`](crate::runtime::builder::AgentHandle)s the recipe's
//! builder returned.
//!
//! The epoch barrier is a *programmable coordination point*:
//! [`FleetRuntime::run_with`] invokes a [`FleetController`] at every
//! boundary with a [`FleetView`] of per-node telemetry and workload
//! placement, and applies the returned placement commands (admit / depart /
//! migrate [`WorkloadUnit`]s) before releasing the barrier — see the
//! [`placement`](crate::runtime::placement) module. [`FleetRuntime::run`] is
//! sugar for running with the do-nothing [`NullController`].
//!
//! The view is delta-maintained: workers ship per-node [`NodeDelta`]s (one
//! full observation at a node's first barrier, positional diffs after that)
//! against one persistent coordinator-held base, so barrier cost scales with
//! what changed rather than with fleet width — and a controller whose
//! [`wants_view`](FleetController::wants_view) is `false` (like
//! [`NullController`]) skips per-node extraction entirely. Node state lives
//! in a slot arena shared between the coordinator and the workers in
//! disjoint protocol phases, which is what lets lifecycle and placement
//! phases apply directly instead of through per-phase message round trips.
//!
//! Node availability is programmable through the same plan: lifecycle events
//! (crash / join / drain — see the [`lifecycle`](crate::runtime::lifecycle)
//! module) are applied at the barrier before any placement command, tracked
//! in a versioned [`NodeRegistry`], and reported per node. A seeded
//! [`FaultPlan`] injects the same events without controller cooperation via
//! [`FleetRuntime::run_with_faults`].
//!
//! The barrier is also the fleet's model-exchange point: with a
//! [`LearningPlane`] configured ([`FleetConfig::learning`]), nodes piggyback
//! changed [`LearnedState`] snapshots of their learners on the `EpochDone`
//! they already send (quiet learners ship nothing, like quiet
//! [`NodeDelta`]s), and the coordinator robustly aggregates and
//! redistributes them between the lifecycle and placement phases — see the
//! [`learning`](crate::runtime::learning) module.
//!
//! An opt-in [`TrustPolicy`] ([`FleetConfig::trust`]) arms that exchange:
//! every round the coordinator scores each participant's export against the
//! post-aggregation consensus, excludes suspects from the fold, and — once
//! suspicion persists — quarantines the node by issuing a lifecycle `Drain`
//! at the next barrier, so a persistently poisoned node is not merely
//! outvoted but removed — see the [`trust`](crate::runtime::trust) module.
//!
//! # Determinism
//!
//! A fleet run is a pure function of `(recipe, FleetConfig, horizon)`:
//!
//! * per-node seeds come from an invertible mix of the fleet seed and the
//!   node index ([`NodeSeed::derive`]), so they never collide and never
//!   depend on scheduling;
//! * every node advances through the same epoch grid
//!   (`epoch, 2·epoch, …, horizon`) regardless of which worker claims it —
//!   a node is a pure function of its seed and the grid, so work stealing
//!   can rebalance freely without affecting any result; and
//! * aggregation and every barrier fold are keyed by node index, never by
//!   completion or steal order.
//!
//! The resulting [`FleetReport`] is byte-identical for 1, 2, or 64 worker
//! threads, including under forced load imbalance and seeded fault plans
//! (enforced in `tests/tests/determinism.rs` and `tests/tests/fleet.rs`).
//!
//! # Examples
//!
//! ```
//! use sol_core::prelude::*;
//! # use sol_core::error::DataError;
//! # #[derive(Clone)]
//! # struct M(f64);
//! # impl Model for M {
//! #     type Data = f64;
//! #     type Pred = f64;
//! #     fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> { Ok(self.0) }
//! #     fn validate_data(&self, d: &f64) -> bool { d.is_finite() }
//! #     fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
//! #     fn update_model(&mut self, _now: Timestamp) {}
//! #     fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
//! #         Some(Prediction::model(self.0, now, now + SimDuration::from_secs(1)))
//! #     }
//! #     fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
//! #         Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
//! #     }
//! #     fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment { ModelAssessment::Healthy }
//! # }
//! # #[derive(Default)]
//! # struct A { count: u64 }
//! # impl Actuator for A {
//! #     type Pred = f64;
//! #     fn take_action(&mut self, _now: Timestamp, _pred: Option<&Prediction<f64>>) {
//! #         self.count += 1;
//! #     }
//! #     fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
//! #         ActuatorAssessment::Acceptable
//! #     }
//! #     fn mitigate(&mut self, _now: Timestamp) {}
//! #     fn clean_up(&mut self, _now: Timestamp) {}
//! # }
//! let schedule = Schedule::builder()
//!     .data_per_epoch(2)
//!     .data_collect_interval(SimDuration::from_millis(100))
//!     .max_epoch_time(SimDuration::from_secs(1))
//!     .build()?;
//!
//! // One agent per node; the per-node seed makes the fleet heterogeneous.
//! let recipe = ScenarioRecipe::new(move |seed: &NodeSeed| {
//!     let mut builder = NodeRuntime::builder(NullEnvironment);
//!     builder.agent("learner", M(seed.stream(0) as f64), A::default(), schedule.clone());
//!     builder.build()
//! });
//!
//! let config = FleetConfig { nodes: 16, threads: 4, ..FleetConfig::default() };
//! let report = FleetRuntime::new(recipe, config)?.run(SimDuration::from_secs(5))?;
//! assert_eq!(report.nodes.len(), 16);
//! assert_eq!(report.roles[0].name, "learner");
//! assert_eq!(report.roles[0].totals.model.epochs_completed, 16 * 25);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;

use crossbeam::channel::{self, Receiver, Sender};
use crossbeam::deque::{Steal, Stealer, Worker as TaskQueue};

use sol_ml::exchange::LearnedState;

use crate::error::{ReportError, RuntimeError};
use crate::runtime::builder::ScenarioRecipe;
use crate::runtime::learning::{LearningExchange, LearningPlane, LearningStats, NodeLearnedExport};
use crate::runtime::lifecycle::{FaultPlan, LifecycleEvent, NodeRecord, NodeRegistry, NodeState};
use crate::runtime::node::{AgentId, NodeRuntime};
use crate::runtime::placement::{
    AgentTelemetry, FleetCommand, FleetController, FleetView, NodeDelta, NodeInit, NodePlacement,
    NodeView, NullController, PlacementPlan, WorkloadId, WorkloadUnit,
};
use crate::runtime::trust::{NodeTrustRecord, TrustAction, TrustPlane, TrustPolicy, TrustStats};
use crate::runtime::Environment;
use crate::stats::AgentStats;
use crate::time::{SimDuration, Timestamp};

/// Odd multiplier walking the per-node seed sequence (the golden-ratio
/// constant of SplitMix64). Oddness makes `fleet_seed + GAMMA·index` distinct
/// for every index, and [`splitmix64`] is a bijection, so derived seeds never
/// collide within a fleet.
pub(crate) const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer: a bijective avalanche mix on `u64`.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(GAMMA);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic identity of one node in a fleet: its index plus the
/// seed derived from `(fleet_seed, index)`.
///
/// Recipes split the node seed into independent streams with
/// [`stream`](Self::stream) — one per substrate or learner — so adding a new
/// consumer never perturbs the existing ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeSeed {
    fleet_seed: u64,
    index: u64,
    seed: u64,
}

impl NodeSeed {
    /// Derives the seed of node `index` in the fleet seeded by `fleet_seed`.
    ///
    /// The derivation is collision-free: for a fixed `fleet_seed`, distinct
    /// indices always yield distinct seeds (`fleet_seed + GAMMA·index` is
    /// injective because `GAMMA` is odd, and the SplitMix64 finalizer is a
    /// bijection). `tests/tests/fleet.rs` property-checks this for fleets up
    /// to 4096 nodes.
    pub fn derive(fleet_seed: u64, index: u64) -> NodeSeed {
        let seed = splitmix64(fleet_seed.wrapping_add(index.wrapping_mul(GAMMA)));
        NodeSeed { fleet_seed, index, seed }
    }

    /// The fleet master seed this node seed was derived from.
    pub fn fleet_seed(&self) -> u64 {
        self.fleet_seed
    }

    /// The node's index in the fleet (`0..nodes`).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The node's derived seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// An independent sub-seed for consumer `stream` (substrate RNG, learner
    /// RNG, …). Distinct streams of one node never collide.
    ///
    /// # Stream allocation convention
    ///
    /// Stream indices `0..=15` are reserved for the node-assembly presets in
    /// `sol-agents` (currently: 0 = overclock learner, 1 = CPU substrate
    /// fault injector, 2 = memory learner, 3 = memory substrate sampler;
    /// 4..=15 are held back for future preset consumers). Indices `16` and
    /// up are free for custom recipes, controllers, and experiment drivers.
    /// Fleet-level inputs that are not per-node — e.g. an
    /// [`ArrivalTrace`](crate::runtime::placement::ArrivalTrace) — should be
    /// seeded from the fleet master seed directly, not from a node stream.
    pub fn stream(&self, stream: u64) -> u64 {
        splitmix64(self.seed.wrapping_add(stream.wrapping_mul(GAMMA)))
    }
}

/// Shape of a fleet run: how many nodes, how many worker threads, the epoch
/// synchronization quantum of the shared virtual clock, the master seed, and
/// the optional learning plane.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of simulated servers stamped out from the recipe.
    pub nodes: usize,
    /// Worker threads the nodes are sharded across (clamped to `nodes`).
    /// The thread count never changes results — only wall-clock time.
    pub threads: usize,
    /// Virtual time between fleet-wide synchronization barriers. Every node
    /// reaches epoch boundary `k·epoch` before any node starts epoch `k+1`.
    pub epoch: SimDuration,
    /// Master seed; per-node seeds are derived via [`NodeSeed::derive`].
    pub seed: u64,
    /// Optional learning plane: when set, the coordinator periodically
    /// aggregates the nodes' exported [`LearnedState`]s and redistributes
    /// the blend — see the [`learning`](crate::runtime::learning) module.
    /// `None` (the default) runs the fleet with no model exchange.
    pub learning: Option<LearningPlane>,
    /// Optional trust plane (requires [`learning`](Self::learning)): when
    /// set, every exchange round scores each participant's export against
    /// the consensus, excludes suspects from aggregation, and drains
    /// persistently divergent nodes — see the
    /// [`trust`](crate::runtime::trust) module. `None` (the default) runs
    /// the learning plane with containment only.
    pub trust: Option<TrustPolicy>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            nodes: 8,
            threads: 4,
            epoch: SimDuration::from_secs(1),
            seed: 0x501_f1ee7,
            learning: None,
            trust: None,
        }
    }
}

/// Final counters of one agent on one fleet node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetAgentReport {
    /// The name the agent was registered under (identical across nodes).
    pub name: String,
    /// The agent's final runtime counters.
    pub stats: AgentStats,
}

/// Outcome of one node of a fleet run: per-agent counters plus the named
/// environment metrics the recipe extracted before the node was discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetNodeReport {
    /// The node's index in the fleet.
    pub node: usize,
    /// The derived seed the node was stamped out with.
    pub seed: u64,
    /// Per-agent outcomes, in registration order (the same order on every
    /// node, so position == role).
    pub agents: Vec<FleetAgentReport>,
    /// Environment metrics extracted by the recipe's
    /// [`with_metrics`](ScenarioRecipe::with_metrics) closure.
    pub metrics: Vec<(String, f64)>,
    /// Workload units resident on the node when it stopped (empty for
    /// environments without placeable slots).
    pub workloads: Vec<WorkloadUnit>,
    /// The node's final lifecycle record: its state when the run ended (or
    /// when it retired), the record version, and the join/update epochs.
    /// [`NodeRecord::initial`] for a node that saw no lifecycle events.
    pub lifecycle: NodeRecord,
    /// The node's final trust record: accumulated suspicion, divergence
    /// counters, and the verdict the trust plane ended on.
    /// [`NodeTrustRecord::initial`] for a run without a
    /// [`TrustPolicy`](FleetConfig::trust).
    pub trust: NodeTrustRecord,
    /// The virtual time at which the node stopped. For a crashed or drained
    /// node this is the boundary at which it retired, measured on the node's
    /// own clock (which starts at zero when the node joins).
    pub ended_at: Timestamp,
    /// Bytes of simulation state the node held when it stopped — the
    /// runtime's event wheel plus whatever the environment reports through
    /// [`Environment::mem_bytes`]. Zero for environments that do not
    /// implement the accounting hook.
    pub mem_bytes: usize,
}

/// Nearest-rank percentiles over one per-node statistic of an agent role.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Smallest per-node value.
    pub min: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Largest per-node value.
    pub max: f64,
}

impl Percentiles {
    /// The all-zero distribution: what [`of`](Self::of) returns for an empty
    /// slice.
    pub const ZEROED: Percentiles =
        Percentiles { min: 0.0, p50: 0.0, p90: 0.0, p99: 0.0, max: 0.0 };

    /// Computes nearest-rank percentiles; `values` need not be sorted.
    ///
    /// An empty slice yields [`Percentiles::ZEROED`] — there is no data to
    /// rank, and a zeroed row keeps aggregate reports total rather than
    /// panicking deep inside a fleet fold. Callers that need to distinguish
    /// "no data" from "all zero" should use [`try_of`](Self::try_of).
    pub fn of(values: &[f64]) -> Percentiles {
        Percentiles::try_of(values).unwrap_or(Percentiles::ZEROED)
    }

    /// Like [`of`](Self::of), but reports an empty slice as `None` instead of
    /// a zeroed distribution.
    pub fn try_of(values: &[f64]) -> Option<Percentiles> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |p: f64| {
            let n = sorted.len();
            let r = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
            sorted[r.min(n) - 1]
        };
        Some(Percentiles {
            min: sorted[0],
            p50: rank(50.0),
            p90: rank(90.0),
            p99: rank(99.0),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// Fleet-wide aggregate for one agent role (one registration position of the
/// recipe), the unit of the safety dashboard.
#[derive(Debug, Clone, PartialEq)]
pub struct RoleAggregate {
    /// The name the role's agents were registered under.
    pub name: String,
    /// Number of nodes contributing to this aggregate.
    pub nodes: usize,
    /// Field-wise sum of every node's [`AgentStats`] for this role.
    pub totals: AgentStats,
    /// Fraction of nodes on which a safeguard activated at least once
    /// (an Actuator safeguard trip or a Model prediction interception).
    pub safeguard_activation_rate: f64,
    /// Per-node distribution of completed learning epochs.
    pub epochs_completed: Percentiles,
    /// Per-node distribution of actions taken.
    pub actions_taken: Percentiles,
    /// Per-node distribution of Actuator safeguard trips.
    pub safeguard_triggers: Percentiles,
}

/// Fleet-wide summary of one named environment metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Metric name, as reported by the recipe's metrics closure.
    pub name: String,
    /// Number of nodes that reported the metric.
    pub nodes: usize,
    /// Sum across nodes (e.g. total SLO violations in the fleet).
    pub total: f64,
    /// Mean across nodes.
    pub mean: f64,
    /// Smallest per-node value.
    pub min: f64,
    /// Largest per-node value.
    pub max: f64,
}

/// Fleet-wide placement outcomes of one run: what the
/// [`FleetController`] asked for and what actually happened.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementStats {
    /// Total commands the controller issued across all epoch boundaries.
    pub commands: u64,
    /// Workload units successfully admitted.
    pub admitted: u64,
    /// Workload units successfully departed (drained).
    pub departed: u64,
    /// Workload units successfully migrated between nodes.
    pub migrated: u64,
    /// Commands that failed against the hosting environment: rejected
    /// admissions (capacity, unsupported environment, duplicate id, or a
    /// non-`Active` target node), detaches of unknown units, migrations
    /// whose either half failed — plus, at the end of the run, one count for
    /// every crash-displaced unit that was never re-placed.
    pub failed_placements: u64,
    /// Workload units displaced by node crashes.
    pub displaced: u64,
    /// Displaced units successfully re-placed onto a live node (a subset of
    /// [`admitted`](Self::admitted)).
    pub replaced: u64,
    /// Distribution over nodes of each node's mean occupancy (used fraction
    /// of its placeable capacity, averaged over the epoch barriers).
    /// [`Percentiles::ZEROED`] when no environment has placeable capacity.
    pub occupancy: Percentiles,
    /// Mean over epoch barriers of (fleet-wide resident cores) /
    /// (fleet-wide placeable capacity); 0 when nothing is placeable.
    pub packing_efficiency: f64,
}

impl Default for PlacementStats {
    fn default() -> Self {
        PlacementStats {
            commands: 0,
            admitted: 0,
            departed: 0,
            migrated: 0,
            failed_placements: 0,
            displaced: 0,
            replaced: 0,
            occupancy: Percentiles::ZEROED,
            packing_efficiency: 0.0,
        }
    }
}

/// Results of a completed fleet run: per-node outcomes in index order plus
/// the fleet-level dashboards.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-node outcomes, sorted by node index.
    pub nodes: Vec<FleetNodeReport>,
    /// Per-role aggregates, in agent registration order. Index with the
    /// [`AgentHandle`](crate::runtime::builder::AgentHandle)s the recipe's
    /// builder returned, via [`role`](Self::role). Crashed nodes are
    /// excluded from the fold (their partial counters would skew the safety
    /// dashboard); their stats remain visible in [`nodes`](Self::nodes)
    /// under the node's final lifecycle state.
    pub roles: Vec<RoleAggregate>,
    /// Summaries of the recipe-extracted environment metrics, in first-seen
    /// order. Crashed nodes are excluded, as for [`roles`](Self::roles).
    pub metrics: Vec<MetricSummary>,
    /// Placement outcomes (all-zero for a [`NullController`] run over
    /// capacity-free environments).
    pub placement: PlacementStats,
    /// Learning-plane outcomes (all-zero when [`FleetConfig::learning`] is
    /// `None`).
    pub learning: LearningStats,
    /// Trust-plane outcomes (all-zero when [`FleetConfig::trust`] is
    /// `None`). Per-node scores and verdicts live on each
    /// [`FleetNodeReport::trust`].
    pub trust: TrustStats,
    /// The virtual time at which the fleet stopped (identical on every node).
    pub ended_at: Timestamp,
    /// Number of epoch-boundary synchronizations the run performed (the
    /// controller is invoked once per boundary).
    pub epochs: u64,
    /// The largest per-node [`FleetNodeReport::mem_bytes`] in the fleet — the
    /// per-node budget a host must provision to run this configuration. A
    /// max (not a mean) because every node must fit; deterministic because
    /// each node's footprint is a pure function of its trajectory.
    pub mem_bytes_per_node: usize,
}

impl FleetReport {
    /// The aggregate for one agent role, keyed by the
    /// [`AgentHandle`](crate::runtime::builder::AgentHandle) (or [`AgentId`])
    /// the recipe's builder returned.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not name a role of this fleet; use
    /// [`try_role`](Self::try_role) to handle that as a [`ReportError`].
    pub fn role(&self, handle: impl Into<AgentId>) -> &RoleAggregate {
        self.try_role(handle).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`role`](Self::role).
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::UnknownAgent`] if the handle's position is out
    /// of range for the recipe's agent population.
    pub fn try_role(&self, handle: impl Into<AgentId>) -> Result<&RoleAggregate, ReportError> {
        let id = handle.into();
        self.roles.get(id.index()).ok_or_else(|| ReportError::UnknownAgent(id.to_string()))
    }

    /// The summary of one recipe-extracted environment metric, by name.
    pub fn metric(&self, name: &str) -> Option<&MetricSummary> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// One unit of epoch work: a node's slot in the shared arena. The node index
/// lives inside the slot (in its seed), so a task is just the `Arc`.
type NodeTask<E> = Arc<NodeSlot<E>>;

/// What a worker sends back to the coordinator.
enum WorkerMsg {
    /// Every task of the current epoch this worker executed (claimed from
    /// its own deque or stolen) reached the boundary; carries the deltas of
    /// the nodes whose observable state changed, plus — on exchange rounds —
    /// the learned states that changed since the nodes' last exports.
    EpochDone {
        /// Observation deltas of the changed nodes.
        deltas: Vec<NodeDelta>,
        /// Learning-plane exports (empty unless the epoch's `learn` flag was
        /// set and some node had changed learned state).
        exports: Vec<NodeLearnedExport>,
    },
    /// Final per-node outcomes (sent once, in response to `Finish`).
    Finished(Vec<FleetNodeReport>),
}

/// What the coordinator sends to a worker: one message per epoch (the entire
/// lifecycle/placement phase runs coordinator-side against the shared
/// arena), and one final summarize request.
enum CoordMsg<E: Environment + 'static> {
    /// Advance the epoch: push `tasks` onto the worker's own deque, then
    /// claim tasks (own deque first, stealing when dry) until no work is
    /// left anywhere, running each claimed node to `boundary`. `collect`
    /// asks for full barrier observations (agent stats + telemetry deltas);
    /// without it only each node's first observation is shipped.
    Epoch {
        /// The virtual time every node must reach.
        boundary: Timestamp,
        /// Whether the controller reads agent stats and telemetry.
        collect: bool,
        /// Whether this barrier is a learning-plane exchange round (nodes
        /// piggyback changed learned state on their `EpochDone`).
        learn: bool,
        /// This worker's share of the epoch's tasks.
        tasks: Vec<NodeTask<E>>,
    },
    /// Summarize the surviving nodes (same claiming discipline) and ship
    /// their reports home. Terminates the worker.
    Finish {
        /// This worker's share of the summarize tasks.
        tasks: Vec<NodeTask<E>>,
    },
}

/// Drives *N* recipe-stamped [`NodeRuntime`]s under one virtual clock. See
/// the [module docs](self).
pub struct FleetRuntime<E: Environment + 'static> {
    recipe: Arc<ScenarioRecipe<E>>,
    config: FleetConfig,
}

impl<E: Environment + 'static> Clone for FleetRuntime<E> {
    fn clone(&self) -> Self {
        FleetRuntime { recipe: Arc::clone(&self.recipe), config: self.config.clone() }
    }
}

impl<E: Environment + 'static> std::fmt::Debug for FleetRuntime<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetRuntime").field("config", &self.config).finish_non_exhaustive()
    }
}

impl<E: Environment + 'static> FleetRuntime<E> {
    /// Creates a fleet from a recipe and a config.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if `nodes` or `threads` is
    /// zero, if `epoch` is zero, if the learning plane is degenerate
    /// (`exchange_every` of zero, or a blend weight outside `[0, 1]`), or if
    /// a trust policy is configured without a learning plane or with
    /// degenerate thresholds.
    pub fn new(recipe: ScenarioRecipe<E>, config: FleetConfig) -> Result<Self, RuntimeError> {
        if config.nodes == 0 {
            return Err(RuntimeError::InvalidConfig(
                "fleet config: nodes must be at least 1".into(),
            ));
        }
        if config.threads == 0 {
            return Err(RuntimeError::InvalidConfig(
                "fleet config: threads must be at least 1".into(),
            ));
        }
        if config.epoch.is_zero() {
            return Err(RuntimeError::InvalidConfig("fleet config: epoch must be non-zero".into()));
        }
        if let Some(plane) = &config.learning {
            plane.validate().map_err(|e| RuntimeError::InvalidConfig(format!("fleet {e}")))?;
        }
        if let Some(policy) = &config.trust {
            if config.learning.is_none() {
                return Err(RuntimeError::InvalidConfig(
                    "fleet trust policy requires a learning plane: there is nothing to score \
                     without exchange rounds"
                        .into(),
                ));
            }
            policy.validate().map_err(|e| RuntimeError::InvalidConfig(format!("fleet {e}")))?;
        }
        // The recipe is shared by reference from here on: worker threads and
        // per-node runs borrow the same allocation instead of cloning the
        // closure set per worker or per call.
        Ok(FleetRuntime { recipe: Arc::new(recipe), config })
    }

    /// Validates a run horizon against the config (shared by
    /// [`run_with`](Self::run_with) and [`run_node`](Self::run_node)).
    fn check_horizon(&self, horizon: SimDuration) -> Result<(), RuntimeError> {
        if horizon.is_zero() {
            return Err(RuntimeError::EmptyHorizon);
        }
        if self.config.epoch > horizon {
            return Err(RuntimeError::InvalidConfig(format!(
                "fleet config: epoch ({}) exceeds the run horizon ({horizon})",
                self.config.epoch
            )));
        }
        Ok(())
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The seed node `index` would be stamped out with.
    pub fn node_seed(&self, index: usize) -> NodeSeed {
        NodeSeed::derive(self.config.seed, index as u64)
    }

    /// Runs the whole fleet for `horizon` of virtual time with no placement
    /// activity: sugar for [`run_with`](Self::run_with) and the
    /// [`NullController`] — byte-identical results, same barrier protocol.
    /// Because [`NullController`] declines the per-node view
    /// ([`FleetController::wants_view`]), barriers skip agent-stat and
    /// telemetry extraction entirely: the per-epoch fixed cost is one task
    /// hand-off per live node.
    ///
    /// # Errors
    ///
    /// See [`run_with`](Self::run_with).
    pub fn run(&self, horizon: SimDuration) -> Result<FleetReport, RuntimeError>
    where
        E: Send,
    {
        self.run_with(&mut NullController, horizon)
    }

    /// Runs the whole fleet for `horizon` of virtual time under a
    /// [`FleetController`]: stamps every node out of the recipe into a
    /// shared slot arena and advances all of them epoch by epoch (no node
    /// enters epoch `k+1` before every node finished epoch `k`). Epoch work
    /// is distributed by work stealing — each worker thread owns a task
    /// deque and steals from its siblings once its own runs dry — so barrier
    /// wall time tracks the total work of the epoch, not the slowest static
    /// shard. Which thread advances a node never affects results: a node's
    /// trajectory is a pure function of its seed and the shared epoch grid,
    /// and all barrier folds are keyed by node index.
    ///
    /// At every epoch boundary the controller receives a [`FleetView`] of
    /// per-node telemetry and placement and returns a [`PlacementPlan`]; the
    /// plan is applied before the barrier is released — departures and
    /// migration-detaches first, then admissions, then migration-attaches,
    /// each phase stable-sorted by target node index — so freed capacity is
    /// available to the same barrier's admissions. The view is maintained as
    /// one persistent base patched in place from per-node [`NodeDelta`]s, so
    /// a quiet node costs nothing at the barrier; a controller whose
    /// [`wants_view`](FleetController::wants_view) is `false` skips even
    /// that, receiving views with exact `placement`/`state`/`displaced` but
    /// empty per-node agent and telemetry vectors.
    ///
    /// The plan's lifecycle events are applied first, before any placement
    /// command: a crash retires the node and moves its residents into the
    /// displaced pool surfaced by the next [`FleetView`], a join stamps a
    /// fresh node from the recipe at the next free index (its
    /// [`NodeSeed`] is collision-free by construction), and a drain flips
    /// the node to `Draining` — it rejects admissions from this boundary on
    /// and retires as `Drained` once a barrier observation shows it empty.
    /// Every change is validated against the [`NodeRegistry`] state machine;
    /// an illegal transition aborts the run.
    ///
    /// Commands that fail against a node's environment (capacity exceeded,
    /// unknown unit, environment without placeable slots) or against the
    /// registry (admitting to a non-`Active` node) are counted in
    /// [`PlacementStats::failed_placements`], not fatal. A migration whose
    /// attach half fails is rolled back — the unit is re-attached to its
    /// source node, whose capacity the detach just freed — so a rejected
    /// migration can never destroy a workload unit.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::EmptyHorizon`] if `horizon` is zero,
    /// [`RuntimeError::InvalidConfig`] if `epoch` exceeds `horizon`, if the
    /// controller addressed a node index outside the fleet, if it issued an
    /// illegal lifecycle transition, or if the recipe produced differing
    /// agent populations across nodes, and
    /// [`RuntimeError::WorkerPanicked`] if a worker thread died (e.g. the
    /// recipe panicked).
    pub fn run_with(
        &self,
        controller: &mut dyn FleetController,
        horizon: SimDuration,
    ) -> Result<FleetReport, RuntimeError>
    where
        E: Send,
    {
        self.check_horizon(horizon)?;
        let boundaries = epoch_boundaries(horizon, self.config.epoch);
        let threads = self.config.threads.min(self.config.nodes);
        // Sampled once per run: whether barriers must extract agent stats
        // and telemetry at all.
        let collect = controller.wants_view();
        // The learning plane's coordinator half: the per-node learned-state
        // mirror, the latest per-role aggregates, and the run's counters.
        let mut exchange =
            self.config.learning.map(|plane| LearningExchange::new(plane, self.config.nodes));
        // The trust plane's engine (config validation guarantees it never
        // exists without the exchange it scores), plus the quarantine
        // hand-off: drains issued by round `k`'s scoring are applied in
        // barrier `k+1`'s lifecycle phase, because scoring runs after the
        // current barrier's lifecycle phase already completed.
        let mut trust = self.config.trust.map(|policy| TrustPlane::new(policy, self.config.nodes));
        let mut trust_drains: Vec<usize> = Vec::new();

        // The slot arena: one persistent, mutex-guarded slot per node index,
        // shared between the coordinator and whichever worker claims the
        // node each epoch. Slots are stamped lazily (`Vacant`) and die in
        // place (`Retired`), so a node's state never moves between
        // allocations for the lifetime of the run, and the coordinator can
        // apply lifecycle and placement phases directly — no per-phase
        // message round trips.
        let mut arena: Vec<Arc<NodeSlot<E>>> = (0..self.config.nodes)
            .map(|index| NodeSlot::vacant(self.node_seed(index), Timestamp::ZERO))
            .collect();

        // Work-stealing pool: each worker owns a FIFO deque and steals from
        // every sibling once its own runs dry, so one slow node no longer
        // idles the whole barrier.
        let queues: Vec<TaskQueue<NodeTask<E>>> =
            (0..threads).map(|_| TaskQueue::new_fifo()).collect();
        let stealers: Vec<Stealer<NodeTask<E>>> = queues.iter().map(|q| q.stealer()).collect();
        let mut links = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for (w, queue) in queues.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = channel::unbounded::<CoordMsg<E>>();
            let (done_tx, done_rx) = channel::unbounded::<WorkerMsg>();
            links.push((cmd_tx, done_rx));
            let recipe = Arc::clone(&self.recipe);
            let siblings: Vec<Stealer<NodeTask<E>>> = stealers
                .iter()
                .enumerate()
                .filter(|&(s, _)| s != w)
                .map(|(_, stealer)| stealer.clone())
                .collect();
            let handle = thread::Builder::new()
                .name("sol-fleet-worker".into())
                .spawn(move || worker(recipe, queue, siblings, cmd_rx, done_tx))
                .expect("spawn fleet worker");
            handles.push(handle);
        }

        // The coordinator-held base view, patched in place from worker
        // deltas at every barrier; the crash-displaced pool lives inside it.
        // Initial entries are placeholders — every node ships a full first
        // observation at its first barrier, before any controller looks.
        let mut base = FleetView {
            now: Timestamp::ZERO,
            epoch: 0,
            nodes: (0..self.config.nodes)
                .map(|index| NodeView {
                    node: index,
                    agents: Vec::new(),
                    telemetry: Vec::new(),
                    placement: NodePlacement::none(),
                    state: NodeState::Active,
                })
                .collect(),
            displaced: Vec::new(),
        };

        let mut node_reports: Vec<Option<FleetNodeReport>> = Vec::new();
        // Reports of nodes retired mid-run, folded in with the survivors'.
        let mut early_reports: Vec<FleetNodeReport> = Vec::new();
        let mut registry = NodeRegistry::new(self.config.nodes);
        let mut placement = PlacementStats::default();
        let mut occupancy_sums = vec![0.0f64; self.config.nodes];
        let mut packing_sum = 0.0f64;
        let mut error: Option<RuntimeError> = None;
        let died = || RuntimeError::WorkerPanicked("fleet worker");

        // Epoch barrier: fan the live nodes out as tasks, collect one
        // EpochDone (with per-node deltas) per worker, invoke the controller
        // on the patched base view, and apply its plan — lifecycle events
        // first, then the placement phases — directly on the arena. A worker
        // death (recv error) aborts the protocol; dropping our command
        // senders unblocks the remaining workers.
        'protocol: {
            for (k, &boundary) in boundaries.iter().enumerate() {
                let epoch = k as u64;
                let learn = exchange.as_ref().is_some_and(|e| e.plane().is_learn_epoch(epoch));
                // Round-robin over live nodes as the initial assignment;
                // stealing rebalances whatever this gets wrong.
                let mut tasks: Vec<Vec<NodeTask<E>>> = (0..threads).map(|_| Vec::new()).collect();
                for (position, index) in (0..registry.len())
                    .filter(|&index| registry.records()[index].state.is_live())
                    .enumerate()
                {
                    tasks[position % threads].push(Arc::clone(&arena[index]));
                }
                for ((cmd_tx, _), batch) in links.iter().zip(tasks) {
                    let msg = CoordMsg::Epoch { boundary, collect, learn, tasks: batch };
                    if cmd_tx.send(msg).is_err() {
                        error = Some(died());
                        break 'protocol;
                    }
                }
                let mut barrier_failed = false;
                let mut barrier_exports: Vec<NodeLearnedExport> = Vec::new();
                for (_, done_rx) in &links {
                    match done_rx.recv() {
                        Ok(WorkerMsg::EpochDone { deltas, exports }) => {
                            for delta in deltas {
                                delta.apply(&mut base.nodes[delta.node]);
                            }
                            barrier_exports.extend(exports);
                        }
                        _ => {
                            barrier_failed = true;
                        }
                    }
                }
                if barrier_failed {
                    error = Some(died());
                    break 'protocol;
                }
                if learn {
                    if let Some(exchange) = exchange.as_mut() {
                        // Patch the learned-state mirror before lifecycle
                        // events retire anyone: the exports describe the
                        // boundary every node just reached.
                        exchange.absorb(barrier_exports);
                    }
                }

                // Registry bookkeeping from the fresh observations, before
                // the controller sees the view: nodes that joined at an
                // earlier boundary have run a full epoch and become Active;
                // draining nodes observed empty retire as Drained this
                // boundary.
                let mut drain_retires: Vec<usize> = Vec::new();
                for index in 0..registry.len() {
                    let record = registry.records()[index];
                    match record.state {
                        NodeState::Joining if record.joined_epoch < epoch => {
                            registry
                                .transition(index, NodeState::Active, epoch)
                                .expect("joining -> active is legal");
                        }
                        NodeState::Draining if base.nodes[index].placement.resident.is_empty() => {
                            registry
                                .transition(index, NodeState::Drained, epoch)
                                .expect("draining -> drained is legal");
                            drain_retires.push(index);
                        }
                        _ => {}
                    }
                }

                // Stamp the barrier position and every node's registry state
                // onto the base view (retired nodes were tombstoned when
                // they retired).
                base.now = boundary;
                base.epoch = epoch;
                for (index, view) in base.nodes.iter_mut().enumerate() {
                    view.state = registry.records()[index].state;
                }

                // Occupancy bookkeeping from the (pre-plan) base view.
                let mut used_total = 0.0;
                let mut capacity_total = 0.0;
                for node in &base.nodes {
                    occupancy_sums[node.node] += node.placement.occupancy();
                    used_total += node.placement.used();
                    capacity_total += node.placement.capacity;
                }
                if capacity_total > 0.0 {
                    packing_sum += used_total / capacity_total;
                }

                let plan = controller.plan(&base);
                placement.commands += plan.len() as u64;
                let (commands, lifecycle_events) = plan.into_parts();

                // Lifecycle phase, applied directly on the arena: the plan's
                // events update the registry in issue order — an illegal
                // transition is a loud error, never a silent repair — then
                // completed drains and fresh crashes retire together, in
                // node order, so the displaced pool's layout is independent
                // of issue order.
                let mut retiring: Vec<usize> = drain_retires;
                let mut crash_retires: Vec<usize> = Vec::new();
                let mut joined: Vec<usize> = Vec::new();
                for event in lifecycle_events {
                    let outcome = match event {
                        LifecycleEvent::Crash { node } => {
                            registry.transition(node, NodeState::Crashed, epoch).map(|()| {
                                crash_retires.push(node);
                                retiring.push(node);
                            })
                        }
                        LifecycleEvent::Drain { node } => {
                            registry.transition(node, NodeState::Draining, epoch)
                        }
                        LifecycleEvent::Join => {
                            let index = registry.join(epoch);
                            arena.push(NodeSlot::vacant(
                                NodeSeed::derive(self.config.seed, index as u64),
                                boundary,
                            ));
                            base.nodes.push(NodeView {
                                node: index,
                                agents: Vec::new(),
                                telemetry: Vec::new(),
                                placement: NodePlacement::none(),
                                state: NodeState::Joining,
                            });
                            joined.push(index);
                            Ok(())
                        }
                    };
                    if let Err(e) = outcome {
                        error = Some(RuntimeError::InvalidConfig(e.to_string()));
                        break 'protocol;
                    }
                }
                // Trust-plane quarantines flow through the same lifecycle
                // machinery as controller drains, one barrier after the
                // round that issued them (scoring runs after this phase).
                // The indices were collected in ascending node order. A node
                // the controller crashed or drained in the meantime is
                // skipped: the quarantine's intent — get the node out of the
                // fleet — is already satisfied, and its exports stay
                // excluded either way.
                for node in trust_drains.drain(..) {
                    if registry.records()[node].state == NodeState::Active {
                        registry
                            .transition(node, NodeState::Draining, epoch)
                            .expect("active -> draining is legal");
                    }
                }
                occupancy_sums.resize(registry.len(), 0.0);
                if let Some(exchange) = exchange.as_mut() {
                    exchange.grow(registry.len());
                }
                if let Some(trust) = trust.as_mut() {
                    trust.grow(registry.len());
                }

                retiring.sort_unstable();
                for &node in &retiring {
                    let (report, residents) = arena[node].retire(&self.recipe);
                    early_reports.push(report);
                    if let Some(exchange) = exchange.as_mut() {
                        // Retired nodes stop contributing to aggregates from
                        // this barrier on: a crashed node's final export was
                        // absorbed above, and dropping its row here removes
                        // it before this barrier's exchange round folds.
                        exchange.forget(node);
                    }
                    // Tombstone the base entry; its state stamp comes off
                    // the registry at the next barrier, like every node's.
                    let view = &mut base.nodes[node];
                    view.agents = Vec::new();
                    view.telemetry = Vec::new();
                    view.placement = NodePlacement::none();
                    if crash_retires.contains(&node) {
                        // Crashed: residents are displaced and must be
                        // re-placed by the controller.
                        placement.displaced += residents.len() as u64;
                        base.displaced.extend(residents);
                    } else if !residents.is_empty() {
                        // A node only retires as Drained after a barrier
                        // observation showed it empty, and nothing may
                        // attach in between; resident units here mean the
                        // protocol is broken.
                        error = Some(RuntimeError::InvalidConfig(format!(
                            "drained node {node} still hosts {} workload unit(s)",
                            residents.len()
                        )));
                        break 'protocol;
                    }
                }

                // Learning phase, between lifecycle and placement: on
                // exchange rounds, fold the live nodes' mirrored states into
                // per-role aggregates and import the blended aggregate back
                // into every live node. Everything runs coordinator-side,
                // keyed by node index in ascending order, so the learning
                // plane inherits the thread-count determinism of the rest of
                // the barrier. Nodes that joined at this barrier warm-start
                // from the latest aggregates (whether or not this barrier
                // was an exchange round) instead of learning from scratch.
                if let Some(exchange) = exchange.as_mut() {
                    if learn {
                        let live: Vec<usize> = (0..registry.len())
                            .filter(|&index| registry.records()[index].state.is_live())
                            .collect();
                        // Trust gate: suspects' and quarantined nodes'
                        // exports are withheld from the fold. Verdicts are
                        // the ones standing at the start of the round, so
                        // exclusion is a pure function of earlier rounds.
                        let participants: Vec<usize> = match trust.as_mut() {
                            Some(trust) => trust.participants(&live),
                            None => live.clone(),
                        };
                        exchange.round(&participants);
                        // Score the round: every live node's mirrored export
                        // (withheld ones included — measured against the
                        // consensus they no longer vote on) against the
                        // fresh aggregates, in node-index order. Quarantine
                        // verdicts queue a Drain for the next barrier's
                        // lifecycle phase.
                        if let Some(trust) = trust.as_mut() {
                            for action in trust.evaluate(epoch, &live, exchange) {
                                if let TrustAction::Quarantine { node, .. } = action {
                                    trust_drains.push(node);
                                }
                            }
                        }
                        let blend = exchange.plane().blend;
                        let aggregates: Vec<Option<LearnedState>> = exchange.aggregates().to_vec();
                        for &node in &live {
                            for (slot, aggregate) in aggregates.iter().enumerate() {
                                let Some(aggregate) = aggregate else { continue };
                                // A node whose state was rejected from the
                                // round (or that never exported this slot)
                                // keeps its local state untouched.
                                let Some(local) = exchange.local(node, slot) else { continue };
                                if local.compatible_with(aggregate).is_err() {
                                    continue;
                                }
                                let Ok(blended) = blend.blend(local, aggregate) else {
                                    exchange.record_rejected();
                                    continue;
                                };
                                if blended == *local {
                                    // Nothing to ship — the common case for
                                    // `Replace` on a converged (or one-node)
                                    // fleet, and what keeps a learning fleet
                                    // of one byte-identical to `run_node`.
                                    continue;
                                }
                                let imported = arena[node]
                                    .with_live(|shard| shard.import_learned(slot, &blended))
                                    .unwrap_or(false);
                                if imported {
                                    exchange.record_import(node, slot, blended);
                                } else {
                                    exchange.record_rejected();
                                }
                            }
                        }
                    }
                    for &node in &joined {
                        let aggregates: Vec<Option<LearnedState>> = exchange.aggregates().to_vec();
                        let mut warmed = false;
                        for (slot, aggregate) in aggregates.iter().enumerate() {
                            let Some(aggregate) = aggregate else { continue };
                            // Stamping here is byte-identical to the lazy
                            // stamp a worker would perform at the node's
                            // first epoch — it is a pure function of the
                            // recipe and the slot's seed.
                            let imported = arena[node]
                                .with_stamped(&self.recipe, |shard| {
                                    shard.import_learned(slot, aggregate)
                                })
                                .unwrap_or(false);
                            if imported {
                                exchange.record_import(node, slot, aggregate.clone());
                                warmed = true;
                            }
                        }
                        if warmed {
                            exchange.record_warm_start();
                        }
                    }
                }

                // Partition the placement commands into the detach and attach
                // phases, each stable-sorted by target node.
                // `detach_targets[tag]` remembers where a successfully
                // detached unit migrates to. Commands are validated against
                // the registry: an out-of-range index is a loud error, while
                // a command against a node in the wrong lifecycle state
                // (admissions and migration targets need `Active`; sources
                // need a live node) counts as a failed placement — this is
                // how draining and joining nodes reject admissions, and how
                // commands racing a same-plan crash fail instead of
                // resurrecting a dead node.
                let mut detaches: Vec<(usize, WorkloadId)> = Vec::new();
                let mut detach_targets: Vec<Option<usize>> = Vec::new();
                let mut admissions: Vec<(usize, WorkloadUnit)> = Vec::new();
                let fleet_size = registry.len();
                for command in commands {
                    let check = |node: usize| -> Result<usize, RuntimeError> {
                        if node < fleet_size {
                            Ok(node)
                        } else {
                            Err(RuntimeError::InvalidConfig(format!(
                                "controller addressed node {node} of a {fleet_size}-node fleet"
                            )))
                        }
                    };
                    let state = |node: usize| registry.records()[node].state;
                    let outcome = (|| match command {
                        FleetCommand::Admit { node, unit } => {
                            let node = check(node)?;
                            if state(node).is_active() {
                                admissions.push((node, unit));
                            } else {
                                placement.failed_placements += 1;
                            }
                            Ok(())
                        }
                        FleetCommand::Depart { node, workload } => {
                            let node = check(node)?;
                            if state(node).is_live() {
                                detaches.push((node, workload));
                                detach_targets.push(None);
                            } else {
                                placement.failed_placements += 1;
                            }
                            Ok(())
                        }
                        FleetCommand::Migrate { from, to, workload } => {
                            let to = check(to)?;
                            let from = check(from)?;
                            if state(from).is_live() && state(to).is_active() {
                                detaches.push((from, workload));
                                detach_targets.push(Some(to));
                            } else {
                                placement.failed_placements += 1;
                            }
                            Ok(())
                        }
                    })();
                    if let Err(e) = outcome {
                        error = Some(e);
                        break 'protocol;
                    }
                }

                // Detach phase (departures + migration sources), applied on
                // the arena in (node, tag) order — the same order the
                // sharded protocol produced. `touched` collects every node
                // whose placement the phases may have changed, for the
                // mirror refresh below.
                let mut touched: Vec<usize> = Vec::new();
                let detach_sources: Vec<usize> = detaches.iter().map(|&(node, _)| node).collect();
                let mut tagged: Vec<(usize, usize, WorkloadId)> = detaches
                    .into_iter()
                    .enumerate()
                    .map(|(tag, (node, workload))| (tag, node, workload))
                    .collect();
                tagged.sort_by_key(|&(tag, node, _)| (node, tag));
                let mut recovered: Vec<Option<WorkloadUnit>> = vec![None; detach_targets.len()];
                for &(tag, node, workload) in &tagged {
                    touched.push(node);
                    recovered[tag] = arena[node]
                        .with_live(|shard| shard.runtime.detach_workload(workload).ok())
                        .flatten();
                }
                for (tag, target) in detach_targets.iter().enumerate() {
                    match (&recovered[tag], target) {
                        (None, _) => placement.failed_placements += 1,
                        (Some(_), None) => placement.departed += 1,
                        (Some(_), Some(_)) => {} // counted when the attach lands
                    }
                }

                // Attach phase: admissions (plan order), then migration
                // re-attaches (plan order), applied stable-sorted by target
                // node. `attach_table[tag]` keeps the migration source so a
                // failed attach can be rolled back.
                let mut attach_table: Vec<(usize, WorkloadUnit, Option<usize>)> = Vec::new();
                for (node, unit) in admissions {
                    attach_table.push((node, unit, None));
                }
                for (tag, target) in detach_targets.iter().enumerate() {
                    if let (Some(to), Some(unit)) = (target, recovered[tag]) {
                        attach_table.push((*to, unit, Some(detach_sources[tag])));
                    }
                }
                let mut order: Vec<usize> = (0..attach_table.len()).collect();
                order.sort_by_key(|&tag| (attach_table[tag].0, tag));
                let mut failed_tags: Vec<usize> = Vec::new();
                for &tag in &order {
                    let (node, unit, source) = attach_table[tag];
                    touched.push(node);
                    let attached = arena[node]
                        .with_live(|shard| shard.runtime.attach_workload(unit).is_ok())
                        .unwrap_or(false);
                    match (attached, source.is_some()) {
                        (true, false) => placement.admitted += 1,
                        (true, true) => placement.migrated += 1,
                        (false, _) => failed_tags.push(tag),
                    }
                }

                // Rollback phase: a migration whose attach half failed must
                // not destroy the unit — it goes back to its source node
                // (which just freed the capacity). The failed migration
                // still counts as a failed placement; failed admissions
                // only count (the unit never entered the fleet).
                failed_tags.sort_unstable();
                let mut restores: Vec<(usize, WorkloadUnit)> = Vec::new();
                for &tag in &failed_tags {
                    placement.failed_placements += 1;
                    let (_, unit, source) = attach_table[tag];
                    if let Some(source) = source {
                        restores.push((source, unit));
                    }
                }

                // Displaced units whose re-admission landed leave the pool.
                for (tag, (_, unit, source)) in attach_table.iter().enumerate() {
                    if source.is_none() && failed_tags.binary_search(&tag).is_err() {
                        if let Some(pos) = base.displaced.iter().position(|u| u.id == unit.id) {
                            base.displaced.remove(pos);
                            placement.replaced += 1;
                        }
                    }
                }
                for &(node, unit) in &restores {
                    touched.push(node);
                    let restored = arena[node]
                        .with_live(|shard| shard.runtime.attach_workload(unit).is_ok())
                        .unwrap_or(false);
                    if !restored {
                        // A unit that could not even return home is
                        // genuinely lost; make that loud in the stats.
                        placement.failed_placements += 1;
                    }
                }

                // Placement changes only through the hooks above, so the
                // mirror refresh re-reads truth for the touched nodes alone;
                // every other node's mirrored placement is already exact.
                touched.sort_unstable();
                touched.dedup();
                for &node in &touched {
                    if let Some(now) = arena[node].with_live(|shard| shard.runtime.placement()) {
                        base.nodes[node].placement = now;
                    }
                }
            }

            // Finish: surviving nodes summarize through the same stealing
            // pool (summaries are independent; reports re-sort by index).
            let mut tasks: Vec<Vec<NodeTask<E>>> = (0..threads).map(|_| Vec::new()).collect();
            for (position, index) in (0..registry.len())
                .filter(|&index| registry.records()[index].state.is_live())
                .enumerate()
            {
                tasks[position % threads].push(Arc::clone(&arena[index]));
            }
            for ((cmd_tx, _), batch) in links.iter().zip(tasks) {
                if cmd_tx.send(CoordMsg::Finish { tasks: batch }).is_err() {
                    error = Some(died());
                    break 'protocol;
                }
            }
            node_reports.resize_with(registry.len(), || None);
            for (_, done_rx) in &links {
                match done_rx.recv() {
                    Ok(WorkerMsg::Finished(reports)) => {
                        for report in reports {
                            let index = report.node;
                            node_reports[index] = Some(report);
                        }
                    }
                    _ => {
                        error = Some(died());
                        break 'protocol;
                    }
                }
            }
            for report in early_reports.drain(..) {
                let index = report.node;
                node_reports[index] = Some(report);
            }
        }

        drop(links);
        let mut worker_died = false;
        for handle in handles {
            if handle.join().is_err() {
                worker_died = true;
            }
        }
        if worker_died {
            // A panic inside a worker is the root cause; report it even if
            // the protocol error surfaced first.
            return Err(RuntimeError::WorkerPanicked("fleet worker"));
        }
        if let Some(e) = error {
            return Err(e);
        }

        let epochs = boundaries.len() as f64;
        placement.occupancy =
            Percentiles::of(&occupancy_sums.iter().map(|s| s / epochs).collect::<Vec<f64>>());
        placement.packing_efficiency = packing_sum / epochs;
        // Displaced units nobody re-placed did not survive the run; that must
        // be loud in the stats, not silently forgotten with the pool.
        placement.failed_placements += base.displaced.len() as u64;

        let mut nodes: Vec<FleetNodeReport> =
            node_reports.into_iter().map(|r| r.expect("every node reported")).collect();
        for node in &mut nodes {
            node.lifecycle = registry.records()[node.node];
            if let Some(trust) = &trust {
                node.trust = trust.record(node.node);
            }
        }
        let ended_at = *boundaries.last().expect("non-empty epoch grid");
        let learning = exchange.map(|e| e.stats()).unwrap_or_default();
        let trust = trust.map(|t| t.stats()).unwrap_or_default();
        aggregate(nodes, boundaries.len() as u64, placement, learning, trust, ended_at)
    }

    /// Runs the fleet under a [`FleetController`] while a seeded
    /// [`FaultPlan`] injects availability events (crashes, joins, drains) at
    /// epoch boundaries, without the controller's cooperation: at every
    /// boundary the plan's due events are appended after the controller's
    /// own lifecycle events. An empty fault plan makes this byte-identical
    /// to [`run_with`](Self::run_with).
    ///
    /// # Errors
    ///
    /// See [`run_with`](Self::run_with). A fault plan event that lands on a
    /// node in an incompatible state (e.g. crashing a node the controller
    /// already drained to completion) is an
    /// [`RuntimeError::InvalidConfig`] — generate plans with
    /// [`FaultPlan::generate`], which samples crash/drain targets without
    /// replacement, to avoid this.
    pub fn run_with_faults(
        &self,
        controller: &mut dyn FleetController,
        faults: FaultPlan,
        horizon: SimDuration,
    ) -> Result<FleetReport, RuntimeError>
    where
        E: Send,
    {
        let mut injector = FaultInjector { inner: controller, faults };
        self.run_with(&mut injector, horizon)
    }

    /// Runs a single node of the fleet inline on the calling thread, with the
    /// same per-node seed and the same epoch segmentation as [`run`] — the
    /// resulting [`FleetNodeReport`] is byte-identical to the corresponding
    /// entry of a full fleet run. Useful for debugging one server of a large
    /// fleet and for testing that fleet aggregation is exactly the fold of
    /// per-node reports.
    ///
    /// A configured [`FleetConfig::learning`] plane is coordinator-driven
    /// and has no single-node equivalent: `run_node` never exchanges state,
    /// so its report matches the fleet entry only when no exchange round
    /// actually changed the node's models (e.g. a fleet of one under
    /// [`BlendPolicy::Replace`](sol_ml::exchange::BlendPolicy::Replace),
    /// where the aggregate always equals the local state and redistribution
    /// is skipped).
    ///
    /// [`run`]: Self::run
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::EmptyHorizon`] if `horizon` is zero and
    /// [`RuntimeError::InvalidConfig`] if `index` is out of range or `epoch`
    /// exceeds `horizon`.
    pub fn run_node(
        &self,
        index: usize,
        horizon: SimDuration,
    ) -> Result<FleetNodeReport, RuntimeError> {
        self.check_horizon(horizon)?;
        if index >= self.config.nodes {
            return Err(RuntimeError::InvalidConfig(format!(
                "node index {index} out of range for a {}-node fleet",
                self.config.nodes
            )));
        }
        let seed = self.node_seed(index);
        let mut runtime = self.recipe.instantiate(&seed);
        for &boundary in &epoch_boundaries(horizon, self.config.epoch) {
            runtime.run_until(boundary);
        }
        Ok(summarize(&self.recipe, seed, runtime))
    }
}

/// Appends a [`FaultPlan`]'s due events to the wrapped controller's plan at
/// every boundary — the adapter behind
/// [`FleetRuntime::run_with_faults`].
struct FaultInjector<'c> {
    inner: &'c mut dyn FleetController,
    faults: FaultPlan,
}

impl FleetController for FaultInjector<'_> {
    fn plan(&mut self, view: &FleetView) -> PlacementPlan {
        let mut plan = self.inner.plan(view);
        for event in self.faults.due(view.now) {
            plan.lifecycle(event);
        }
        plan
    }

    fn wants_view(&self) -> bool {
        self.inner.wants_view()
    }
}

/// The epoch grid: `epoch, 2·epoch, …` clamped to the horizon, ending
/// exactly at the horizon.
fn epoch_boundaries(horizon: SimDuration, epoch: SimDuration) -> Vec<Timestamp> {
    let end = Timestamp::ZERO + horizon;
    let mut boundaries = Vec::new();
    let mut t = Timestamp::ZERO;
    loop {
        t = t.saturating_add(epoch).min(end);
        boundaries.push(t);
        if t >= end {
            return boundaries;
        }
    }
}

/// One stamped node: its seed, its live runtime, the fleet time at which its
/// local clock started (non-zero for nodes joined mid-run), and the
/// last-shipped observation baselines its barrier deltas diff against.
struct ShardNode<E: Environment + 'static> {
    seed: NodeSeed,
    runtime: NodeRuntime<E>,
    start: Timestamp,
    /// Per-role stats as of the last shipped observation, indexed by
    /// [`AgentId`] order (the order `agent_snapshots` reports).
    stats_base: Vec<AgentStats>,
    /// Telemetry readings as of the last shipped observation, positional.
    telemetry_base: Vec<f64>,
    /// Whether a first full observation has been shipped yet.
    observed: bool,
    /// Learned states as of the last learning-plane export (or coordinator
    /// import), indexed by agent slot; the exchange-round diff baseline.
    /// Empty until the first exchange round touches the node.
    learned_base: Vec<Option<LearnedState>>,
}

impl<E: Environment + 'static> ShardNode<E> {
    /// Stamps the node out of the recipe. Baselines stay empty until the
    /// first barrier observation ships.
    fn stamp(recipe: &ScenarioRecipe<E>, seed: NodeSeed, start: Timestamp) -> Self {
        ShardNode {
            runtime: recipe.instantiate(&seed),
            seed,
            start,
            stats_base: Vec::new(),
            telemetry_base: Vec::new(),
            observed: false,
            learned_base: Vec::new(),
        }
    }

    /// Maps fleet time onto this node's local clock. A joined node starts a
    /// virgin timeline at its join boundary, so the recipe's schedules and
    /// seed-derived phases behave exactly as on a node present from the
    /// start.
    fn local(&self, fleet_time: Timestamp) -> Timestamp {
        Timestamp::ZERO + fleet_time.duration_since(self.start)
    }

    /// The barrier observation as a delta against the last one. The first
    /// call ships a full [`NodeInit`] (placement always, agent stats and
    /// telemetry only when `collect`); later calls diff against the shipped
    /// baselines and return `None` when nothing changed — the common case
    /// for quiet nodes, costing the coordinator nothing.
    fn observe(&mut self, recipe: &ScenarioRecipe<E>, collect: bool) -> Option<NodeDelta> {
        let node = self.seed.index() as usize;
        let mut delta = NodeDelta::empty(node);
        if !self.observed {
            self.observed = true;
            delta.init = Some(self.full_observation(recipe, collect));
            return Some(delta);
        }
        if !collect {
            return None;
        }
        for role in 0..self.stats_base.len() {
            let stats = self.runtime.agent_stats(AgentId::from(role));
            if stats != self.stats_base[role] {
                self.stats_base[role] = stats.clone();
                delta.agents.push((role, stats));
            }
        }
        let readings = recipe.extract_telemetry(self.runtime.environment());
        if readings.len() != self.telemetry_base.len() {
            // The telemetry shape changed; re-ship everything rather than
            // patch positionally against a stale layout.
            delta.agents.clear();
            delta.init = Some(self.full_observation(recipe, collect));
            return Some(delta);
        }
        for (slot, (_, value)) in readings.into_iter().enumerate() {
            if value != self.telemetry_base[slot] {
                self.telemetry_base[slot] = value;
                delta.telemetry.push((slot, value));
            }
        }
        if delta.is_empty() {
            None
        } else {
            Some(delta)
        }
    }

    /// A full observation, refreshing the diff baselines. Placement is
    /// always exact (the coordinator mirrors it); agent stats and telemetry
    /// are extracted only when some controller will read them.
    fn full_observation(&mut self, recipe: &ScenarioRecipe<E>, collect: bool) -> NodeInit {
        let mut init = NodeInit {
            agents: Vec::new(),
            telemetry: Vec::new(),
            placement: self.runtime.placement(),
        };
        if collect {
            init.agents = self
                .runtime
                .agent_snapshots()
                .into_iter()
                .map(|(name, stats)| AgentTelemetry { name, stats })
                .collect();
            init.telemetry = recipe.extract_telemetry(self.runtime.environment());
            self.stats_base = init.agents.iter().map(|a| a.stats.clone()).collect();
            self.telemetry_base = init.telemetry.iter().map(|&(_, value)| value).collect();
        }
        init
    }

    /// The learning-plane export for this barrier: every agent's learned
    /// state that changed since the node's last export (the first exchange
    /// round ships every exportable state). `None` when nothing changed —
    /// the quiet-learner case, costing the coordinator nothing, exactly
    /// like an unchanged [`observe`](Self::observe).
    fn export_learned(&mut self) -> Option<NodeLearnedExport> {
        let snapshots = self.runtime.learned_snapshots();
        self.learned_base.resize(snapshots.len(), None);
        let mut states = Vec::new();
        for (slot, snapshot) in snapshots.into_iter().enumerate() {
            let Some(state) = snapshot else { continue };
            if self.learned_base[slot].as_ref() == Some(&state) {
                continue;
            }
            self.learned_base[slot] = Some(state.clone());
            states.push((slot, state));
        }
        if states.is_empty() {
            None
        } else {
            Some(NodeLearnedExport { node: self.seed.index() as usize, states })
        }
    }

    /// Imports a (blended) fleet aggregate into agent `slot`'s model,
    /// refreshing the export baseline so the next exchange round does not
    /// re-ship what the coordinator already knows. Returns whether the
    /// model accepted the state.
    fn import_learned(&mut self, slot: usize, state: &LearnedState) -> bool {
        if slot >= self.runtime.agent_count() {
            return false;
        }
        if self.runtime.driver_mut(AgentId::from(slot)).import_learned(state).is_err() {
            return false;
        }
        if self.learned_base.len() <= slot {
            self.learned_base.resize(slot + 1, None);
        }
        self.learned_base[slot] = Some(state.clone());
        true
    }
}

/// A node's lifetime inside its arena slot: recipe-stampable, stamped, or
/// permanently retired.
///
/// `Live` dwarfs the other variants, but boxing it would put a pointer chase
/// on every event batch: a slot spends essentially its whole lifetime `Live`,
/// and the enum lives in a per-node heap allocation already (the arena's
/// `Arc<NodeSlot>`), so the size difference buys nothing.
#[allow(clippy::large_enum_variant)]
enum Slot<E: Environment + 'static> {
    /// Not yet stamped: holds everything needed to stamp on first claim, so
    /// construction cost lands on whichever worker first advances the node,
    /// not on the coordinator.
    Vacant { seed: NodeSeed, start: Timestamp },
    /// Stamped and running.
    Live(ShardNode<E>),
    /// Retired (crashed or drained); its report already shipped.
    Retired,
}

/// One arena slot, shared between the coordinator and the workers. The
/// protocol keeps their accesses in disjoint phases (workers only between
/// `Epoch`/`Finish` send and `EpochDone`/`Finished` receive, the coordinator
/// only outside them), so the mutex is never contended — it exists to make
/// the sharing sound, not to arbitrate races.
struct NodeSlot<E: Environment + 'static>(Mutex<Slot<E>>);

impl<E: Environment + 'static> NodeSlot<E> {
    fn vacant(seed: NodeSeed, start: Timestamp) -> Arc<Self> {
        Arc::new(NodeSlot(Mutex::new(Slot::Vacant { seed, start })))
    }

    fn lock(&self) -> MutexGuard<'_, Slot<E>> {
        // A worker that panicked never sends its EpochDone, so the
        // coordinator aborts before touching the slots it poisoned; this
        // expect is a backstop, not a code path.
        self.0.lock().expect("fleet node slot poisoned")
    }

    /// Stamps the node if needed, advances it to the epoch boundary, and
    /// returns its barrier observation delta plus — when `learn` marks an
    /// exchange round — its learning-plane export (both `None` for an
    /// unchanged node or a retired slot).
    fn advance(
        &self,
        recipe: &ScenarioRecipe<E>,
        boundary: Timestamp,
        collect: bool,
        learn: bool,
    ) -> (Option<NodeDelta>, Option<NodeLearnedExport>) {
        let mut guard = self.lock();
        if let Slot::Vacant { seed, start } = *guard {
            *guard = Slot::Live(ShardNode::stamp(recipe, seed, start));
        }
        let Slot::Live(node) = &mut *guard else { return (None, None) };
        let until = node.local(boundary);
        node.runtime.run_until(until);
        let delta = node.observe(recipe, collect);
        let export = if learn { node.export_learned() } else { None };
        (delta, export)
    }

    /// Finishes the node and takes its report, leaving the slot `Retired`.
    /// A still-vacant slot (a node that joined at the final boundary) is
    /// stamped first so it reports like any zero-advancement node.
    fn summarize_slot(&self, recipe: &ScenarioRecipe<E>) -> Option<FleetNodeReport> {
        let mut guard = self.lock();
        if let Slot::Vacant { seed, start } = *guard {
            *guard = Slot::Live(ShardNode::stamp(recipe, seed, start));
        }
        match std::mem::replace(&mut *guard, Slot::Retired) {
            Slot::Live(node) => Some(summarize(recipe, node.seed, node.runtime)),
            _ => None,
        }
    }

    /// Retires the node mid-run: reports it and surfaces the workload units
    /// still resident on it (the coordinator displaces a crashed node's,
    /// and treats a drained node's as a protocol violation). A vacant slot
    /// (a node crashed at its own join boundary) is stamped first, matching
    /// the eager-instantiation behaviour of the sharded protocol.
    fn retire(&self, recipe: &ScenarioRecipe<E>) -> (FleetNodeReport, Vec<WorkloadUnit>) {
        let mut guard = self.lock();
        if let Slot::Vacant { seed, start } = *guard {
            *guard = Slot::Live(ShardNode::stamp(recipe, seed, start));
        }
        match std::mem::replace(&mut *guard, Slot::Retired) {
            Slot::Live(node) => {
                let residents = node.runtime.placement().resident;
                (summarize(recipe, node.seed, node.runtime), residents)
            }
            _ => unreachable!("retired node is live or vacant"),
        }
    }

    /// Runs `f` on the live node, if the slot is live. The coordinator's
    /// placement hooks go through this: a command addressed to a node whose
    /// slot is vacant (joined this very barrier) or retired fails, exactly
    /// as it did against the sharded protocol's position lookup.
    fn with_live<R>(&self, f: impl FnOnce(&mut ShardNode<E>) -> R) -> Option<R> {
        let mut guard = self.lock();
        match &mut *guard {
            Slot::Live(node) => Some(f(node)),
            _ => None,
        }
    }

    /// Stamps the node if still vacant, then runs `f` on it (`None` only
    /// for a retired slot). The learning plane's join warm-start goes
    /// through this: importing the fleet aggregate needs a live runtime,
    /// and stamping is a pure function of the recipe and the slot's seed,
    /// so stamping here is byte-identical to the lazy stamp the first
    /// advancing worker would otherwise perform.
    fn with_stamped<R>(
        &self,
        recipe: &ScenarioRecipe<E>,
        f: impl FnOnce(&mut ShardNode<E>) -> R,
    ) -> Option<R> {
        let mut guard = self.lock();
        if let Slot::Vacant { seed, start } = *guard {
            *guard = Slot::Live(ShardNode::stamp(recipe, seed, start));
        }
        match &mut *guard {
            Slot::Live(node) => Some(f(node)),
            _ => None,
        }
    }
}

/// Claims the next task: the worker's own queue first (FIFO, preserving the
/// coordinator's assignment order), then steals from siblings. Returns
/// `None` only once the own queue is drained and every sibling reported
/// `Empty` in a full sweep with no `Retry` — at which point every task of
/// the barrier is claimed by someone.
fn claim<T>(queue: &TaskQueue<T>, stealers: &[Stealer<T>]) -> Option<T> {
    if let Some(task) = queue.pop() {
        return Some(task);
    }
    loop {
        let mut retry = false;
        for stealer in stealers {
            match stealer.steal() {
                Steal::Success(task) => return Some(task),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Worker body: on each `Epoch` command, push the assigned slots onto the
/// own deque, then claim-and-advance (own queue first, stealing once it
/// runs dry) until no task is left anywhere, and ship the observation
/// deltas home in one message. `Finish` summarizes the surviving nodes the
/// same way. A closed channel at any point means the run was aborted
/// (another worker died, or the controller erred) — exit quietly.
fn worker<E: Environment + Send + 'static>(
    recipe: Arc<ScenarioRecipe<E>>,
    queue: TaskQueue<NodeTask<E>>,
    stealers: Vec<Stealer<NodeTask<E>>>,
    cmd_rx: Receiver<CoordMsg<E>>,
    done_tx: Sender<WorkerMsg>,
) {
    loop {
        match cmd_rx.recv() {
            Ok(CoordMsg::Epoch { boundary, collect, learn, tasks }) => {
                for task in tasks {
                    queue.push(task);
                }
                let mut deltas = Vec::new();
                let mut exports = Vec::new();
                while let Some(slot) = claim(&queue, &stealers) {
                    let (delta, export) = slot.advance(&recipe, boundary, collect, learn);
                    if let Some(delta) = delta {
                        deltas.push(delta);
                    }
                    if let Some(export) = export {
                        exports.push(export);
                    }
                }
                if done_tx.send(WorkerMsg::EpochDone { deltas, exports }).is_err() {
                    return;
                }
            }
            Ok(CoordMsg::Finish { tasks }) => {
                for task in tasks {
                    queue.push(task);
                }
                let mut finished = Vec::new();
                while let Some(slot) = claim(&queue, &stealers) {
                    if let Some(report) = slot.summarize_slot(&recipe) {
                        finished.push(report);
                    }
                }
                let _ = done_tx.send(WorkerMsg::Finished(finished));
                return;
            }
            Err(_) => return,
        }
    }
}

/// Finishes one node and boils its report down to the `Send`-able summary
/// the coordinator aggregates (stats + recipe-extracted metrics).
fn summarize<E: Environment + 'static>(
    recipe: &ScenarioRecipe<E>,
    seed: NodeSeed,
    runtime: NodeRuntime<E>,
) -> FleetNodeReport {
    let workloads = runtime.placement().resident;
    let mem_bytes = runtime.mem_bytes();
    let report = runtime.finish();
    let metrics = recipe.extract_metrics(&report);
    let agents = report
        .agents
        .iter()
        .map(|a| FleetAgentReport { name: a.name.clone(), stats: a.stats.clone() })
        .collect();
    FleetNodeReport {
        node: seed.index() as usize,
        seed: seed.seed(),
        agents,
        metrics,
        workloads,
        // The initial record; the fleet coordinator stamps the registry's
        // final record over it, which is byte-identical for a node that saw
        // no lifecycle events — keeping [`FleetRuntime::run_node`] exact.
        lifecycle: NodeRecord::initial(seed.index() as usize),
        // Same contract as `lifecycle`: the coordinator stamps the trust
        // plane's final record over this when one is configured.
        trust: NodeTrustRecord::initial(seed.index() as usize),
        ended_at: report.ended_at,
        mem_bytes,
    }
}

/// Folds per-node reports (already in index order) into the fleet dashboard.
///
/// Crashed nodes are validated like every other node but excluded from the
/// role aggregates and metric summaries — a crash truncates the node's
/// trajectory at an arbitrary boundary, so folding its stats in would skew
/// the surviving fleet's dashboard. Their full reports remain in
/// [`FleetReport::nodes`]. `ended_at` is the fleet clock's final boundary,
/// passed in explicitly because node 0 may itself have retired early.
fn aggregate(
    nodes: Vec<FleetNodeReport>,
    epochs: u64,
    placement: PlacementStats,
    learning: LearningStats,
    trust: TrustStats,
    ended_at: Timestamp,
) -> Result<FleetReport, RuntimeError> {
    let first = &nodes[0];
    for node in &nodes[1..] {
        let matches = node.agents.len() == first.agents.len()
            && node.agents.iter().zip(&first.agents).all(|(a, b)| a.name == b.name);
        if !matches {
            return Err(RuntimeError::InvalidConfig(format!(
                "recipe produced differing agent populations: node 0 has {:?}, node {} has {:?}",
                first.agents.iter().map(|a| &a.name).collect::<Vec<_>>(),
                node.node,
                node.agents.iter().map(|a| &a.name).collect::<Vec<_>>(),
            )));
        }
        // Metric summaries are fleet-wide means/totals, so a node silently
        // dropping a metric would skew them; fail as loudly as a population
        // mismatch does.
        let metrics_match = node.metrics.len() == first.metrics.len()
            && node.metrics.iter().zip(&first.metrics).all(|((a, _), (b, _))| a == b);
        if !metrics_match {
            return Err(RuntimeError::InvalidConfig(format!(
                "recipe produced differing metric sets: node 0 has {:?}, node {} has {:?}",
                first.metrics.iter().map(|(n, _)| n).collect::<Vec<_>>(),
                node.node,
                node.metrics.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )));
        }
    }

    let contributors: Vec<&FleetNodeReport> =
        nodes.iter().filter(|n| n.lifecycle.state != NodeState::Crashed).collect();
    // `max(1)` guards the all-crashed fleet: rates read 0 instead of NaN.
    let denominator = contributors.len().max(1) as f64;

    let roles = (0..first.agents.len())
        .map(|role| {
            let mut totals = AgentStats::default();
            let mut activated = 0usize;
            let mut epochs_completed = Vec::with_capacity(contributors.len());
            let mut actions = Vec::with_capacity(contributors.len());
            let mut triggers = Vec::with_capacity(contributors.len());
            for node in &contributors {
                let stats = &node.agents[role].stats;
                totals.accumulate(stats);
                if stats.actuator.safeguard_triggers > 0 || stats.model.intercepted_predictions > 0
                {
                    activated += 1;
                }
                epochs_completed.push(stats.model.epochs_completed as f64);
                actions.push(stats.actions_taken() as f64);
                triggers.push(stats.actuator.safeguard_triggers as f64);
            }
            RoleAggregate {
                name: first.agents[role].name.clone(),
                nodes: contributors.len(),
                totals,
                safeguard_activation_rate: activated as f64 / denominator,
                epochs_completed: Percentiles::of(&epochs_completed),
                actions_taken: Percentiles::of(&actions),
                safeguard_triggers: Percentiles::of(&triggers),
            }
        })
        .collect();

    // Metric summaries in the recipe's emission order; every node reports
    // the same names at the same positions (validated above), and values are
    // folded in node order so the layout is scheduling-independent.
    let metrics = first
        .metrics
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            let values: Vec<f64> = contributors.iter().map(|n| n.metrics[i].1).collect();
            let total: f64 = values.iter().sum();
            let (min, max) = if values.is_empty() {
                (0.0, 0.0)
            } else {
                (
                    values.iter().copied().fold(f64::INFINITY, f64::min),
                    values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                )
            };
            MetricSummary {
                name: name.clone(),
                nodes: values.len(),
                total,
                mean: total / denominator,
                min,
                max,
            }
        })
        .collect();

    let mem_bytes_per_node = nodes.iter().map(|n| n.mem_bytes).max().unwrap_or(0);
    Ok(FleetReport {
        nodes,
        roles,
        metrics,
        placement,
        learning,
        trust,
        ended_at,
        epochs,
        mem_bytes_per_node,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::node::NodeRuntime;
    use crate::runtime::testutil::{schedule, ConstModel, CountActuator, StepEnv};

    /// Renders a value's full Debug output as bytes for exact comparison.
    fn debug_bytes<T: std::fmt::Debug>(value: &T) -> Vec<u8> {
        format!("{value:#?}").into_bytes()
    }

    /// A two-agent recipe whose per-node collect interval is derived from the
    /// node seed, so nodes are heterogeneous but deterministic.
    fn heterogeneous_recipe() -> ScenarioRecipe<StepEnv> {
        ScenarioRecipe::new(|seed: &NodeSeed| {
            let mut builder = NodeRuntime::builder(StepEnv::default());
            let interval = 50 + seed.stream(0) % 100;
            builder.agent("fast", ConstModel { value: 1.0 }, CountActuator::default(), {
                schedule(interval)
            });
            builder.agent("slow", ConstModel { value: 2.0 }, CountActuator::default(), {
                schedule(2 * interval)
            });
            builder.build()
        })
        .with_metrics(|report| vec![("advances".into(), report.environment.advances as f64)])
    }

    #[test]
    fn node_seeds_are_unique_and_deterministic() {
        let mut seen = std::collections::HashSet::new();
        for index in 0..4096 {
            let seed = NodeSeed::derive(7, index);
            assert!(seen.insert(seed.seed()), "seed collision at node {index}");
            assert_eq!(seed.seed(), NodeSeed::derive(7, index).seed());
        }
        // Streams of one node are distinct too.
        let node = NodeSeed::derive(7, 3);
        assert_ne!(node.stream(0), node.stream(1));
    }

    #[test]
    fn rejects_degenerate_configs_naming_the_field() {
        let message = |config: FleetConfig| -> String {
            match FleetRuntime::new(heterogeneous_recipe(), config) {
                Err(RuntimeError::InvalidConfig(message)) => message,
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        };
        assert!(message(FleetConfig { nodes: 0, ..FleetConfig::default() }).contains("nodes"));
        assert!(message(FleetConfig { threads: 0, ..FleetConfig::default() }).contains("threads"));
        let zero_epoch =
            message(FleetConfig { epoch: SimDuration::ZERO, ..FleetConfig::default() });
        assert!(zero_epoch.contains("epoch"), "message was {zero_epoch:?}");
        let fleet = FleetRuntime::new(heterogeneous_recipe(), FleetConfig::default()).unwrap();
        assert!(matches!(fleet.run(SimDuration::ZERO), Err(RuntimeError::EmptyHorizon)));
    }

    #[test]
    fn rejects_epoch_longer_than_the_horizon() {
        // An epoch that cannot fit in the horizon used to silently degenerate
        // to one oversized boundary; now it is a named config error on every
        // run path.
        let config = FleetConfig { epoch: SimDuration::from_secs(30), ..FleetConfig::default() };
        let fleet = FleetRuntime::new(heterogeneous_recipe(), config).unwrap();
        for result in [
            fleet.run(SimDuration::from_secs(2)).map(|_| ()),
            fleet.run_node(0, SimDuration::from_secs(2)).map(|_| ()),
        ] {
            match result {
                Err(RuntimeError::InvalidConfig(message)) => {
                    assert!(message.contains("epoch"), "message was {message:?}");
                    assert!(message.contains("horizon"), "message was {message:?}");
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
        // An epoch equal to the horizon is the single-epoch case, not an
        // error.
        assert!(fleet.run(SimDuration::from_secs(30)).is_ok());
    }

    #[test]
    fn report_surfaces_per_node_memory_footprint() {
        let config = FleetConfig { nodes: 4, threads: 2, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(heterogeneous_recipe(), config).unwrap();
        let report = fleet.run(SimDuration::from_secs(2)).unwrap();
        // StepEnv reports no environment bytes, but every node still carries
        // its event wheel, so the accounting is non-zero on every node.
        for node in &report.nodes {
            assert!(node.mem_bytes > 0, "node {} reported zero bytes", node.node);
        }
        let max = report.nodes.iter().map(|n| n.mem_bytes).max().unwrap();
        assert_eq!(report.mem_bytes_per_node, max);
    }

    #[test]
    fn epoch_grid_clamps_to_the_horizon() {
        let grid = epoch_boundaries(SimDuration::from_secs(10), SimDuration::from_secs(3));
        assert_eq!(
            grid,
            vec![
                Timestamp::from_secs(3),
                Timestamp::from_secs(6),
                Timestamp::from_secs(9),
                Timestamp::from_secs(10),
            ]
        );
        // An epoch equal to the horizon is the single-epoch case.
        let grid = epoch_boundaries(SimDuration::from_secs(2), SimDuration::from_secs(2));
        assert_eq!(grid, vec![Timestamp::from_secs(2)]);
    }

    #[test]
    fn report_is_byte_identical_across_thread_counts() {
        let run = |threads: usize| {
            let config = FleetConfig { nodes: 11, threads, ..FleetConfig::default() };
            let fleet = FleetRuntime::new(heterogeneous_recipe(), config).unwrap();
            debug_bytes(&fleet.run(SimDuration::from_secs(7)).unwrap())
        };
        let single = run(1);
        assert_eq!(single, run(2));
        assert_eq!(single, run(8));
        // More threads than nodes clamps rather than erroring.
        assert_eq!(single, run(64));
    }

    #[test]
    fn fleet_run_equals_the_fold_of_run_node() {
        let config = FleetConfig { nodes: 6, threads: 3, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(heterogeneous_recipe(), config).unwrap();
        let horizon = SimDuration::from_secs(5);
        let report = fleet.run(horizon).unwrap();
        for index in 0..6 {
            let solo = fleet.run_node(index, horizon).unwrap();
            assert_eq!(debug_bytes(&report.nodes[index]), debug_bytes(&solo));
        }
        assert!(matches!(fleet.run_node(6, horizon), Err(RuntimeError::InvalidConfig(_))));
    }

    #[test]
    fn seeds_make_nodes_heterogeneous() {
        let config = FleetConfig { nodes: 8, threads: 2, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(heterogeneous_recipe(), config).unwrap();
        let report = fleet.run(SimDuration::from_secs(10)).unwrap();
        let epochs: std::collections::HashSet<u64> =
            report.nodes.iter().map(|n| n.agents[0].stats.model.epochs_completed).collect();
        assert!(epochs.len() > 1, "per-node seeds must differentiate the nodes");
        // ...and the dashboards reflect the spread.
        let role = &report.roles[0];
        assert_eq!(role.name, "fast");
        assert_eq!(role.nodes, 8);
        assert!(role.epochs_completed.max > role.epochs_completed.min);
        assert_eq!(
            role.totals.model.epochs_completed,
            report.nodes.iter().map(|n| n.agents[0].stats.model.epochs_completed).sum::<u64>()
        );
    }

    #[test]
    fn metrics_aggregate_across_nodes() {
        let config = FleetConfig { nodes: 4, threads: 2, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(heterogeneous_recipe(), config).unwrap();
        let report = fleet.run(SimDuration::from_secs(3)).unwrap();
        let summary = report.metric("advances").expect("recipe reports advances");
        assert_eq!(summary.nodes, 4);
        assert!(summary.total > 0.0);
        assert!(summary.min <= summary.mean && summary.mean <= summary.max);
        assert!((summary.mean - summary.total / 4.0).abs() < 1e-9);
    }

    #[test]
    fn role_lookup_is_keyed_by_handle_position() {
        // Capture handles from a probe assembly; they are valid fleet-wide.
        let mut probe = NodeRuntime::builder(StepEnv::default());
        let fast =
            probe.agent("fast", ConstModel { value: 1.0 }, CountActuator::default(), schedule(80));
        let slow =
            probe.agent("slow", ConstModel { value: 2.0 }, CountActuator::default(), schedule(160));
        drop(probe);

        let config = FleetConfig { nodes: 3, threads: 2, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(heterogeneous_recipe(), config).unwrap();
        let report = fleet.run(SimDuration::from_secs(4)).unwrap();
        assert_eq!(report.role(fast).name, "fast");
        assert_eq!(report.role(slow).name, "slow");
        assert!(report.try_role(AgentId::from(fast)).is_ok());
    }

    #[test]
    fn differing_populations_are_rejected() {
        let recipe = ScenarioRecipe::new(|seed: &NodeSeed| {
            let mut builder = NodeRuntime::builder(StepEnv::default());
            builder.agent("a", ConstModel { value: 1.0 }, CountActuator::default(), schedule(100));
            if seed.index() % 2 == 1 {
                builder.agent("b", ConstModel { value: 1.0 }, CountActuator::default(), {
                    schedule(100)
                });
            }
            builder.build()
        });
        let config = FleetConfig { nodes: 2, threads: 1, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(recipe, config).unwrap();
        assert!(matches!(
            fleet.run(SimDuration::from_secs(1)),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn differing_metric_sets_are_rejected() {
        let recipe = ScenarioRecipe::new(|seed: &NodeSeed| {
            let env = StepEnv { fault: seed.index() % 2 == 1, ..StepEnv::default() };
            let mut builder = NodeRuntime::builder(env);
            builder.agent("a", ConstModel { value: 1.0 }, CountActuator::default(), schedule(100));
            builder.build()
        })
        .with_metrics(|report| {
            // A metric that only some nodes report would silently skew the
            // fleet-wide summaries; the aggregator must reject it.
            if report.environment.fault {
                Vec::new()
            } else {
                vec![("advances".into(), report.environment.advances as f64)]
            }
        });
        let config = FleetConfig { nodes: 4, threads: 2, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(recipe, config).unwrap();
        let result = fleet.run(SimDuration::from_secs(1));
        assert!(matches!(result, Err(RuntimeError::InvalidConfig(_))));
    }

    #[test]
    fn worker_panic_surfaces_as_runtime_error() {
        let recipe = ScenarioRecipe::new(|seed: &NodeSeed| {
            assert!(seed.index() != 1, "node 1 is cursed");
            let mut builder = NodeRuntime::builder(StepEnv::default());
            builder.agent("a", ConstModel { value: 1.0 }, CountActuator::default(), schedule(100));
            builder.build()
        });
        let config = FleetConfig { nodes: 3, threads: 2, ..FleetConfig::default() };
        let fleet = FleetRuntime::new(recipe, config).unwrap();
        assert!(matches!(
            fleet.run(SimDuration::from_secs(1)),
            Err(RuntimeError::WorkerPanicked("fleet worker"))
        ));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let p = Percentiles::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.p50, 2.0);
        assert_eq!(p.p90, 4.0);
        assert_eq!(p.max, 4.0);
        let single = Percentiles::of(&[5.0]);
        assert_eq!(single.p50, 5.0);
        assert_eq!(single.p99, 5.0);
    }

    #[test]
    fn percentiles_of_empty_slice_are_zeroed() {
        // The documented empty-slice contract: `of` yields the all-zero
        // distribution (so fleet folds over zero-capacity placements never
        // panic) and `try_of` reports the absence of data explicitly.
        assert_eq!(Percentiles::of(&[]), Percentiles::ZEROED);
        assert_eq!(Percentiles::try_of(&[]), None);
        assert_eq!(Percentiles::try_of(&[2.0]), Some(Percentiles::of(&[2.0])));
    }
}
