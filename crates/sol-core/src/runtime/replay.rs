//! `ReplayDriver`: a custom [`AgentDriver`] that replays a recorded action
//! trace against the environment.
//!
//! Replay agents serve two purposes (ROADMAP "Custom `AgentDriver`s"):
//!
//! * **Regression pinning** — record the actuation sequence of a learning
//!   agent (e.g. SmartOverclock's frequency decisions) and replay it later to
//!   verify a refactored substrate or runtime reproduces the same outcome
//!   without re-running the learner.
//! * **Load generation** — scripted disturbances (bursts, phase changes)
//!   registered beside learning agents through
//!   [`ScenarioBuilder::driver`](crate::runtime::builder::ScenarioBuilder::driver),
//!   stressing safeguards beyond the paper's failure modes.
//!
//! A driver holds a list of [`ReplayEntry`] actions sorted by time plus an
//! apply function mapping each action onto the environment. It wakes exactly
//! at each entry's timestamp; once the trace is exhausted it sleeps forever
//! ([`Timestamp::MAX`]).

use std::any::Any;

use crate::runtime::node::AgentDriver;
use crate::runtime::Environment;
use crate::stats::AgentStats;
use crate::time::Timestamp;

/// One recorded action: apply `action` at virtual time `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayEntry<T> {
    /// When the action was recorded.
    pub at: Timestamp,
    /// The recorded action payload.
    pub action: T,
}

impl<T> ReplayEntry<T> {
    /// Creates an entry.
    pub fn new(at: Timestamp, action: T) -> Self {
        ReplayEntry { at, action }
    }
}

/// Applies one recorded action to the environment. `now` is the virtual time
/// of the replaying tick (equal to the entry's timestamp unless the replay
/// was delayed by an intervention).
type ApplyFn<E, T> = Box<dyn FnMut(&mut E, Timestamp, &T) + Send>;

/// An [`AgentDriver`] replaying a recorded action trace through the runtime's
/// event queue. See the [module docs](self).
pub struct ReplayDriver<E, T> {
    trace: Vec<ReplayEntry<T>>,
    apply: ApplyFn<E, T>,
    cursor: usize,
    /// Interventions can push the whole replay back; actions then apply late,
    /// at the delayed tick, with their original payloads.
    delayed_until: Option<Timestamp>,
    actions_replayed: u64,
    cleanups: u64,
}

impl<E, T> ReplayDriver<E, T> {
    /// Creates a driver replaying `trace` via `apply`. Entries are sorted by
    /// timestamp (stable, so same-time actions keep their recorded order).
    pub fn new(
        mut trace: Vec<ReplayEntry<T>>,
        apply: impl FnMut(&mut E, Timestamp, &T) + Send + 'static,
    ) -> Self {
        trace.sort_by_key(|e| e.at);
        ReplayDriver {
            trace,
            apply: Box::new(apply),
            cursor: 0,
            delayed_until: None,
            actions_replayed: 0,
            cleanups: 0,
        }
    }

    /// Number of actions replayed so far.
    pub fn actions_replayed(&self) -> u64 {
        self.actions_replayed
    }

    /// Number of actions still pending.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.cursor
    }

    /// Whether every recorded action has been replayed.
    pub fn finished(&self) -> bool {
        self.remaining() == 0
    }
}

impl<E, T> std::fmt::Debug for ReplayDriver<E, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayDriver")
            .field("trace_len", &self.trace.len())
            .field("cursor", &self.cursor)
            .finish_non_exhaustive()
    }
}

impl<E, T> AgentDriver<E> for ReplayDriver<E, T>
where
    E: Environment + 'static,
    T: 'static,
{
    fn next_wake(&self) -> Timestamp {
        let due = match self.trace.get(self.cursor) {
            Some(entry) => entry.at,
            None => return Timestamp::MAX,
        };
        match self.delayed_until {
            Some(until) => due.max(until),
            None => due,
        }
    }

    fn step(&mut self, now: Timestamp, env: &mut E) {
        if let Some(until) = self.delayed_until {
            if now < until {
                return;
            }
            self.delayed_until = None;
        }
        while self.trace.get(self.cursor).map(|e| e.at <= now).unwrap_or(false) {
            let entry = &self.trace[self.cursor];
            (self.apply)(env, now, &entry.action);
            self.cursor += 1;
            self.actions_replayed += 1;
        }
    }

    /// A replay has no Model loop; model delays postpone the whole replay,
    /// like actuator delays.
    fn delay_model(&mut self, until: Timestamp) {
        self.delay_actuator(until);
    }

    fn delay_actuator(&mut self, until: Timestamp) {
        self.delayed_until = Some(match self.delayed_until {
            Some(cur) if cur > until => cur,
            _ => until,
        });
    }

    /// Replayed actions are counted as
    /// [`actions_with_model_prediction`](crate::stats::ActuatorLoopStats::actions_with_model_prediction):
    /// each one re-applies a decision a model-driven run produced.
    fn stats(&self) -> AgentStats {
        let mut stats = AgentStats::default();
        stats.actuator.actions_with_model_prediction = self.actions_replayed;
        stats.actuator.cleanups = self.cleanups;
        stats
    }

    fn clean_up(&mut self, _now: Timestamp) {
        self.cleanups += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::node::NodeRuntime;
    use crate::runtime::testutil::StepEnv;
    use crate::time::SimDuration;

    fn trace() -> Vec<ReplayEntry<u64>> {
        vec![
            ReplayEntry::new(Timestamp::from_secs(1), 10),
            ReplayEntry::new(Timestamp::from_secs(3), 20),
            ReplayEntry::new(Timestamp::from_secs(3), 30),
            ReplayEntry::new(Timestamp::from_secs(6), 40),
        ]
    }

    #[derive(Debug, Default)]
    struct RecordingEnv {
        inner: StepEnv,
        seen: std::sync::Arc<std::sync::Mutex<Vec<(Timestamp, u64)>>>,
    }

    impl Environment for RecordingEnv {
        fn advance_to(&mut self, now: Timestamp) {
            self.inner.advance_to(now);
        }
    }

    #[test]
    fn replays_every_action_at_its_recorded_time() {
        let env = RecordingEnv::default();
        let seen = env.seen.clone();
        let mut builder = NodeRuntime::builder(env);
        let driver = builder.driver(
            "replay",
            ReplayDriver::new(trace(), move |env: &mut RecordingEnv, now, action| {
                env.seen.lock().unwrap().push((now, *action));
            }),
        );
        let report = builder.build().run_for(SimDuration::from_secs(10)).unwrap();
        let replayed = seen.lock().unwrap().clone();
        assert_eq!(
            replayed,
            vec![
                (Timestamp::from_secs(1), 10),
                (Timestamp::from_secs(3), 20),
                (Timestamp::from_secs(3), 30),
                (Timestamp::from_secs(6), 40),
            ]
        );
        // Typed driver access through the handle.
        let driver = report.driver(driver);
        assert!(driver.finished());
        assert_eq!(driver.actions_replayed(), 4);
        assert_eq!(report.agent_report(driver_id_of(&report)).unwrap().stats.actions_taken(), 4);
    }

    fn driver_id_of<E: Environment + 'static>(
        report: &crate::runtime::node::NodeReport<E>,
    ) -> crate::runtime::node::AgentId {
        report.agents[0].id
    }

    #[test]
    fn unsorted_traces_are_sorted_on_construction() {
        let mut entries = trace();
        entries.reverse();
        let driver: ReplayDriver<StepEnv, u64> = ReplayDriver::new(entries, |_, _, _| {});
        assert_eq!(driver.next_wake(), Timestamp::from_secs(1));
    }

    #[test]
    fn delay_postpones_replay_without_dropping_actions() {
        let env = RecordingEnv::default();
        let seen = env.seen.clone();
        let mut builder = NodeRuntime::builder(env);
        let driver = builder.driver(
            "replay",
            ReplayDriver::new(trace(), move |env: &mut RecordingEnv, now, action| {
                env.seen.lock().unwrap().push((now, *action));
            }),
        );
        let mut runtime = builder.build();
        runtime.delay_actuator_at(driver, Timestamp::from_millis(500), SimDuration::from_secs(4));
        let report = runtime.run_for(SimDuration::from_secs(10)).unwrap();
        let replayed = seen.lock().unwrap().clone();
        // The first three actions apply late (at the delay's expiry), the
        // fourth on time; none are lost.
        assert_eq!(replayed.len(), 4);
        assert_eq!(replayed[0].0, Timestamp::from_millis(4_500));
        assert_eq!(replayed[3], (Timestamp::from_secs(6), 40));
        assert!(report.driver(driver).finished());
    }

    #[test]
    fn exhausted_replay_sleeps_forever() {
        let driver: ReplayDriver<StepEnv, u64> = ReplayDriver::new(Vec::new(), |_, _, _| {});
        assert_eq!(driver.next_wake(), Timestamp::MAX);
        assert!(driver.finished());
    }
}
