//! `ReplayDriver`: a custom [`AgentDriver`] that replays a recorded action
//! trace against the environment.
//!
//! Replay agents serve two purposes (ROADMAP "Custom `AgentDriver`s"):
//!
//! * **Regression pinning** — record the actuation sequence of a learning
//!   agent (e.g. SmartOverclock's frequency decisions) and replay it later to
//!   verify a refactored substrate or runtime reproduces the same outcome
//!   without re-running the learner.
//! * **Load generation** — scripted disturbances (bursts, phase changes)
//!   registered beside learning agents through
//!   [`ScenarioBuilder::driver`](crate::runtime::builder::ScenarioBuilder::driver),
//!   stressing safeguards beyond the paper's failure modes.
//!
//! A driver holds a list of [`ReplayEntry`] actions sorted by time plus an
//! apply function mapping each action onto the environment. It wakes exactly
//! at each entry's timestamp; once the trace is exhausted it sleeps forever
//! ([`Timestamp::MAX`]).

use std::any::Any;

use crate::runtime::node::AgentDriver;
use crate::runtime::Environment;
use crate::stats::AgentStats;
use crate::time::Timestamp;

/// One recorded action: apply `action` at virtual time `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayEntry<T> {
    /// When the action was recorded.
    pub at: Timestamp,
    /// The recorded action payload.
    pub action: T,
}

impl<T> ReplayEntry<T> {
    /// Creates an entry.
    pub fn new(at: Timestamp, action: T) -> Self {
        ReplayEntry { at, action }
    }
}

/// Applies one recorded action to the environment. `now` is the virtual time
/// of the replaying tick (equal to the entry's timestamp unless the replay
/// was delayed by an intervention).
type ApplyFn<E, T> = Box<dyn FnMut(&mut E, Timestamp, &T) + Send>;

/// An [`AgentDriver`] replaying a recorded action trace through the runtime's
/// event queue. See the [module docs](self).
pub struct ReplayDriver<E, T> {
    trace: Vec<ReplayEntry<T>>,
    apply: ApplyFn<E, T>,
    cursor: usize,
    /// Actuator-delay interventions push the replay back; actions then apply
    /// late, at the delayed tick, with their original payloads.
    actuator_delayed_until: Option<Timestamp>,
    /// Model-delay interventions are tracked separately and do *not* stall
    /// the replay: the trace holds already-made decisions, so a replay agent
    /// has no Model loop to delay. Kept observable so experiments can verify
    /// which intervention kind hit the driver.
    model_delayed_until: Option<Timestamp>,
    actions_replayed: u64,
    cleanups: u64,
}

impl<E, T> ReplayDriver<E, T> {
    /// Creates a driver replaying `trace` via `apply`. Entries are sorted by
    /// timestamp (stable, so same-time actions keep their recorded order).
    pub fn new(
        mut trace: Vec<ReplayEntry<T>>,
        apply: impl FnMut(&mut E, Timestamp, &T) + Send + 'static,
    ) -> Self {
        trace.sort_by_key(|e| e.at);
        ReplayDriver {
            trace,
            apply: Box::new(apply),
            cursor: 0,
            actuator_delayed_until: None,
            model_delayed_until: None,
            actions_replayed: 0,
            cleanups: 0,
        }
    }

    /// Number of actions replayed so far.
    pub fn actions_replayed(&self) -> u64 {
        self.actions_replayed
    }

    /// The expiry of the latest Model-delay intervention aimed at this
    /// driver, if any. Model delays are recorded but never stall the replay
    /// (a trace of already-made decisions has no Model loop to delay); only
    /// Actuator delays postpone actions.
    pub fn model_delayed_until(&self) -> Option<Timestamp> {
        self.model_delayed_until
    }

    /// Number of actions still pending.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.cursor
    }

    /// Whether every recorded action has been replayed.
    pub fn finished(&self) -> bool {
        self.remaining() == 0
    }
}

impl<E, T> std::fmt::Debug for ReplayDriver<E, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayDriver")
            .field("trace_len", &self.trace.len())
            .field("cursor", &self.cursor)
            .finish_non_exhaustive()
    }
}

impl<E, T> AgentDriver<E> for ReplayDriver<E, T>
where
    E: Environment + 'static,
    T: Send + 'static,
{
    fn next_wake(&self) -> Timestamp {
        let due = match self.trace.get(self.cursor) {
            Some(entry) => entry.at,
            None => return Timestamp::MAX,
        };
        match self.actuator_delayed_until {
            Some(until) => due.max(until),
            None => due,
        }
    }

    fn step(&mut self, now: Timestamp, env: &mut E) {
        if let Some(until) = self.actuator_delayed_until {
            if now < until {
                return;
            }
            self.actuator_delayed_until = None;
        }
        if let Some(until) = self.model_delayed_until {
            if now >= until {
                self.model_delayed_until = None;
            }
        }
        while self.trace.get(self.cursor).map(|e| e.at <= now).unwrap_or(false) {
            let entry = &self.trace[self.cursor];
            (self.apply)(env, now, &entry.action);
            self.cursor += 1;
            self.actions_replayed += 1;
        }
    }

    /// Model delays are tracked (see
    /// [`model_delayed_until`](ReplayDriver::model_delayed_until)) but do not
    /// stall actuation replay: the two intervention kinds are kept separate,
    /// so a model-only delay never postpones recorded actions.
    fn delay_model(&mut self, until: Timestamp) {
        self.model_delayed_until = Some(match self.model_delayed_until {
            Some(cur) if cur > until => cur,
            _ => until,
        });
    }

    fn delay_actuator(&mut self, until: Timestamp) {
        self.actuator_delayed_until = Some(match self.actuator_delayed_until {
            Some(cur) if cur > until => cur,
            _ => until,
        });
    }

    /// Replayed actions are counted as
    /// [`actions_with_model_prediction`](crate::stats::ActuatorLoopStats::actions_with_model_prediction):
    /// each one re-applies a decision a model-driven run produced.
    fn stats(&self) -> AgentStats {
        let mut stats = AgentStats::default();
        stats.actuator.actions_with_model_prediction = self.actions_replayed;
        stats.actuator.cleanups = self.cleanups;
        stats
    }

    fn clean_up(&mut self, _now: Timestamp) {
        self.cleanups += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::node::NodeRuntime;
    use crate::runtime::testutil::StepEnv;
    use crate::time::SimDuration;

    fn trace() -> Vec<ReplayEntry<u64>> {
        vec![
            ReplayEntry::new(Timestamp::from_secs(1), 10),
            ReplayEntry::new(Timestamp::from_secs(3), 20),
            ReplayEntry::new(Timestamp::from_secs(3), 30),
            ReplayEntry::new(Timestamp::from_secs(6), 40),
        ]
    }

    #[derive(Debug, Default)]
    struct RecordingEnv {
        inner: StepEnv,
        seen: std::sync::Arc<std::sync::Mutex<Vec<(Timestamp, u64)>>>,
    }

    impl Environment for RecordingEnv {
        fn advance_to(&mut self, now: Timestamp) {
            self.inner.advance_to(now);
        }
    }

    #[test]
    fn replays_every_action_at_its_recorded_time() {
        let env = RecordingEnv::default();
        let seen = env.seen.clone();
        let mut builder = NodeRuntime::builder(env);
        let driver = builder.driver(
            "replay",
            ReplayDriver::new(trace(), move |env: &mut RecordingEnv, now, action| {
                env.seen.lock().unwrap().push((now, *action));
            }),
        );
        let report = builder.build().run_for(SimDuration::from_secs(10)).unwrap();
        let replayed = seen.lock().unwrap().clone();
        assert_eq!(
            replayed,
            vec![
                (Timestamp::from_secs(1), 10),
                (Timestamp::from_secs(3), 20),
                (Timestamp::from_secs(3), 30),
                (Timestamp::from_secs(6), 40),
            ]
        );
        // Typed driver access through the handle.
        let driver = report.driver(driver);
        assert!(driver.finished());
        assert_eq!(driver.actions_replayed(), 4);
        assert_eq!(report.agent_report(driver_id_of(&report)).unwrap().stats.actions_taken(), 4);
    }

    fn driver_id_of<E: Environment + 'static>(
        report: &crate::runtime::node::NodeReport<E>,
    ) -> crate::runtime::node::AgentId {
        report.agents[0].id
    }

    #[test]
    fn unsorted_traces_are_sorted_on_construction() {
        let mut entries = trace();
        entries.reverse();
        let driver: ReplayDriver<StepEnv, u64> = ReplayDriver::new(entries, |_, _, _| {});
        assert_eq!(driver.next_wake(), Timestamp::from_secs(1));
    }

    #[test]
    fn delay_postpones_replay_without_dropping_actions() {
        let env = RecordingEnv::default();
        let seen = env.seen.clone();
        let mut builder = NodeRuntime::builder(env);
        let driver = builder.driver(
            "replay",
            ReplayDriver::new(trace(), move |env: &mut RecordingEnv, now, action| {
                env.seen.lock().unwrap().push((now, *action));
            }),
        );
        let mut runtime = builder.build();
        runtime.delay_actuator_at(driver, Timestamp::from_millis(500), SimDuration::from_secs(4));
        let report = runtime.run_for(SimDuration::from_secs(10)).unwrap();
        let replayed = seen.lock().unwrap().clone();
        // The first three actions apply late (at the delay's expiry), the
        // fourth on time; none are lost.
        assert_eq!(replayed.len(), 4);
        assert_eq!(replayed[0].0, Timestamp::from_millis(4_500));
        assert_eq!(replayed[3], (Timestamp::from_secs(6), 40));
        assert!(report.driver(driver).finished());
    }

    #[test]
    fn overlapping_model_and_actuator_delays_stay_separate() {
        // A long model delay overlapping a short actuator delay: only the
        // actuator delay may stall the replay. Before the fix both kinds
        // collapsed into one `delayed_until`, so the model delay pushed
        // actuation replay all the way to its own (later) expiry.
        let env = RecordingEnv::default();
        let seen = env.seen.clone();
        let mut builder = NodeRuntime::builder(env);
        let driver = builder.driver(
            "replay",
            ReplayDriver::new(trace(), move |env: &mut RecordingEnv, now, action| {
                env.seen.lock().unwrap().push((now, *action));
            }),
        );
        let mut runtime = builder.build();
        // Model delay until t=9.5s; actuator delay until t=2.5s.
        runtime.delay_model_at(driver, Timestamp::from_millis(500), SimDuration::from_secs(9));
        runtime.delay_actuator_at(driver, Timestamp::from_millis(500), SimDuration::from_secs(2));
        let report = runtime.run_for(SimDuration::from_secs(10)).unwrap();
        let replayed = seen.lock().unwrap().clone();
        assert_eq!(replayed.len(), 4, "no action may be dropped");
        // The t=1s action applies when the *actuator* delay expires...
        assert_eq!(replayed[0], (Timestamp::from_millis(2_500), 10));
        // ...and later actions are back on schedule despite the model delay
        // still being in flight.
        assert_eq!(replayed[1], (Timestamp::from_secs(3), 20));
        assert_eq!(replayed[3], (Timestamp::from_secs(6), 40));
        assert!(report.driver(driver).finished());
        // The model delay stayed tracked (the exhausted driver never woke
        // after its 9.5 s expiry, so the record is still visible) without
        // ever influencing the replay.
        assert_eq!(
            report.driver(driver).model_delayed_until(),
            Some(Timestamp::from_millis(9_500))
        );
    }

    #[test]
    fn model_delay_alone_does_not_stall_the_replay() {
        let env = RecordingEnv::default();
        let seen = env.seen.clone();
        let mut builder = NodeRuntime::builder(env);
        let driver = builder.driver(
            "replay",
            ReplayDriver::new(trace(), move |env: &mut RecordingEnv, now, action| {
                env.seen.lock().unwrap().push((now, *action));
            }),
        );
        let mut runtime = builder.build();
        runtime.delay_model_at(driver, Timestamp::from_millis(500), SimDuration::from_secs(30));
        let report = runtime.run_for(SimDuration::from_secs(10)).unwrap();
        let replayed = seen.lock().unwrap().clone();
        assert_eq!(
            replayed,
            vec![
                (Timestamp::from_secs(1), 10),
                (Timestamp::from_secs(3), 20),
                (Timestamp::from_secs(3), 30),
                (Timestamp::from_secs(6), 40),
            ],
            "a model-only delay must not move any recorded action"
        );
        // Still tracked as in-flight at the horizon.
        assert_eq!(
            report.driver(driver).model_delayed_until(),
            Some(Timestamp::from_millis(30_500))
        );
    }

    #[test]
    fn exhausted_replay_sleeps_forever() {
        let driver: ReplayDriver<StepEnv, u64> = ReplayDriver::new(Vec::new(), |_, _, _| {});
        assert_eq!(driver.next_wake(), Timestamp::MAX);
        assert!(driver.finished());
    }
}
