//! The fleet trust plane: per-node divergence scoring, poisoner
//! identification, and automated quarantine feeding the lifecycle layer.
//!
//! The [`learning`](crate::runtime::learning) plane *contains* Byzantine
//! nodes — a robust [`AggregationRule`](sol_ml::exchange::AggregationRule)
//! bounds what any single poisoned export can do to the fleet aggregate —
//! but containment alone lets a persistently poisoned node keep submitting
//! forever. The trust plane closes that loop, after the detect-and-evict
//! pairing of Byzantine-robust distributed learning systems (SABLE; Dong et
//! al.): on every exchange round the coordinator scores each participant's
//! mirrored export against the post-aggregation consensus
//! ([`LearnedState::l2_distance`] per agent slot, turned into a
//! coordinate-wise robust z-score across the round's participants via
//! [`robust_z_scores`], with the scale floored at a small fraction of the
//! consensus magnitude so a collapsed honest spread cannot amplify noise
//! into dissent), folds the evidence into per-node trust state with
//! exponential decay — one noisy round is forgiven, persistent divergence
//! accumulates — and emits typed [`TrustAction`]s once thresholds are
//! crossed:
//!
//! * [`TrustAction::Suspect`] — the node's exports are excluded from
//!   aggregation (it still receives the redistributed consensus, which is
//!   harmless by construction);
//! * [`TrustAction::Quarantine`] — the coordinator additionally issues a
//!   lifecycle [`Drain`](crate::runtime::lifecycle::LifecycleEvent::Drain)
//!   for the node at the next epoch barrier, and the existing
//!   `Draining → Drained` machinery retires it.
//!
//! Everything runs coordinator-side in node-index order inside the barrier's
//! deterministic per-round fold, so trust verdicts — like every other fleet
//! outcome — are byte-identical across worker-thread counts.
//!
//! The plane is opt-in via [`FleetConfig::trust`] and requires a configured
//! [`LearningPlane`](crate::runtime::learning::LearningPlane) (there is
//! nothing to score without an exchange round). Scores and verdicts surface
//! as [`TrustStats`] on [`FleetReport`] and a [`NodeTrustRecord`] per
//! [`FleetNodeReport`].
//!
//! [`FleetConfig::trust`]: crate::runtime::fleet::FleetConfig::trust
//! [`FleetReport`]: crate::runtime::fleet::FleetReport
//! [`FleetNodeReport`]: crate::runtime::fleet::FleetNodeReport
//! [`LearnedState::l2_distance`]: sol_ml::exchange::LearnedState::l2_distance
//! [`robust_z_scores`]: sol_ml::exchange::robust_z_scores

use serde::Serialize;
use sol_ml::exchange::robust_z_scores;

use crate::runtime::learning::LearningExchange;

/// Configuration of the fleet trust plane
/// ([`FleetConfig::trust`](crate::runtime::fleet::FleetConfig::trust)).
///
/// The defaults are tuned so an honest, heterogeneous fleet never trips them
/// (divergence is judged *relative to the round's peer spread*, so ordinary
/// learning drift scores near zero) while a persistent sign-flipping poisoner
/// is quarantined in three consecutive divergent rounds: suspicion follows
/// `s ← s·decay + 1` on a divergent round and `s ← s·decay` otherwise, so
/// with `decay = 0.5` one divergent round peaks at `1.0` (forgiven), two
/// consecutive reach `1.5` (suspect), three reach `1.75` (quarantine).
///
/// # Examples
///
/// ```
/// use sol_core::prelude::*;
///
/// let config = FleetConfig {
///     learning: Some(LearningPlane::default()),
///     trust: Some(TrustPolicy::default()),
///     ..FleetConfig::default()
/// };
/// assert_eq!(config.trust.unwrap().decay, 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TrustPolicy {
    /// Robust z-score of a node's consensus distance (against the round's
    /// participant spread) at or above which the round counts as divergence
    /// evidence for that node. Must be finite and positive.
    pub divergence_z: f64,
    /// Per-round exponential decay of accumulated suspicion, in `[0, 1)`:
    /// `0` remembers nothing but the latest round, values near `1` forgive
    /// slowly.
    pub decay: f64,
    /// Accumulated suspicion at or above which a node is [`Suspect`]: its
    /// exports are excluded from aggregation until the suspicion decays back
    /// below the threshold. Must be finite and positive.
    ///
    /// [`Suspect`]: TrustVerdict::Suspect
    pub suspect_after: f64,
    /// Accumulated suspicion at or above which a node is [`Quarantined`]:
    /// the coordinator emits a lifecycle `Drain` for it. Must be finite and
    /// at least [`suspect_after`](Self::suspect_after). Quarantine is
    /// one-way — a drained poisoner does not decay back into the fleet.
    ///
    /// [`Quarantined`]: TrustVerdict::Quarantined
    pub quarantine_after: f64,
}

impl Default for TrustPolicy {
    /// Divergence at sixteen robust sigmas (honest exploration noise in a
    /// replace-blended fleet peaks well under ten; a sign-flipping poisoner
    /// scores in the forties), half-life decay, suspect after two consecutive
    /// divergent rounds, quarantine after three.
    fn default() -> Self {
        TrustPolicy { divergence_z: 16.0, decay: 0.5, suspect_after: 1.5, quarantine_after: 1.75 }
    }
}

impl TrustPolicy {
    /// Validates the policy, returning a human-readable complaint for the
    /// fleet config error path.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if !self.divergence_z.is_finite() || self.divergence_z <= 0.0 {
            return Err(format!(
                "trust policy: divergence_z must be finite and positive, got {}",
                self.divergence_z
            ));
        }
        if !self.decay.is_finite() || !(0.0..1.0).contains(&self.decay) {
            return Err(format!(
                "trust policy: decay must be a finite value in [0, 1), got {}",
                self.decay
            ));
        }
        if !self.suspect_after.is_finite() || self.suspect_after <= 0.0 {
            return Err(format!(
                "trust policy: suspect_after must be finite and positive, got {}",
                self.suspect_after
            ));
        }
        if !self.quarantine_after.is_finite() || self.quarantine_after < self.suspect_after {
            return Err(format!(
                "trust policy: quarantine_after must be finite and at least suspect_after \
                 ({}), got {}",
                self.suspect_after, self.quarantine_after
            ));
        }
        Ok(())
    }
}

/// A node's standing with the trust plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub enum TrustVerdict {
    /// In good standing: exports participate in aggregation.
    #[default]
    Trusted,
    /// Suspicion at or above [`TrustPolicy::suspect_after`]: exports are
    /// excluded from aggregation. Reversible — suspicion decays back below
    /// the threshold if the node stops diverging.
    Suspect,
    /// Suspicion reached [`TrustPolicy::quarantine_after`]: a lifecycle
    /// `Drain` was issued. One-way; the node stays excluded until it
    /// retires.
    Quarantined,
}

/// A typed verdict transition the trust plane emitted at one exchange round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrustAction {
    /// The node crossed the suspect threshold: its exports are excluded from
    /// aggregation starting with the next round.
    Suspect {
        /// The node's fleet index.
        node: usize,
        /// The 0-based epoch of the exchange round that crossed the line.
        epoch: u64,
        /// The accumulated suspicion at emission.
        score: f64,
    },
    /// The node crossed the quarantine threshold: a lifecycle `Drain` is
    /// issued at the next epoch barrier.
    Quarantine {
        /// The node's fleet index.
        node: usize,
        /// The 0-based epoch of the exchange round that crossed the line.
        epoch: u64,
        /// The accumulated suspicion at emission.
        score: f64,
    },
}

/// One node's final trust record
/// ([`FleetNodeReport::trust`](crate::runtime::fleet::FleetNodeReport::trust)).
/// [`NodeTrustRecord::initial`] for a fleet run without a trust plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NodeTrustRecord {
    /// The node's index in the fleet.
    pub node: usize,
    /// Final accumulated suspicion (decayed evidence of divergence).
    pub score: f64,
    /// The node's divergence z-score at the last round that scored it
    /// (`0.0` if it was never scored). The scale is floored at a small
    /// fraction of the consensus magnitude, so the score stays finite (and
    /// meaningful) even when the honest spread collapses to zero.
    pub last_divergence: f64,
    /// Exchange rounds that scored this node (it was live and had a
    /// mirrored export compatible with the round's consensus).
    pub rounds_scored: u64,
    /// Scored rounds whose divergence reached
    /// [`TrustPolicy::divergence_z`].
    pub divergent_rounds: u64,
    /// The node's final standing.
    pub verdict: TrustVerdict,
}

impl NodeTrustRecord {
    /// The pristine record of node `node`: zero suspicion, never scored,
    /// trusted.
    pub fn initial(node: usize) -> Self {
        NodeTrustRecord {
            node,
            score: 0.0,
            last_divergence: 0.0,
            rounds_scored: 0,
            divergent_rounds: 0,
            verdict: TrustVerdict::Trusted,
        }
    }
}

/// Counters of one fleet run's trust-plane activity
/// ([`FleetReport::trust`](crate::runtime::fleet::FleetReport::trust)).
/// All-zero when the fleet ran without a [`TrustPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TrustStats {
    /// Exchange rounds the trust plane evaluated.
    pub rounds_scored: u64,
    /// Node-rounds scored (one per live node with a scorable export, per
    /// round).
    pub nodes_scored: u64,
    /// Node-rounds whose divergence reached the policy's `divergence_z`.
    pub divergent: u64,
    /// [`TrustAction::Suspect`] transitions emitted (entries into the
    /// suspect state, not suspect-rounds).
    pub suspects: u64,
    /// [`TrustAction::Quarantine`] actions emitted (at most one per node).
    pub quarantines: u64,
    /// Node-rounds whose exports were withheld from aggregation because the
    /// node was suspect or quarantined at the start of the round.
    pub excluded: u64,
}

impl TrustStats {
    /// Adds another run's counters onto this one, field by field. The
    /// exhaustive destructuring (no `..`) makes adding a field without
    /// accumulating it a compile error, exactly like
    /// [`LearningStats::accumulate`](crate::runtime::learning::LearningStats::accumulate).
    pub fn accumulate(&mut self, other: &TrustStats) {
        let TrustStats { rounds_scored, nodes_scored, divergent, suspects, quarantines, excluded } =
            other;
        self.rounds_scored += rounds_scored;
        self.nodes_scored += nodes_scored;
        self.divergent += divergent;
        self.suspects += suspects;
        self.quarantines += quarantines;
        self.excluded += excluded;
    }
}

/// The z-score scale floor, as a fraction of `1 + ‖consensus‖₂`.
///
/// In a live fleet the honest distance spread routinely *collapses*: under
/// `Replace` blending every node imports the same aggregate each round, so
/// most distances to the next consensus are identical (often exactly zero)
/// and the MAD vanishes. Without a floor, one honest node's ordinary
/// exploration noise would then score `±∞`. Tying the floor to the consensus
/// magnitude keeps the unit meaningful in both regimes: deviations below a
/// few percent of the aggregate's own norm are never divergence, while a
/// sign-flipping poisoner sits at `(1 + gain) · ‖consensus‖₂` — dozens of
/// floors out even when the honest spread is zero. The `1 +` keeps the floor
/// nonzero for an all-zero (freshly initialized) consensus.
const SCALE_FLOOR_FRAC: f64 = 0.05;

/// The coordinator's trust engine: per-node records, cumulative stats, and
/// the scoring fold itself. All methods are deterministic functions of their
/// inputs; the fleet coordinator calls them in its per-round fold with node
/// indices in ascending order.
pub(crate) struct TrustPlane {
    policy: TrustPolicy,
    records: Vec<NodeTrustRecord>,
    stats: TrustStats,
}

impl TrustPlane {
    pub(crate) fn new(policy: TrustPolicy, nodes: usize) -> Self {
        TrustPlane {
            policy,
            records: (0..nodes).map(NodeTrustRecord::initial).collect(),
            stats: TrustStats::default(),
        }
    }

    /// Grows the record table to `nodes` rows (joined nodes extend the
    /// fleet; they start trusted and unscored).
    pub(crate) fn grow(&mut self, nodes: usize) {
        while self.records.len() < nodes {
            self.records.push(NodeTrustRecord::initial(self.records.len()));
        }
    }

    /// Filters `live` (node indices in ascending order) down to the nodes
    /// whose exports may participate in this round's aggregation, counting
    /// the withheld ones. Exclusion is based on verdicts standing at the
    /// start of the round, so a node's own round-`k` export can never vote
    /// on its round-`k` verdict.
    pub(crate) fn participants(&mut self, live: &[usize]) -> Vec<usize> {
        let mut kept = Vec::with_capacity(live.len());
        for &node in live {
            if self.records[node].verdict == TrustVerdict::Trusted {
                kept.push(node);
            } else {
                self.stats.excluded += 1;
            }
        }
        kept
    }

    /// Scores one exchange round and folds the evidence into the trust
    /// state, returning the verdict transitions in node-index order.
    ///
    /// Per agent slot, every live non-quarantined node with a mirrored
    /// export compatible with the slot's aggregate gets an L2 distance to
    /// the consensus; the distances are normalized into robust z-scores
    /// across the slot's column (so the honest spread sets the scale), and a
    /// node's round divergence is its worst slot. Suspect nodes are still
    /// scored — their exports are withheld from the consensus but measured
    /// against it, which is what escalates a persistent poisoner to
    /// quarantine and rehabilitates a node that stopped diverging.
    pub(crate) fn evaluate(
        &mut self,
        epoch: u64,
        live: &[usize],
        exchange: &LearningExchange,
    ) -> Vec<TrustAction> {
        self.stats.rounds_scored += 1;
        // Worst-slot divergence per node this round; `None` = not scorable.
        let mut divergence: Vec<Option<f64>> = vec![None; self.records.len()];
        for (slot, aggregate) in exchange.aggregates().iter().enumerate() {
            let Some(aggregate) = aggregate else { continue };
            let mut column_nodes: Vec<usize> = Vec::with_capacity(live.len());
            let mut distances: Vec<f64> = Vec::with_capacity(live.len());
            for &node in live {
                if self.records[node].verdict == TrustVerdict::Quarantined {
                    continue;
                }
                let Some(local) = exchange.local(node, slot) else { continue };
                // Kind/shape dissent was already counted as rejected by the
                // round fold; it is not divergence evidence.
                let Ok(distance) = local.l2_distance(aggregate) else { continue };
                column_nodes.push(node);
                distances.push(distance);
            }
            let norm = aggregate.values().iter().map(|v| v * v).sum::<f64>().sqrt();
            let floor = SCALE_FLOOR_FRAC * (1.0 + norm);
            for (&node, &z) in column_nodes.iter().zip(&robust_z_scores(&distances, floor)) {
                let worst = &mut divergence[node];
                *worst = Some(worst.map_or(z, |w| w.max(z)));
            }
        }

        let mut actions = Vec::new();
        for &node in live {
            let record = &mut self.records[node];
            if record.verdict == TrustVerdict::Quarantined {
                continue;
            }
            // Decay applies every evaluated round, scored or not: evidence
            // ages even while a node ships nothing.
            record.score *= self.policy.decay;
            if let Some(z) = divergence[node] {
                record.rounds_scored += 1;
                record.last_divergence = z;
                self.stats.nodes_scored += 1;
                if z >= self.policy.divergence_z {
                    record.divergent_rounds += 1;
                    record.score += 1.0;
                    self.stats.divergent += 1;
                }
            }
            let was_suspect = record.verdict == TrustVerdict::Suspect;
            if record.score >= self.policy.quarantine_after {
                record.verdict = TrustVerdict::Quarantined;
                self.stats.quarantines += 1;
                actions.push(TrustAction::Quarantine { node, epoch, score: record.score });
            } else if record.score >= self.policy.suspect_after {
                record.verdict = TrustVerdict::Suspect;
                if !was_suspect {
                    self.stats.suspects += 1;
                    actions.push(TrustAction::Suspect { node, epoch, score: record.score });
                }
            } else {
                record.verdict = TrustVerdict::Trusted;
            }
        }
        actions
    }

    /// The final record of node `node`.
    pub(crate) fn record(&self, node: usize) -> NodeTrustRecord {
        self.records[node]
    }

    /// The run's cumulative counters.
    pub(crate) fn stats(&self) -> TrustStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::learning::{LearningExchange, LearningPlane, NodeLearnedExport};
    use sol_ml::exchange::{LearnedState, StateKind};

    fn state(values: &[f64]) -> LearnedState {
        LearnedState::new(StateKind::QTable, vec![values.len()], values.to_vec()).unwrap()
    }

    /// An exchange whose round already folded: `honest.len() + flipped.len()`
    /// nodes exporting one slot, the tail `flipped` of them sign-flipped with
    /// the given gain.
    fn folded_exchange(honest: usize, flipped: usize, gain: f64) -> (LearningExchange, Vec<usize>) {
        let nodes = honest + flipped;
        let mut exchange = LearningExchange::new(LearningPlane::default(), nodes);
        let exports = (0..nodes)
            .map(|node| {
                let base = [1.0 + 0.01 * node as f64, 2.0 - 0.01 * node as f64];
                let values = if node >= honest { [-gain * base[0], -gain * base[1]] } else { base };
                NodeLearnedExport { node, states: vec![(0, state(&values))] }
            })
            .collect();
        exchange.absorb(exports);
        let live: Vec<usize> = (0..nodes).collect();
        exchange.round(&live);
        (exchange, live)
    }

    #[test]
    fn default_policy_validates_and_rejections_are_loud() {
        assert!(TrustPolicy::default().validate().is_ok());
        let bad_z = TrustPolicy { divergence_z: 0.0, ..TrustPolicy::default() };
        assert!(bad_z.validate().unwrap_err().contains("divergence_z"));
        for decay in [f64::NAN, -0.1, 1.0] {
            let bad = TrustPolicy { decay, ..TrustPolicy::default() };
            assert!(bad.validate().unwrap_err().contains("decay"));
        }
        let bad_suspect = TrustPolicy { suspect_after: -1.0, ..TrustPolicy::default() };
        assert!(bad_suspect.validate().unwrap_err().contains("suspect_after"));
        let inverted = TrustPolicy { quarantine_after: 1.0, ..TrustPolicy::default() };
        assert!(inverted.validate().unwrap_err().contains("quarantine_after"));
    }

    #[test]
    fn persistent_divergence_escalates_suspect_then_quarantine() {
        let (exchange, live) = folded_exchange(6, 2, 4.0);
        let mut trust = TrustPlane::new(TrustPolicy::default(), live.len());

        // Round 1: evidence accumulates, nobody crosses a threshold.
        assert!(trust.evaluate(0, &live, &exchange).is_empty());
        assert_eq!(trust.record(6).verdict, TrustVerdict::Trusted);
        assert_eq!(trust.record(6).divergent_rounds, 1);

        // Round 2: both poisoners cross into Suspect, in index order.
        let actions = trust.evaluate(1, &live, &exchange);
        assert_eq!(actions.len(), 2);
        assert!(matches!(actions[0], TrustAction::Suspect { node: 6, .. }));
        assert!(matches!(actions[1], TrustAction::Suspect { node: 7, .. }));

        // Their exports are now withheld from aggregation.
        let participants = trust.participants(&live);
        assert_eq!(participants, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(trust.stats().excluded, 2);

        // Round 3: still diverging against the honest consensus → Quarantine.
        let actions = trust.evaluate(2, &live, &exchange);
        assert_eq!(actions.len(), 2);
        assert!(matches!(actions[0], TrustAction::Quarantine { node: 6, .. }));
        assert!(matches!(actions[1], TrustAction::Quarantine { node: 7, .. }));
        assert_eq!(trust.record(7).verdict, TrustVerdict::Quarantined);

        // Quarantined nodes are no longer scored, and never re-emit.
        let before = trust.record(6).rounds_scored;
        assert!(trust.evaluate(3, &live, &exchange).is_empty());
        assert_eq!(trust.record(6).rounds_scored, before);

        let stats = trust.stats();
        assert_eq!(stats.suspects, 2);
        assert_eq!(stats.quarantines, 2);
        assert_eq!(stats.rounds_scored, 4);

        // Honest nodes never accumulated anything.
        for node in 0..6 {
            assert_eq!(trust.record(node).verdict, TrustVerdict::Trusted);
            assert_eq!(trust.record(node).divergent_rounds, 0);
        }
    }

    #[test]
    fn one_noisy_round_is_forgiven_by_decay() {
        let policy = TrustPolicy::default();
        let mut trust = TrustPlane::new(policy, 8);

        let (noisy, live) = folded_exchange(7, 1, 4.0);
        assert!(trust.evaluate(0, &live, &noisy).is_empty());
        assert_eq!(trust.record(7).score, 1.0);
        assert_eq!(trust.record(7).verdict, TrustVerdict::Trusted);

        // The node behaves from round 2 on: suspicion halves every round and
        // the verdict never leaves Trusted.
        let (clean, _) = folded_exchange(8, 0, 0.0);
        trust.evaluate(1, &live, &clean);
        assert_eq!(trust.record(7).score, 0.5);
        trust.evaluate(2, &live, &clean);
        assert_eq!(trust.record(7).score, 0.25);
        assert_eq!(trust.record(7).verdict, TrustVerdict::Trusted);
        assert_eq!(trust.stats().suspects, 0);
        assert_eq!(trust.stats().quarantines, 0);
    }

    #[test]
    fn a_clean_fleet_accumulates_nothing() {
        let (exchange, live) = folded_exchange(8, 0, 0.0);
        let mut trust = TrustPlane::new(TrustPolicy::default(), live.len());
        for epoch in 0..10 {
            assert!(trust.evaluate(epoch, &live, &exchange).is_empty());
        }
        let stats = trust.stats();
        assert_eq!(stats.divergent, 0);
        assert_eq!(stats.suspects, 0);
        assert_eq!(stats.quarantines, 0);
        assert_eq!(stats.excluded, 0);
        assert_eq!(stats.nodes_scored, 8 * 10);
        assert_eq!(trust.participants(&live), live);
    }

    #[test]
    fn grow_extends_records_for_joiners() {
        let mut trust = TrustPlane::new(TrustPolicy::default(), 2);
        trust.grow(4);
        assert_eq!(trust.record(3), NodeTrustRecord::initial(3));
        // Shrinking never happens; a smaller `nodes` is a no-op.
        trust.grow(1);
        assert_eq!(trust.record(3).node, 3);
    }

    #[test]
    fn stats_accumulate_field_by_field() {
        // Reminder: this destructuring must stay exhaustive. If adding a
        // field here just broke the build, extend `accumulate` (and this
        // test) rather than papering over it with `..`.
        let a = TrustStats {
            rounds_scored: 1,
            nodes_scored: 2,
            divergent: 3,
            suspects: 4,
            quarantines: 5,
            excluded: 6,
        };
        let mut total = a;
        total.accumulate(&a);
        assert_eq!(
            total,
            TrustStats {
                rounds_scored: 2,
                nodes_scored: 4,
                divergent: 6,
                suspects: 8,
                quarantines: 10,
                excluded: 12,
            }
        );
    }
}
