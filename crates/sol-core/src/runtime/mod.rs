//! Runtimes that schedule and execute an agent's Model and Actuator loops.
//!
//! Two drivers are provided:
//!
//! * [`SimRuntime`](sim::SimRuntime) — a single-threaded, deterministic
//!   discrete-event driver used by all experiments. It co-advances a simulated
//!   [`Environment`] (e.g. the node simulator) with the agent's control loops.
//! * [`ThreadedRuntime`](threaded::ThreadedRuntime) — the deployment shape the
//!   paper describes: the Model and Actuator run in separately scheduled OS
//!   threads connected by a prediction queue, so the Actuator keeps taking
//!   safe actions while the Model is throttled.

pub mod sim;
pub mod threaded;

use crate::time::Timestamp;

/// A simulated environment that evolves with time.
///
/// The simulation runtime advances the environment to the current virtual time
/// before running either control loop, so agents always observe up-to-date
/// telemetry.
pub trait Environment {
    /// Advances the environment's state to `now`. Called with monotonically
    /// non-decreasing timestamps.
    fn advance_to(&mut self, now: Timestamp);
}

/// A no-op environment for agents that do not need a simulated substrate
/// (useful in unit tests and the quickstart example).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullEnvironment;

impl Environment for NullEnvironment {
    fn advance_to(&mut self, _now: Timestamp) {}
}

impl<E: Environment + ?Sized> Environment for &mut E {
    fn advance_to(&mut self, now: Timestamp) {
        (**self).advance_to(now);
    }
}

impl<E: Environment + ?Sized> Environment for Box<E> {
    fn advance_to(&mut self, now: Timestamp) {
        (**self).advance_to(now);
    }
}
