//! Runtimes that schedule and execute agents' Model and Actuator loops.
//!
//! Four drivers are provided:
//!
//! * [`NodeRuntime`](node::NodeRuntime) — the multi-agent discrete-event
//!   driver: a two-level bucketed time-wheel event queue (agent wakes and
//!   interventions as first-class events, environment-step boundaries
//!   merged into the tick time) hosting *N* heterogeneous agents, each
//!   erased behind the
//!   object-safe [`AgentDriver`](node::AgentDriver) trait, on one shared
//!   [`Environment`]. This is what the paper's co-location scenario (§4.2,
//!   §6) runs on. Scenarios are normally assembled through the typed
//!   [`ScenarioBuilder`](builder::ScenarioBuilder) front door
//!   ([`NodeRuntime::builder`](node::NodeRuntime::builder)), whose
//!   [`AgentHandle`](builder::AgentHandle)s give downcast-free access to the
//!   final report.
//! * [`FleetRuntime`](fleet::FleetRuntime) — the scale layer: stamps out *N*
//!   nodes from a [`ScenarioRecipe`](builder::ScenarioRecipe) (seeded per
//!   node via [`NodeSeed`](fleet::NodeSeed)), shards them across a
//!   worker-thread pool synchronized on epoch boundaries of one virtual
//!   clock, and aggregates per-node stats into a
//!   [`FleetReport`](fleet::FleetReport) of fleet-level safety dashboards.
//!   Node availability is itself programmable: the [`lifecycle`] module's
//!   typed state machine and seeded [`FaultPlan`](lifecycle::FaultPlan) make
//!   crashes, joins, and drains first-class fleet events. The [`learning`]
//!   module turns the same barrier into a model-exchange point: learned
//!   state is robustly aggregated and redistributed fleet-wide, and joiners
//!   warm-start from the aggregate. The [`trust`] module watches that
//!   exchange: per-node divergence from the consensus is scored every round,
//!   and persistently poisoned nodes are excluded and drained.
//!   Reports are byte-identical regardless of the worker-thread count.
//! * [`SimRuntime`](sim::SimRuntime) — a typed single-agent wrapper over
//!   `NodeRuntime`, used by the per-agent experiments. It reproduces the
//!   historical single-agent results exactly.
//! * [`ThreadedAgent`](threaded::ThreadedAgent) — the deployment shape the
//!   paper describes: the Model and Actuator run in separately scheduled OS
//!   threads connected by a prediction queue, so the Actuator keeps taking
//!   safe actions while the Model is throttled.
//!
//! Custom [`AgentDriver`](node::AgentDriver)s plug into the same queue; the
//! first one shipped is [`ReplayDriver`](replay::ReplayDriver), which replays
//! a recorded action trace.

pub mod builder;
pub mod fleet;
pub mod learning;
pub mod lifecycle;
pub mod node;
pub mod placement;
pub mod replay;
pub mod sim;
#[cfg(test)]
pub(crate) mod testutil;
pub mod threaded;
pub mod trust;
#[doc(hidden)]
pub mod wheel;

use crate::time::Timestamp;

use self::placement::{NodePlacement, PlacementError, WorkloadId, WorkloadUnit};

/// A simulated environment that evolves with time.
///
/// The simulation runtime advances the environment to the current virtual time
/// before running either control loop, so agents always observe up-to-date
/// telemetry.
///
/// # Workload placement
///
/// Environments that can host dynamically placed work (VMs arriving,
/// departing, and migrating between fleet nodes — see the
/// [`placement`] module) opt in by overriding the placement hooks. The
/// defaults describe an environment with no placeable slots: every attach
/// fails with [`PlacementError::Unsupported`] (counted, not fatal, when a
/// [`FleetController`](placement::FleetController) issues it) and the
/// placement snapshot is empty.
pub trait Environment {
    /// Advances the environment's state to `now`. Called with monotonically
    /// non-decreasing timestamps.
    fn advance_to(&mut self, now: Timestamp);

    /// Marks the start of an exclusively-owned batch of simulation work: the
    /// runtime calls this at the top of every
    /// [`run_until`](node::NodeRuntime::run_until) segment, on the one thread
    /// that will drive the environment until the matching
    /// [`end_batch`](Self::end_batch). Environments built from shared
    /// interior-locked parts (e.g. a composite node whose substrates are
    /// behind `sol-node-sim`'s `Shared` handles) use the pair to acquire
    /// each part's lock
    /// once per segment instead of once per call. The default is a no-op.
    ///
    /// Calls are idempotent: a second `begin_batch` before `end_batch` must
    /// be tolerated (and changes nothing).
    fn begin_batch(&mut self) {}

    /// Closes the batch opened by [`begin_batch`](Self::begin_batch),
    /// releasing any per-segment exclusivity. Called before `run_until`
    /// returns, so cross-thread access between segments (fleet barriers,
    /// telemetry, placement) observes an unlocked environment. The default is
    /// a no-op.
    fn end_batch(&mut self) {}

    /// Heap bytes retained by the environment (buffer capacities included),
    /// for the fleet layer's per-node memory accounting. The default reports
    /// 0 ("not instrumented"); simulation substrates override it via their
    /// [`MemoryFootprint`](sol_ml::footprint::MemoryFootprint) impls.
    fn mem_bytes(&self) -> usize {
        0
    }

    /// Attaches a placeable workload unit. Called only between simulation
    /// segments (epoch boundaries), never mid-tick.
    ///
    /// # Errors
    ///
    /// The default implementation always returns
    /// [`PlacementError::Unsupported`]; hosting environments return
    /// [`PlacementError::CapacityExceeded`] or
    /// [`PlacementError::DuplicateWorkload`] as appropriate.
    fn attach_workload(&mut self, unit: WorkloadUnit) -> Result<(), PlacementError> {
        let _ = unit;
        Err(PlacementError::Unsupported)
    }

    /// Detaches a resident workload unit and returns it (so a migration can
    /// re-attach it elsewhere). Called only between simulation segments.
    ///
    /// # Errors
    ///
    /// The default implementation always returns
    /// [`PlacementError::Unsupported`]; hosting environments return
    /// [`PlacementError::UnknownWorkload`] for ids that are not resident.
    fn detach_workload(&mut self, id: WorkloadId) -> Result<WorkloadUnit, PlacementError> {
        let _ = id;
        Err(PlacementError::Unsupported)
    }

    /// The environment's current placeable state. The default reports no
    /// capacity and no resident units.
    fn placement(&self) -> NodePlacement {
        NodePlacement::none()
    }
}

/// A no-op environment for agents that do not need a simulated substrate
/// (useful in unit tests and the quickstart example).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullEnvironment;

impl Environment for NullEnvironment {
    fn advance_to(&mut self, _now: Timestamp) {}
}

impl<E: Environment + ?Sized> Environment for &mut E {
    fn advance_to(&mut self, now: Timestamp) {
        (**self).advance_to(now);
    }

    fn begin_batch(&mut self) {
        (**self).begin_batch();
    }

    fn end_batch(&mut self) {
        (**self).end_batch();
    }

    fn mem_bytes(&self) -> usize {
        (**self).mem_bytes()
    }

    fn attach_workload(&mut self, unit: WorkloadUnit) -> Result<(), PlacementError> {
        (**self).attach_workload(unit)
    }

    fn detach_workload(&mut self, id: WorkloadId) -> Result<WorkloadUnit, PlacementError> {
        (**self).detach_workload(id)
    }

    fn placement(&self) -> NodePlacement {
        (**self).placement()
    }
}

impl<E: Environment + ?Sized> Environment for Box<E> {
    fn advance_to(&mut self, now: Timestamp) {
        (**self).advance_to(now);
    }

    fn begin_batch(&mut self) {
        (**self).begin_batch();
    }

    fn end_batch(&mut self) {
        (**self).end_batch();
    }

    fn mem_bytes(&self) -> usize {
        (**self).mem_bytes()
    }

    fn attach_workload(&mut self, unit: WorkloadUnit) -> Result<(), PlacementError> {
        (**self).attach_workload(unit)
    }

    fn detach_workload(&mut self, id: WorkloadId) -> Result<WorkloadUnit, PlacementError> {
        (**self).detach_workload(id)
    }

    fn placement(&self) -> NodePlacement {
        (**self).placement()
    }
}
