//! Deterministic single-agent simulation runtime.
//!
//! `SimRuntime` drives one agent's Model loop, Actuator loop, and a simulated
//! [`Environment`] under a shared virtual clock. It is a thin typed wrapper
//! over the multi-agent [`NodeRuntime`]:
//! the agent is registered as the node's only occupant, and the report
//! recovers the concrete `Model`/`Actuator` types. Every experiment in this
//! reproduction runs on this driver (or on `NodeRuntime` directly for
//! co-location scenarios), so results are exactly reproducible.

use crate::actuator::Actuator;
use crate::error::RuntimeError;
use crate::model::Model;
use crate::runtime::node::{AgentId, LoopAgent, NodeRuntime};
use crate::runtime::Environment;
use crate::schedule::Schedule;
use crate::stats::AgentStats;
use crate::time::{SimDuration, Timestamp};

/// Results of a completed simulation run.
#[derive(Debug)]
pub struct SimReport<M, A, E> {
    /// The model, returned for post-run inspection.
    pub model: M,
    /// The actuator, returned for post-run inspection.
    pub actuator: A,
    /// The environment, returned for post-run inspection (metrics usually live
    /// here).
    pub environment: E,
    /// Runtime counters for the agent.
    pub stats: AgentStats,
    /// The virtual time at which the run ended.
    pub ended_at: Timestamp,
}

/// Deterministic single-threaded driver for one agent plus its environment.
///
/// # Examples
///
/// See the crate-level documentation and the `quickstart` example; agents are
/// normally constructed by [`SimRuntime::new`] and driven with
/// [`run_for`](SimRuntime::run_for).
pub struct SimRuntime<M, A, E>
where
    M: Model + 'static,
    A: Actuator<Pred = M::Pred> + 'static,
    E: Environment + 'static,
{
    node: NodeRuntime<E>,
    id: AgentId,
    _marker: std::marker::PhantomData<(M, A)>,
}

impl<M, A, E> SimRuntime<M, A, E>
where
    M: Model + Send + 'static,
    A: Actuator<Pred = M::Pred> + Send + 'static,
    E: Environment + 'static,
{
    /// Creates a runtime for the given agent halves, schedule, and
    /// environment, starting at virtual time zero.
    pub fn new(model: M, actuator: A, schedule: Schedule, environment: E) -> Self {
        let mut node = NodeRuntime::new(environment);
        let id = node.register_agent("agent", model, actuator, schedule);
        SimRuntime { node, id, _marker: std::marker::PhantomData }
    }

    /// Requests that the Actuator's `CleanUp` routine run when the simulation
    /// horizon is reached.
    pub fn cleanup_on_finish(mut self, enable: bool) -> Self {
        self.node = self.node.cleanup_on_finish(enable);
        self
    }

    /// Overrides the maximum environment step (defaults to the data collection
    /// interval, clamped to `[1ms, 1s]`).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if `step` is zero.
    pub fn max_environment_step(mut self, step: SimDuration) -> Result<Self, RuntimeError> {
        self.node = self.node.max_environment_step(step)?;
        Ok(self)
    }

    /// Schedules a Model-loop scheduling delay: starting at `at`, the Model
    /// loop will not run for `duration` (paper §6: "we inject a 30-second
    /// delay in the Model thread").
    pub fn delay_model_at(&mut self, at: Timestamp, duration: SimDuration) {
        self.node.delay_model_at(self.id, at, duration);
    }

    /// Schedules an Actuator-loop scheduling delay starting at `at`.
    pub fn delay_actuator_at(&mut self, at: Timestamp, duration: SimDuration) {
        self.node.delay_actuator_at(self.id, at, duration);
    }

    /// Schedules an arbitrary environment mutation at `at` (e.g. enabling a
    /// fault injector or breaking the model's input source).
    pub fn mutate_environment_at(
        &mut self,
        at: Timestamp,
        f: impl FnMut(&mut E, Timestamp) + Send + 'static,
    ) {
        self.node.mutate_environment_at(at, f);
    }

    /// Read access to the environment (before or after a run segment).
    pub fn environment(&self) -> &E {
        self.node.environment()
    }

    /// Mutable access to the environment.
    pub fn environment_mut(&mut self) -> &mut E {
        self.node.environment_mut()
    }

    fn agent(&self) -> &LoopAgent<M, A> {
        self.node
            .driver(self.id)
            .as_any()
            .downcast_ref::<LoopAgent<M, A>>()
            .expect("single agent is a LoopAgent")
    }

    /// Read access to the model.
    pub fn model(&self) -> &M {
        self.agent().model()
    }

    /// Read access to the actuator.
    pub fn actuator(&self) -> &A {
        self.agent().actuator()
    }

    /// The current virtual time.
    pub fn now(&self) -> Timestamp {
        self.node.now()
    }

    /// Current runtime counters.
    pub fn stats(&self) -> AgentStats {
        self.node.agent_stats(self.id)
    }

    /// Runs the agent for `horizon` of virtual time and returns the final
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::EmptyHorizon`] if `horizon` is zero.
    pub fn run_for(self, horizon: SimDuration) -> Result<SimReport<M, A, E>, RuntimeError> {
        let id = self.id;
        let mut report = self.node.run_for(horizon)?;
        let ended_at = report.ended_at;
        let agent = report.take_agent(id).expect("single agent is present");
        let (model, actuator, stats) = agent
            .into_inner::<LoopAgent<M, A>>()
            .expect("single agent is a LoopAgent")
            .into_parts();
        Ok(SimReport { model, actuator, environment: report.environment, stats, ended_at })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::testutil::{schedule as schedule_ms, ConstModel, CountActuator, StepEnv};
    use crate::runtime::NullEnvironment;

    fn schedule() -> Schedule {
        schedule_ms(100)
    }

    #[test]
    fn rejects_empty_horizon() {
        let rt = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            NullEnvironment,
        );
        assert!(matches!(rt.run_for(SimDuration::ZERO), Err(RuntimeError::EmptyHorizon)));
    }

    #[test]
    fn rejects_zero_environment_step() {
        let rt = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            NullEnvironment,
        );
        assert!(matches!(
            rt.max_environment_step(SimDuration::ZERO),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn runs_epochs_and_delivers_predictions() {
        let rt = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            StepEnv::default(),
        );
        let report = rt.run_for(SimDuration::from_secs(10)).unwrap();
        // 10 s / (5 samples * 100 ms) = 20 epochs.
        assert_eq!(report.stats.model.epochs_completed, 20);
        assert_eq!(report.stats.model.model_predictions, 20);
        assert!(report.actuator.with_pred >= 19);
        assert_eq!(report.ended_at, Timestamp::from_secs(10));
        assert_eq!(report.environment.last, Timestamp::from_secs(10));
    }

    #[test]
    fn model_delay_short_circuits_epochs() {
        let mut rt = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            NullEnvironment,
        );
        rt.delay_model_at(Timestamp::from_secs(2), SimDuration::from_secs(5));
        let report = rt.run_for(SimDuration::from_secs(10)).unwrap();
        // During the 5 s delay no samples are collected, so throughput drops
        // and the actuator falls back to timeout actions.
        assert!(report.stats.model.epochs_completed < 20);
        assert!(report.stats.actuator.actuation_timeouts >= 1);
    }

    #[test]
    fn environment_mutation_fires_at_requested_time() {
        let mut rt = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            StepEnv::default(),
        );
        rt.mutate_environment_at(Timestamp::from_secs(3), |env, now| {
            assert!(now >= Timestamp::from_secs(3));
            env.fault = true;
        });
        let report = rt.run_for(SimDuration::from_secs(5)).unwrap();
        assert!(report.environment.fault);
    }

    #[test]
    fn cleanup_on_finish_invokes_actuator_cleanup() {
        let rt = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            NullEnvironment,
        )
        .cleanup_on_finish(true);
        let report = rt.run_for(SimDuration::from_secs(2)).unwrap();
        assert!(report.actuator.cleaned);
        assert_eq!(report.stats.actuator.cleanups, 1);
    }

    #[test]
    fn actuator_delay_suppresses_actions_during_window() {
        let mut rt = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            NullEnvironment,
        );
        rt.delay_actuator_at(Timestamp::from_secs(1), SimDuration::from_secs(4));
        let report = rt.run_for(SimDuration::from_secs(10)).unwrap();
        let undelayed = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            NullEnvironment,
        )
        .run_for(SimDuration::from_secs(10))
        .unwrap();
        assert!(report.actuator.actions < undelayed.actuator.actions);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let run = || {
            SimRuntime::new(
                ConstModel { value: 1.0 },
                CountActuator::default(),
                schedule(),
                NullEnvironment,
            )
            .run_for(SimDuration::from_secs(7))
            .unwrap()
            .stats
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn accessors_work_before_a_run() {
        let rt = SimRuntime::new(
            ConstModel { value: 3.0 },
            CountActuator::default(),
            schedule(),
            StepEnv::default(),
        );
        assert_eq!(rt.model().value, 3.0);
        assert_eq!(rt.actuator().actions, 0);
        assert_eq!(rt.now(), Timestamp::ZERO);
        assert_eq!(rt.stats(), AgentStats::default());
        assert_eq!(rt.environment().advances, 0);
    }
}
