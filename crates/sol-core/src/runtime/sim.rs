//! Deterministic discrete-event runtime.
//!
//! `SimRuntime` drives the Model loop, the Actuator loop, and a simulated
//! [`Environment`] under a shared [`VirtualClock`]. Every experiment in this
//! reproduction runs on this driver so results are exactly reproducible.

use crate::actuator::Actuator;
use crate::error::RuntimeError;
use crate::loops::{ActuatorLoop, ModelLoop};
use crate::model::Model;
use crate::runtime::Environment;
use crate::schedule::Schedule;
use crate::stats::AgentStats;
use crate::time::{Clock, SimDuration, Timestamp, VirtualClock};

/// An arbitrary environment mutation applied at a scheduled time.
type MutateFn<E> = Box<dyn FnMut(&mut E, Timestamp) + Send>;

/// A scheduled disturbance injected into a running agent, mirroring the
/// failure-injection methodology of paper §6 (scheduling delays, environment
/// changes at known times).
enum Intervention<E> {
    /// Delay the Model loop for `duration` starting at the trigger time
    /// (models throttling/starvation of the expensive ML component).
    DelayModel { duration: SimDuration },
    /// Delay the Actuator loop for `duration` starting at the trigger time.
    DelayActuator { duration: SimDuration },
    /// Arbitrary change applied to the environment (e.g. toggle a fault
    /// injector, change a workload phase).
    Mutate(MutateFn<E>),
}

struct ScheduledIntervention<E> {
    at: Timestamp,
    intervention: Intervention<E>,
}

/// Results of a completed simulation run.
#[derive(Debug)]
pub struct SimReport<M, A, E> {
    /// The model, returned for post-run inspection.
    pub model: M,
    /// The actuator, returned for post-run inspection.
    pub actuator: A,
    /// The environment, returned for post-run inspection (metrics usually live
    /// here).
    pub environment: E,
    /// Runtime counters for the agent.
    pub stats: AgentStats,
    /// The virtual time at which the run ended.
    pub ended_at: Timestamp,
}

/// Deterministic single-threaded driver for one agent plus its environment.
///
/// # Examples
///
/// See the crate-level documentation and the `quickstart` example; agents are
/// normally constructed by [`SimRuntime::new`] and driven with
/// [`run_for`](SimRuntime::run_for).
pub struct SimRuntime<M, A, E>
where
    M: Model,
    A: Actuator<Pred = M::Pred>,
    E: Environment,
{
    clock: VirtualClock,
    model_loop: ModelLoop<M>,
    actuator_loop: ActuatorLoop<A>,
    environment: E,
    interventions: Vec<ScheduledIntervention<E>>,
    /// Smallest granularity at which the environment is advanced even when no
    /// agent event is due; keeps environment dynamics (e.g. workload phases)
    /// from being skipped over entirely between sparse agent wakes.
    max_env_step: SimDuration,
    cleanup_on_finish: bool,
    /// The Actuator loop does not run before this time (scheduling-delay
    /// injection for the blocking-vs-non-blocking experiments).
    actuator_delayed_until: Option<Timestamp>,
}

impl<M, A, E> SimRuntime<M, A, E>
where
    M: Model,
    A: Actuator<Pred = M::Pred>,
    E: Environment,
{
    /// Creates a runtime for the given agent halves, schedule, and
    /// environment, starting at virtual time zero.
    pub fn new(model: M, actuator: A, schedule: Schedule, environment: E) -> Self {
        let clock = VirtualClock::new();
        let start = clock.now();
        let max_env_step = schedule
            .data_collect_interval()
            .max(SimDuration::from_millis(1))
            .min(SimDuration::from_secs(1));
        SimRuntime {
            clock,
            model_loop: ModelLoop::new(model, schedule.clone(), start),
            actuator_loop: ActuatorLoop::new(actuator, schedule, start),
            environment,
            interventions: Vec::new(),
            max_env_step,
            cleanup_on_finish: false,
            actuator_delayed_until: None,
        }
    }

    /// Requests that the Actuator's `CleanUp` routine run when the simulation
    /// horizon is reached.
    pub fn cleanup_on_finish(mut self, enable: bool) -> Self {
        self.cleanup_on_finish = enable;
        self
    }

    /// Overrides the maximum environment step (defaults to the data collection
    /// interval, clamped to `[1ms, 1s]`).
    pub fn max_environment_step(mut self, step: SimDuration) -> Self {
        assert!(!step.is_zero(), "environment step must be non-zero");
        self.max_env_step = step;
        self
    }

    /// Schedules a Model-loop scheduling delay: starting at `at`, the Model
    /// loop will not run for `duration` (paper §6: "we inject a 30-second
    /// delay in the Model thread").
    pub fn delay_model_at(&mut self, at: Timestamp, duration: SimDuration) {
        self.interventions.push(ScheduledIntervention {
            at,
            intervention: Intervention::DelayModel { duration },
        });
    }

    /// Schedules an Actuator-loop scheduling delay starting at `at`.
    pub fn delay_actuator_at(&mut self, at: Timestamp, duration: SimDuration) {
        self.interventions.push(ScheduledIntervention {
            at,
            intervention: Intervention::DelayActuator { duration },
        });
    }

    /// Schedules an arbitrary environment mutation at `at` (e.g. enabling a
    /// fault injector or breaking the model's input source).
    pub fn mutate_environment_at(
        &mut self,
        at: Timestamp,
        f: impl FnMut(&mut E, Timestamp) + Send + 'static,
    ) {
        self.interventions
            .push(ScheduledIntervention { at, intervention: Intervention::Mutate(Box::new(f)) });
    }

    /// Read access to the environment (before or after a run segment).
    pub fn environment(&self) -> &E {
        &self.environment
    }

    /// Mutable access to the environment.
    pub fn environment_mut(&mut self) -> &mut E {
        &mut self.environment
    }

    /// Read access to the model.
    pub fn model(&self) -> &M {
        self.model_loop.model()
    }

    /// Read access to the actuator.
    pub fn actuator(&self) -> &A {
        self.actuator_loop.actuator()
    }

    /// The current virtual time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Current runtime counters.
    pub fn stats(&self) -> AgentStats {
        AgentStats {
            model: self.model_loop.stats().clone(),
            actuator: self.actuator_loop.stats().clone(),
        }
    }

    /// Runs the agent for `horizon` of virtual time and returns the final
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::EmptyHorizon`] if `horizon` is zero.
    pub fn run_for(mut self, horizon: SimDuration) -> Result<SimReport<M, A, E>, RuntimeError> {
        if horizon.is_zero() {
            return Err(RuntimeError::EmptyHorizon);
        }
        let end = self.clock.now() + horizon;
        self.interventions.sort_by_key(|i| i.at);
        let mut pending: std::collections::VecDeque<ScheduledIntervention<E>> =
            std::mem::take(&mut self.interventions).into();

        loop {
            let now = self.clock.now();
            if now >= end {
                break;
            }

            // Next agent event. A delayed loop's next event is the end of its
            // delay window, never earlier.
            let model_wake = self.model_loop.next_wake().max(now);
            let mut actuator_wake = self.actuator_loop.next_wake().max(now);
            if let Some(t) = self.actuator_delayed_until {
                actuator_wake = actuator_wake.max(t);
            }
            let mut next = model_wake.min(actuator_wake);

            // Next intervention.
            if let Some(iv) = pending.front() {
                next = next.min(iv.at.max(now));
            }

            // Never skip more than max_env_step of environment evolution and
            // never run past the horizon.
            next = next.min(now + self.max_env_step).min(end);
            if next < now {
                next = now;
            }

            // Advance time and the environment.
            self.clock.set(next);
            self.environment.advance_to(next);

            // Apply due interventions.
            while pending.front().map(|iv| iv.at <= next).unwrap_or(false) {
                let iv = pending.pop_front().expect("checked front");
                match iv.intervention {
                    Intervention::DelayModel { duration } => {
                        self.model_loop.delay_until(next + duration);
                    }
                    Intervention::DelayActuator { duration } => {
                        // An actuator delay is modelled by pushing its next
                        // deadline out: deliver no step until the delay ends.
                        // We implement it by swallowing steps below.
                        self.actuator_delayed_until = Some(next + duration);
                    }
                    Intervention::Mutate(mut f) => f(&mut self.environment, next),
                }
            }

            // Run the loops that are due.
            if self.model_loop.next_wake() <= next {
                if let Some(prediction) = self.model_loop.step(next) {
                    self.actuator_loop.deliver(prediction);
                }
            }
            let actuator_delayed = self.actuator_delayed_until.map(|t| next < t).unwrap_or(false);
            if !actuator_delayed && self.actuator_loop.next_wake() <= next {
                self.actuator_loop.step(next);
            }
            if let Some(t) = self.actuator_delayed_until {
                if next >= t {
                    self.actuator_delayed_until = None;
                }
            }
        }

        let ended_at = self.clock.now();
        if self.cleanup_on_finish {
            self.actuator_loop.clean_up(ended_at);
        }
        let stats = AgentStats {
            model: self.model_loop.stats().clone(),
            actuator: self.actuator_loop.stats().clone(),
        };
        let (model, _) = self.model_loop.into_parts();
        let (actuator, _) = self.actuator_loop.into_parts();
        Ok(SimReport { model, actuator, environment: self.environment, stats, ended_at })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::ActuatorAssessment;
    use crate::error::DataError;
    use crate::model::ModelAssessment;
    use crate::prediction::Prediction;
    use crate::runtime::NullEnvironment;

    /// A counter environment recording how far it was advanced.
    #[derive(Debug, Default)]
    struct StepEnv {
        last: Timestamp,
        advances: u64,
        fault: bool,
    }

    impl Environment for StepEnv {
        fn advance_to(&mut self, now: Timestamp) {
            assert!(now >= self.last, "environment time went backwards");
            self.last = now;
            self.advances += 1;
        }
    }

    struct ConstModel {
        value: f64,
    }

    impl Model for ConstModel {
        type Data = f64;
        type Pred = f64;
        fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
            Ok(self.value)
        }
        fn validate_data(&self, d: &f64) -> bool {
            d.is_finite()
        }
        fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
        fn update_model(&mut self, _now: Timestamp) {}
        fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
            Some(Prediction::model(self.value, now, now + SimDuration::from_secs(1)))
        }
        fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
            Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
        }
        fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
            ModelAssessment::Healthy
        }
    }

    #[derive(Default)]
    struct CountActuator {
        actions: u64,
        with_pred: u64,
        cleaned: bool,
    }

    impl Actuator for CountActuator {
        type Pred = f64;
        fn take_action(&mut self, _now: Timestamp, pred: Option<&Prediction<f64>>) {
            self.actions += 1;
            if pred.is_some() {
                self.with_pred += 1;
            }
        }
        fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
            ActuatorAssessment::Acceptable
        }
        fn mitigate(&mut self, _now: Timestamp) {}
        fn clean_up(&mut self, _now: Timestamp) {
            self.cleaned = true;
        }
    }

    fn schedule() -> Schedule {
        Schedule::builder()
            .data_per_epoch(5)
            .data_collect_interval(SimDuration::from_millis(100))
            .max_epoch_time(SimDuration::from_secs(1))
            .assess_model_every_epochs(1)
            .max_actuation_delay(SimDuration::from_secs(2))
            .assess_actuator_interval(SimDuration::from_secs(1))
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_empty_horizon() {
        let rt = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            NullEnvironment,
        );
        assert!(matches!(rt.run_for(SimDuration::ZERO), Err(RuntimeError::EmptyHorizon)));
    }

    #[test]
    fn runs_epochs_and_delivers_predictions() {
        let rt = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            StepEnv::default(),
        );
        let report = rt.run_for(SimDuration::from_secs(10)).unwrap();
        // 10 s / (5 samples * 100 ms) = 20 epochs.
        assert_eq!(report.stats.model.epochs_completed, 20);
        assert_eq!(report.stats.model.model_predictions, 20);
        assert!(report.actuator.with_pred >= 19);
        assert_eq!(report.ended_at, Timestamp::from_secs(10));
        assert_eq!(report.environment.last, Timestamp::from_secs(10));
    }

    #[test]
    fn model_delay_short_circuits_epochs() {
        let mut rt = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            NullEnvironment,
        );
        rt.delay_model_at(Timestamp::from_secs(2), SimDuration::from_secs(5));
        let report = rt.run_for(SimDuration::from_secs(10)).unwrap();
        // During the 5 s delay no samples are collected, so throughput drops
        // and the actuator falls back to timeout actions.
        assert!(report.stats.model.epochs_completed < 20);
        assert!(report.stats.actuator.actuation_timeouts >= 1);
    }

    #[test]
    fn environment_mutation_fires_at_requested_time() {
        let mut rt = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            StepEnv::default(),
        );
        rt.mutate_environment_at(Timestamp::from_secs(3), |env, now| {
            assert!(now >= Timestamp::from_secs(3));
            env.fault = true;
        });
        let report = rt.run_for(SimDuration::from_secs(5)).unwrap();
        assert!(report.environment.fault);
    }

    #[test]
    fn cleanup_on_finish_invokes_actuator_cleanup() {
        let rt = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            NullEnvironment,
        )
        .cleanup_on_finish(true);
        let report = rt.run_for(SimDuration::from_secs(2)).unwrap();
        assert!(report.actuator.cleaned);
        assert_eq!(report.stats.actuator.cleanups, 1);
    }

    #[test]
    fn actuator_delay_suppresses_actions_during_window() {
        let mut rt = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            NullEnvironment,
        );
        rt.delay_actuator_at(Timestamp::from_secs(1), SimDuration::from_secs(4));
        let report = rt.run_for(SimDuration::from_secs(10)).unwrap();
        let undelayed = SimRuntime::new(
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(),
            NullEnvironment,
        )
        .run_for(SimDuration::from_secs(10))
        .unwrap();
        assert!(report.actuator.actions < undelayed.actuator.actions);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let run = || {
            SimRuntime::new(
                ConstModel { value: 1.0 },
                CountActuator::default(),
                schedule(),
                NullEnvironment,
            )
            .run_for(SimDuration::from_secs(7))
            .unwrap()
            .stats
        };
        assert_eq!(run(), run());
    }
}
