//! `ScenarioBuilder`: a typed, composable node-assembly API.
//!
//! [`NodeRuntime`] hosts arbitrary agent
//! populations behind the type-erased [`AgentDriver`] trait; this module is
//! the typed front door to it. A [`ScenarioBuilder`] registers each agent and
//! hands back an [`AgentHandle`] carrying the agent's concrete `Model` and
//! `Actuator` types, so post-run inspection needs no `Any` downcasting at
//! call sites:
//!
//! * [`ScenarioBuilder::agent`] registers a `Model`/`Actuator` pair and
//!   returns a typed [`AgentHandle<M, A>`].
//! * [`ScenarioBuilder::register`] consumes a pre-packaged
//!   [`AgentBlueprint`] (what the `sol-agents` crate exports for each paper
//!   agent).
//! * [`ScenarioBuilder::driver`] registers a custom [`AgentDriver`] (a replay
//!   agent, an adversarial load generator) and returns a typed
//!   [`DriverHandle<D>`].
//! * [`ScenarioBuilder::build`] yields the assembled `NodeRuntime`; the
//!   handles then index into it and into the final
//!   [`NodeReport`]:
//!   [`NodeReport::agent`](crate::runtime::node::NodeReport::agent) returns a
//!   typed [`AgentView`] and
//!   [`NodeReport::take`](crate::runtime::node::NodeReport::take) recovers the
//!   concrete halves by value.
//!
//! The untyped [`AgentId`] +
//! [`AgentReport::inner`](crate::runtime::node::AgentReport::inner) pattern
//! remains available as the escape hatch for code that genuinely needs type
//! erasure (e.g. looping over heterogeneous agents).
//!
//! # Examples
//!
//! ```
//! use sol_core::prelude::*;
//! # use sol_core::error::DataError;
//! # struct M;
//! # impl Model for M {
//! #     type Data = f64;
//! #     type Pred = f64;
//! #     fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> { Ok(1.0) }
//! #     fn validate_data(&self, d: &f64) -> bool { d.is_finite() }
//! #     fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
//! #     fn update_model(&mut self, _now: Timestamp) {}
//! #     fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
//! #         Some(Prediction::model(2.0, now, now + SimDuration::from_secs(1)))
//! #     }
//! #     fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
//! #         Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
//! #     }
//! #     fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment { ModelAssessment::Healthy }
//! # }
//! # #[derive(Default)]
//! # struct A { count: u64 }
//! # impl Actuator for A {
//! #     type Pred = f64;
//! #     fn take_action(&mut self, _now: Timestamp, _pred: Option<&Prediction<f64>>) {
//! #         self.count += 1;
//! #     }
//! #     fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
//! #         ActuatorAssessment::Acceptable
//! #     }
//! #     fn mitigate(&mut self, _now: Timestamp) {}
//! #     fn clean_up(&mut self, _now: Timestamp) {}
//! # }
//! let schedule = Schedule::builder()
//!     .data_per_epoch(2)
//!     .data_collect_interval(SimDuration::from_millis(100))
//!     .max_epoch_time(SimDuration::from_secs(1))
//!     .build()?;
//!
//! let mut builder = NodeRuntime::builder(NullEnvironment);
//! let fast = builder.agent("fast", M, A::default(), schedule.clone());
//! let slow = builder.agent("slow", M, A::default(), schedule);
//! let runtime = builder.build();
//!
//! let mut report = runtime.run_for(SimDuration::from_secs(5))?;
//! // Typed access through the handles: no downcasts.
//! assert!(report.agent(fast).stats().model.epochs_completed > 0);
//! assert!(report.agent(slow).actuator().count > 0);
//! let taken = report.take(fast);
//! assert_eq!(taken.name, "fast");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::marker::PhantomData;
use std::sync::Arc;

use crate::actuator::Actuator;
use crate::error::{ReportError, RuntimeError};
use crate::model::Model;
use crate::runtime::fleet::NodeSeed;
use crate::runtime::node::{AgentDriver, AgentId, LoopAgent, NodeReport, NodeRuntime};
use crate::runtime::Environment;
use crate::schedule::Schedule;
use crate::stats::AgentStats;
use crate::time::SimDuration;

/// A typed token for an agent registered through a [`ScenarioBuilder`]:
/// carries the agent's [`AgentId`] plus its concrete `Model`/`Actuator` types,
/// so reports can be read back without downcasting.
///
/// Handles are `Copy` and convert [`Into`] an [`AgentId`] wherever the untyped
/// runtime API (e.g.
/// [`NodeRuntime::delay_model_at`](crate::runtime::node::NodeRuntime::delay_model_at))
/// wants one.
pub struct AgentHandle<M, A> {
    id: AgentId,
    _types: PhantomData<fn() -> (M, A)>,
}

impl<M, A> AgentHandle<M, A> {
    fn new(id: AgentId) -> Self {
        AgentHandle { id, _types: PhantomData }
    }

    /// The untyped id of this agent (the escape hatch into the `AgentId` API).
    pub fn id(self) -> AgentId {
        self.id
    }
}

impl<M, A> Clone for AgentHandle<M, A> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M, A> Copy for AgentHandle<M, A> {}

impl<M, A> std::fmt::Debug for AgentHandle<M, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AgentHandle({})", self.id)
    }
}

impl<M, A> From<AgentHandle<M, A>> for AgentId {
    fn from(handle: AgentHandle<M, A>) -> AgentId {
        handle.id
    }
}

/// A typed token for a custom [`AgentDriver`] registered through
/// [`ScenarioBuilder::driver`], carrying the driver's concrete type.
pub struct DriverHandle<D> {
    id: AgentId,
    _driver: PhantomData<fn() -> D>,
}

impl<D> DriverHandle<D> {
    fn new(id: AgentId) -> Self {
        DriverHandle { id, _driver: PhantomData }
    }

    /// The untyped id of this agent.
    pub fn id(self) -> AgentId {
        self.id
    }
}

impl<D> Clone for DriverHandle<D> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<D> Copy for DriverHandle<D> {}

impl<D> std::fmt::Debug for DriverHandle<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DriverHandle({})", self.id)
    }
}

impl<D> From<DriverHandle<D>> for AgentId {
    fn from(handle: DriverHandle<D>) -> AgentId {
        handle.id
    }
}

/// Everything needed to register one agent: a name, the `Model`/`Actuator`
/// halves, and the control-loop schedule.
///
/// Blueprints let agent crates package their wiring once (e.g.
/// `overclock_blueprint(&node, config)` in `sol-agents`) so every scenario —
/// solo runs, two-agent co-location, N-agent fleets — assembles the same
/// agent the same way via [`ScenarioBuilder::register`].
pub struct AgentBlueprint<M: Model, A: Actuator<Pred = M::Pred>> {
    /// Name the agent is registered under (shows up in reports).
    pub name: String,
    /// The agent's Model half.
    pub model: M,
    /// The agent's Actuator half.
    pub actuator: A,
    /// The schedule driving both control loops.
    pub schedule: Schedule,
}

impl<M: Model, A: Actuator<Pred = M::Pred>> AgentBlueprint<M, A> {
    /// Packages the parts of one agent.
    pub fn new(name: impl Into<String>, model: M, actuator: A, schedule: Schedule) -> Self {
        AgentBlueprint { name: name.into(), model, actuator, schedule }
    }
}

/// Assembles a [`NodeRuntime`] hosting an arbitrary agent population on one
/// shared environment. See the [module docs](self) for the full API tour.
///
/// Created with [`NodeRuntime::builder`].
pub struct ScenarioBuilder<E: Environment + 'static> {
    runtime: NodeRuntime<E>,
}

impl<E: Environment + 'static> ScenarioBuilder<E> {
    pub(crate) fn new(runtime: NodeRuntime<E>) -> Self {
        ScenarioBuilder { runtime }
    }

    /// Overrides the maximum environment step (defaults to the smallest
    /// registered data collection interval, clamped to `[1ms, 1s]`). The
    /// explicit value sticks regardless of registration order.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if `step` is zero.
    pub fn max_environment_step(mut self, step: SimDuration) -> Result<Self, RuntimeError> {
        self.runtime = self.runtime.max_environment_step(step)?;
        Ok(self)
    }

    /// Requests that every agent's clean-up routine run when the simulation
    /// horizon is reached.
    pub fn cleanup_on_finish(mut self, enable: bool) -> Self {
        self.runtime = self.runtime.cleanup_on_finish(enable);
        self
    }

    /// Registers a `Model`/`Actuator` pair under `name`, driven by `schedule`,
    /// and returns a typed handle to it.
    pub fn agent<M, A>(
        &mut self,
        name: impl Into<String>,
        model: M,
        actuator: A,
        schedule: Schedule,
    ) -> AgentHandle<M, A>
    where
        M: Model + Send + 'static,
        A: Actuator<Pred = M::Pred> + Send + 'static,
    {
        AgentHandle::new(self.runtime.register_agent(name, model, actuator, schedule))
    }

    /// Registers a pre-packaged [`AgentBlueprint`] and returns its typed
    /// handle. Equivalent to calling [`agent`](Self::agent) with the
    /// blueprint's parts.
    pub fn register<M, A>(&mut self, blueprint: AgentBlueprint<M, A>) -> AgentHandle<M, A>
    where
        M: Model + Send + 'static,
        A: Actuator<Pred = M::Pred> + Send + 'static,
    {
        self.agent(blueprint.name, blueprint.model, blueprint.actuator, blueprint.schedule)
    }

    /// Registers a custom [`AgentDriver`] (e.g. a
    /// [`ReplayDriver`](crate::runtime::replay::ReplayDriver)) under `name`
    /// and returns a typed handle to it.
    ///
    /// Custom drivers declare no schedule, so they do not influence the
    /// default environment step; set
    /// [`max_environment_step`](Self::max_environment_step) explicitly if the
    /// scenario contains only drivers.
    pub fn driver<D: AgentDriver<E>>(
        &mut self,
        name: impl Into<String>,
        driver: D,
    ) -> DriverHandle<D> {
        DriverHandle::new(self.runtime.register_driver(name, Box::new(driver)))
    }

    /// Number of agents registered so far.
    pub fn agent_count(&self) -> usize {
        self.runtime.agent_count()
    }

    /// Attaches a placeable workload unit to the environment being assembled
    /// (initial placement). Recipes declare *which* slots are placeable by
    /// configuring the environment's placeable capacity; this hook and the
    /// equivalent one on [`NodeRuntime`] fill those slots.
    ///
    /// # Errors
    ///
    /// Propagates the environment's
    /// [`PlacementError`](crate::runtime::placement::PlacementError).
    pub fn attach_workload(
        &mut self,
        unit: crate::runtime::placement::WorkloadUnit,
    ) -> Result<(), crate::runtime::placement::PlacementError> {
        self.runtime.attach_workload(unit)
    }

    /// The environment's current placeable state.
    pub fn placement(&self) -> crate::runtime::placement::NodePlacement {
        self.runtime.placement()
    }

    /// Read access to the environment being assembled.
    pub fn environment(&self) -> &E {
        self.runtime.environment()
    }

    /// Mutable access to the environment being assembled.
    pub fn environment_mut(&mut self) -> &mut E {
        self.runtime.environment_mut()
    }

    /// Finishes assembly and returns the runtime, ready to
    /// [`run_for`](NodeRuntime::run_for) (or to schedule interventions on
    /// first — the handles convert into [`AgentId`]s).
    pub fn build(self) -> NodeRuntime<E> {
        self.runtime
    }
}

/// A replayable node-assembly closure: everything needed to stamp out any
/// number of identical-by-construction (but per-node seeded) nodes.
///
/// A recipe wraps a `Fn(&NodeSeed) -> NodeRuntime<E>` — typically a closure
/// that derives substrate and learner seeds from the [`NodeSeed`], assembles a
/// [`ScenarioBuilder`], and builds it. The
/// [`FleetRuntime`](crate::runtime::fleet::FleetRuntime) instantiates the
/// recipe once per simulated server, on whichever worker thread hosts that
/// node, so the closure must be `Send + Sync` and deterministic in the seed:
/// two instantiations with the same [`NodeSeed`] must produce byte-identical
/// nodes regardless of thread.
///
/// Because every node replays the same registration sequence, the
/// [`AgentHandle`]s returned while assembling *any* instantiation are valid
/// for *every* instantiation — that is what lets fleet-level aggregates be
/// keyed by handle. The presets in `sol-agents::colocation` package exactly
/// this: a recipe plus the handle set shared by all nodes.
///
/// An optional metrics closure (see [`with_metrics`](Self::with_metrics))
/// extracts named environment-level readings (SLO attainment, p99 latency,
/// violation counts) from each finished node before its report is discarded,
/// feeding the fleet's safety dashboards.
pub struct ScenarioRecipe<E: Environment + 'static> {
    build: Arc<BuildFn<E>>,
    metrics: Arc<MetricsFn<E>>,
    telemetry: Arc<TelemetryFn<E>>,
}

/// The node-assembly closure a [`ScenarioRecipe`] replays per node.
type BuildFn<E> = dyn Fn(&NodeSeed) -> NodeRuntime<E> + Send + Sync;
/// A recipe's environment-metric extractor.
type MetricsFn<E> = dyn Fn(&NodeReport<E>) -> Vec<(String, f64)> + Send + Sync;
/// A recipe's mid-run telemetry extractor (read at every epoch barrier).
type TelemetryFn<E> = dyn Fn(&E) -> Vec<(String, f64)> + Send + Sync;

impl<E: Environment + 'static> Clone for ScenarioRecipe<E> {
    fn clone(&self) -> Self {
        ScenarioRecipe {
            build: Arc::clone(&self.build),
            metrics: Arc::clone(&self.metrics),
            telemetry: Arc::clone(&self.telemetry),
        }
    }
}

impl<E: Environment + 'static> std::fmt::Debug for ScenarioRecipe<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRecipe").finish_non_exhaustive()
    }
}

impl<E: Environment + 'static> ScenarioRecipe<E> {
    /// Wraps a node-assembly closure. The closure must be deterministic in
    /// the seed (see the type docs).
    pub fn new(build: impl Fn(&NodeSeed) -> NodeRuntime<E> + Send + Sync + 'static) -> Self {
        ScenarioRecipe {
            build: Arc::new(build),
            metrics: Arc::new(|_| Vec::new()),
            telemetry: Arc::new(|_| Vec::new()),
        }
    }

    /// Attaches a metrics extractor run against every finished node's
    /// [`NodeReport`]. The returned `(name, value)` pairs are aggregated
    /// across the fleet into
    /// [`MetricSummary`](crate::runtime::fleet::MetricSummary) rows; every
    /// node must report the same metric names.
    pub fn with_metrics(
        mut self,
        metrics: impl Fn(&NodeReport<E>) -> Vec<(String, f64)> + Send + Sync + 'static,
    ) -> Self {
        self.metrics = Arc::new(metrics);
        self
    }

    /// Attaches a telemetry extractor read against every node's *live*
    /// environment at each epoch barrier. The returned `(name, value)` pairs
    /// feed the [`NodeView`](crate::runtime::placement::NodeView)s a
    /// [`FleetController`](crate::runtime::placement::FleetController) plans
    /// from — unlike [`with_metrics`](Self::with_metrics), which only runs
    /// once the node has finished. The extractor must be read-only in effect:
    /// it runs at every barrier, so any mutation would change results.
    pub fn with_telemetry(
        mut self,
        telemetry: impl Fn(&E) -> Vec<(String, f64)> + Send + Sync + 'static,
    ) -> Self {
        self.telemetry = Arc::new(telemetry);
        self
    }

    /// Stamps out one node for `seed`.
    pub fn instantiate(&self, seed: &NodeSeed) -> NodeRuntime<E> {
        (self.build)(seed)
    }

    /// Runs the metrics extractor against a finished node.
    pub fn extract_metrics(&self, report: &NodeReport<E>) -> Vec<(String, f64)> {
        (self.metrics)(report)
    }

    /// Runs the telemetry extractor against a live environment.
    pub fn extract_telemetry(&self, environment: &E) -> Vec<(String, f64)> {
        (self.telemetry)(environment)
    }
}

/// A typed, borrowed view of one agent in a
/// [`NodeReport`], obtained through
/// [`NodeReport::agent`] with an [`AgentHandle`].
pub struct AgentView<'a, M: Model, A: Actuator<Pred = M::Pred>> {
    name: &'a str,
    stats: &'a AgentStats,
    agent: &'a LoopAgent<M, A>,
}

impl<'a, M: Model, A: Actuator<Pred = M::Pred>> AgentView<'a, M, A> {
    /// The name the agent was registered under.
    pub fn name(&self) -> &'a str {
        self.name
    }

    /// Final runtime counters.
    pub fn stats(&self) -> &'a AgentStats {
        self.stats
    }

    /// The agent's concrete model.
    pub fn model(&self) -> &'a M {
        self.agent.model()
    }

    /// The agent's concrete actuator.
    pub fn actuator(&self) -> &'a A {
        self.agent.actuator()
    }
}

/// One agent recovered by value from a report via [`NodeReport::take`].
pub struct TakenAgent<M, A> {
    /// The name the agent was registered under.
    pub name: String,
    /// The agent's concrete model.
    pub model: M,
    /// The agent's concrete actuator.
    pub actuator: A,
    /// Final runtime counters.
    pub stats: AgentStats,
}

impl<E: Environment + 'static> NodeReport<E> {
    /// Typed view of one agent through its [`AgentHandle`] — model, actuator,
    /// and stats with no downcasting at the call site.
    ///
    /// # Panics
    ///
    /// Panics if the handle came from a different runtime or the agent was
    /// already taken; use [`try_agent`](Self::try_agent) to handle that as a
    /// [`ReportError`] instead.
    pub fn agent<M, A>(&self, handle: AgentHandle<M, A>) -> AgentView<'_, M, A>
    where
        M: Model + 'static,
        A: Actuator<Pred = M::Pred> + 'static,
    {
        self.try_agent(handle).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`agent`](Self::agent).
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::UnknownAgent`] for a foreign or already-taken
    /// handle, [`ReportError::WrongAgentType`] if a foreign handle aliases an
    /// agent of a different type.
    pub fn try_agent<M, A>(
        &self,
        handle: AgentHandle<M, A>,
    ) -> Result<AgentView<'_, M, A>, ReportError>
    where
        M: Model + 'static,
        A: Actuator<Pred = M::Pred> + 'static,
    {
        let report = self.agent_report(handle.id)?;
        let agent = report
            .inner::<LoopAgent<M, A>>()
            .ok_or_else(|| ReportError::WrongAgentType(handle.id.to_string()))?;
        Ok(AgentView { name: &report.name, stats: &report.stats, agent })
    }

    /// Removes one agent from the report and returns its concrete halves by
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if the handle came from a different runtime or the agent was
    /// already taken; use [`try_take`](Self::try_take) to handle that as a
    /// [`ReportError`] instead.
    pub fn take<M, A>(&mut self, handle: AgentHandle<M, A>) -> TakenAgent<M, A>
    where
        M: Model + 'static,
        A: Actuator<Pred = M::Pred> + 'static,
    {
        self.try_take(handle).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`take`](Self::take).
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::UnknownAgent`] for a foreign or already-taken
    /// handle, [`ReportError::WrongAgentType`] if a foreign handle aliases an
    /// agent of a different type. The report is left untouched on error.
    pub fn try_take<M, A>(
        &mut self,
        handle: AgentHandle<M, A>,
    ) -> Result<TakenAgent<M, A>, ReportError>
    where
        M: Model + 'static,
        A: Actuator<Pred = M::Pred> + 'static,
    {
        // Verify the type before removing so errors leave the report intact.
        self.try_agent(handle)?;
        let report = self.take_agent(handle.id)?;
        let name = report.name.clone();
        let (model, actuator, stats) =
            report.into_inner::<LoopAgent<M, A>>().expect("type verified above").into_parts();
        Ok(TakenAgent { name, model, actuator, stats })
    }

    /// Typed access to a custom driver through its [`DriverHandle`].
    ///
    /// # Panics
    ///
    /// Panics if the handle came from a different runtime or the driver was
    /// already taken; use [`try_driver`](Self::try_driver) instead to handle
    /// that as a [`ReportError`].
    pub fn driver<D: 'static>(&self, handle: DriverHandle<D>) -> &D {
        self.try_driver(handle).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`driver`](Self::driver).
    ///
    /// # Errors
    ///
    /// Returns [`ReportError::UnknownAgent`] for a foreign or already-taken
    /// handle, [`ReportError::WrongAgentType`] if a foreign handle aliases an
    /// agent of a different type.
    pub fn try_driver<D: 'static>(&self, handle: DriverHandle<D>) -> Result<&D, ReportError> {
        let report = self.agent_report(handle.id)?;
        report.inner::<D>().ok_or_else(|| ReportError::WrongAgentType(handle.id.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::node::NodeRuntime;
    use crate::runtime::testutil::{schedule, ConstModel, CountActuator, StepEnv};
    use crate::runtime::NullEnvironment;
    use crate::time::Timestamp;

    #[test]
    fn builder_assembles_typed_agents() {
        let mut builder = NodeRuntime::builder(StepEnv::default());
        let fast = builder.agent(
            "fast",
            ConstModel { value: 1.0 },
            CountActuator::default(),
            schedule(100),
        );
        let slow = builder.agent(
            "slow",
            ConstModel { value: 2.0 },
            CountActuator::default(),
            schedule(200),
        );
        let report = builder.build().run_for(SimDuration::from_secs(10)).unwrap();
        assert_eq!(report.agent(fast).stats().model.epochs_completed, 20);
        assert_eq!(report.agent(slow).stats().model.epochs_completed, 10);
        assert_eq!(report.agent(fast).name(), "fast");
        // Typed model/actuator access without downcasts.
        assert_eq!(report.agent(fast).model().value, 1.0);
        assert!(report.agent(slow).actuator().actions > 0);
    }

    #[test]
    fn builder_matches_manual_registration_byte_for_byte() {
        let manual = {
            let mut rt = NodeRuntime::new(StepEnv::default());
            let a = rt.register_agent("a", ConstModel { value: 1.0 }, CountActuator::default(), {
                schedule(100)
            });
            let b = rt.register_agent("b", ConstModel { value: 2.0 }, CountActuator::default(), {
                schedule(70)
            });
            let report = rt.run_for(SimDuration::from_secs(7)).unwrap();
            (
                format!("{:#?}", report.agent_report(a).unwrap().stats),
                format!("{:#?}", report.agent_report(b).unwrap().stats),
                report.environment.advances,
                report.ended_at,
            )
        };
        let built = {
            let mut builder = NodeRuntime::builder(StepEnv::default());
            let a = builder.agent(
                "a",
                ConstModel { value: 1.0 },
                CountActuator::default(),
                schedule(100),
            );
            let b = builder.agent(
                "b",
                ConstModel { value: 2.0 },
                CountActuator::default(),
                schedule(70),
            );
            let report = builder.build().run_for(SimDuration::from_secs(7)).unwrap();
            (
                format!("{:#?}", report.agent(a).stats()),
                format!("{:#?}", report.agent(b).stats()),
                report.environment.advances,
                report.ended_at,
            )
        };
        assert_eq!(manual, built);
    }

    #[test]
    fn handles_target_interventions() {
        let mut builder = NodeRuntime::builder(NullEnvironment);
        let delayed =
            builder.agent("delayed", ConstModel { value: 1.0 }, CountActuator::default(), {
                schedule(100)
            });
        let healthy =
            builder.agent("healthy", ConstModel { value: 1.0 }, CountActuator::default(), {
                schedule(100)
            });
        let mut runtime = builder.build();
        // The handle converts into an AgentId for the untyped API.
        runtime.delay_model_at(delayed, Timestamp::from_secs(2), SimDuration::from_secs(5));
        let report = runtime.run_for(SimDuration::from_secs(10)).unwrap();
        assert!(
            report.agent(delayed).stats().model.epochs_completed
                < report.agent(healthy).stats().model.epochs_completed
        );
    }

    #[test]
    fn take_recovers_concrete_halves() {
        let mut builder = NodeRuntime::builder(NullEnvironment);
        let agent =
            builder.agent("a", ConstModel { value: 4.0 }, CountActuator::default(), schedule(100));
        let mut report = builder.build().run_for(SimDuration::from_secs(2)).unwrap();
        let taken = report.take(agent);
        assert_eq!(taken.name, "a");
        assert_eq!(taken.model.value, 4.0);
        assert!(taken.actuator.actions > 0);
        assert!(taken.stats.model.epochs_completed > 0);
        // A second take reports the agent as gone.
        assert!(matches!(report.try_take(agent), Err(ReportError::UnknownAgent(_))));
    }

    #[test]
    fn try_take_leaves_report_intact_on_type_mismatch() {
        // Two runtimes with different agent types at position 0: using the
        // first runtime's handle on the second report is a type error.
        let mut builder = NodeRuntime::builder(NullEnvironment);
        let typed =
            builder.agent("a", ConstModel { value: 1.0 }, CountActuator::default(), schedule(100));
        drop(builder);

        struct OtherActuator;
        impl crate::actuator::Actuator for OtherActuator {
            type Pred = f64;
            fn take_action(
                &mut self,
                _now: Timestamp,
                _pred: Option<&crate::prediction::Prediction<f64>>,
            ) {
            }
            fn assess_performance(
                &mut self,
                _now: Timestamp,
            ) -> crate::actuator::ActuatorAssessment {
                crate::actuator::ActuatorAssessment::Acceptable
            }
            fn mitigate(&mut self, _now: Timestamp) {}
            fn clean_up(&mut self, _now: Timestamp) {}
        }

        let mut other = NodeRuntime::builder(NullEnvironment);
        other.agent("b", ConstModel { value: 1.0 }, OtherActuator, schedule(100));
        let mut report = other.build().run_for(SimDuration::from_secs(1)).unwrap();
        assert!(matches!(report.try_agent(typed), Err(ReportError::WrongAgentType(_))));
        assert!(matches!(report.try_take(typed), Err(ReportError::WrongAgentType(_))));
        // The mismatch did not remove the agent.
        assert_eq!(report.agents.len(), 1);
    }

    #[test]
    fn blueprints_register_like_inline_agents() {
        let mut builder = NodeRuntime::builder(NullEnvironment);
        let handle = builder.register(AgentBlueprint::new(
            "packaged",
            ConstModel { value: 3.0 },
            CountActuator::default(),
            schedule(100),
        ));
        let report = builder.build().run_for(SimDuration::from_secs(2)).unwrap();
        assert_eq!(report.agent(handle).name(), "packaged");
        assert_eq!(report.agent(handle).model().value, 3.0);
    }

    #[test]
    fn builder_config_methods_reach_the_runtime() {
        let builder = NodeRuntime::builder(NullEnvironment);
        assert!(builder.max_environment_step(SimDuration::ZERO).is_err());

        let mut builder = NodeRuntime::builder(NullEnvironment)
            .max_environment_step(SimDuration::from_millis(500))
            .unwrap()
            .cleanup_on_finish(true);
        let a =
            builder.agent("a", ConstModel { value: 1.0 }, CountActuator::default(), schedule(100));
        assert_eq!(builder.agent_count(), 1);
        let report = builder.build().run_for(SimDuration::from_secs(2)).unwrap();
        assert_eq!(report.agent(a).stats().actuator.cleanups, 1);
    }
}
