//! The `Model` half of the SOL agent API (paper §4.1, Listing 1).
//!
//! The Model is responsible for providing fresh and accurate predictions on a
//! best-effort basis. It encapsulates the three operations every learning
//! agent performs — collect data, update the model, predict — plus the
//! safeguards that keep a misbehaving model from ever reaching the Actuator:
//! per-sample validation, periodic accuracy assessment, and a safe default
//! prediction.

use sol_ml::exchange::{ExchangeError, LearnedState};

use crate::error::DataError;
use crate::prediction::Prediction;
use crate::time::Timestamp;

/// The outcome of a model safeguard check
/// ([`Model::assess_model`]).
///
/// While the assessment is `Failing`, the SOL runtime keeps operating the
/// Model control loop normally (so the model has a chance to recover) but
/// intercepts its predictions and forwards default predictions to the Actuator
/// instead (paper §4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelAssessment {
    /// The model meets its accuracy expectations; its predictions may be used.
    Healthy,
    /// The model is not trustworthy; predictions must be intercepted.
    Failing {
        /// A short, human-readable reason recorded in the agent stats (e.g.
        /// "reward delta below threshold").
        reason: String,
    },
}

impl ModelAssessment {
    /// Convenience constructor for a failing assessment.
    pub fn failing(reason: impl Into<String>) -> Self {
        ModelAssessment::Failing { reason: reason.into() }
    }

    /// Returns `true` when the model passed its assessment.
    pub fn is_healthy(&self) -> bool {
        matches!(self, ModelAssessment::Healthy)
    }
}

/// The learning half of a SOL agent.
///
/// A single *learning epoch* consists of several [`collect_data`] calls (each
/// validated with [`validate_data`] and, if valid, stored with
/// [`commit_data`]), followed by at most one [`update_model`] and one
/// [`predict`]. If the epoch cannot gather enough valid data before the
/// schedule's maximum epoch time, the runtime short-circuits it and forwards
/// [`default_predict`] to the Actuator instead.
///
/// Implementations run inside the Model control loop and must be `Send` so
/// the threaded runtime can host them on their own OS thread.
///
/// [`collect_data`]: Model::collect_data
/// [`validate_data`]: Model::validate_data
/// [`commit_data`]: Model::commit_data
/// [`update_model`]: Model::update_model
/// [`predict`]: Model::predict
/// [`default_predict`]: Model::default_predict
///
/// # Examples
///
/// A minimal model that predicts the mean of the readings it has seen:
///
/// ```
/// use sol_core::error::DataError;
/// use sol_core::model::{Model, ModelAssessment};
/// use sol_core::prediction::Prediction;
/// use sol_core::time::{SimDuration, Timestamp};
///
/// struct MeanModel {
///     readings: Vec<f64>,
///     mean: f64,
/// }
///
/// impl Model for MeanModel {
///     type Data = f64;
///     type Pred = f64;
///
///     fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> {
///         Ok(42.0)
///     }
///     fn validate_data(&self, sample: &f64) -> bool {
///         sample.is_finite() && *sample >= 0.0
///     }
///     fn commit_data(&mut self, _now: Timestamp, sample: f64) {
///         self.readings.push(sample);
///     }
///     fn update_model(&mut self, _now: Timestamp) {
///         self.mean = self.readings.iter().sum::<f64>() / self.readings.len() as f64;
///     }
///     fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
///         Some(Prediction::model(self.mean, now, now + SimDuration::from_secs(1)))
///     }
///     fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
///         Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
///     }
///     fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment {
///         ModelAssessment::Healthy
///     }
/// }
/// ```
pub trait Model: Send {
    /// The type of a single telemetry sample.
    type Data;
    /// The type of the value the model predicts.
    type Pred: Send + 'static;

    /// Collects one telemetry sample.
    ///
    /// # Errors
    ///
    /// Returns a [`DataError`] when the telemetry source itself fails; such
    /// samples are counted as collection errors and never reach the model.
    fn collect_data(&mut self, now: Timestamp) -> Result<Self::Data, DataError>;

    /// Checks a freshly collected sample against the developer's data
    /// assumptions (range checks, simple distributional checks). Samples that
    /// fail validation are discarded and never committed.
    fn validate_data(&self, data: &Self::Data) -> bool;

    /// Stores a validated sample for use by the next model update.
    fn commit_data(&mut self, now: Timestamp, data: Self::Data);

    /// Updates the model with the data committed during the current epoch.
    fn update_model(&mut self, now: Timestamp);

    /// Produces a prediction from the current model, or `None` if the model
    /// cannot produce one (e.g. below a confidence threshold). Returning
    /// `None` short-circuits the epoch: the runtime forwards
    /// [`default_predict`](Model::default_predict) instead.
    fn predict(&mut self, now: Timestamp) -> Option<Prediction<Self::Pred>>;

    /// Produces the safe fallback prediction used when the model cannot be
    /// trusted or did not finish in time. Default predictions should allow the
    /// node to behave with minimal impact on the agent's safety metric, at the
    /// possible cost of lower efficiency.
    fn default_predict(&self, now: Timestamp) -> Prediction<Self::Pred>;

    /// The model safeguard: periodically checks whether model accuracy (or
    /// another relevant metric) is acceptable for the agent's prediction task.
    fn assess_model(&mut self, now: Timestamp) -> ModelAssessment;

    /// Optional developer hook allowing the epoch to be short-circuited
    /// explicitly before it completes (paper §4.1: default predictions can be
    /// sent to the Actuator at any stage of the learning epoch). The runtime
    /// checks this after every committed sample.
    fn request_default(&self) -> bool {
        false
    }

    /// Optional learning-plane hook: a snapshot of the model's learned
    /// parameters for fleet-wide exchange. Models that return `None` (the
    /// default) do not participate in learning rounds.
    fn export_learned(&self) -> Option<LearnedState> {
        None
    }

    /// Optional learning-plane hook: overwrites the model's learned
    /// parameters with a (blended) fleet aggregate. Implementations must
    /// validate kind and shape and leave the model unchanged on error; they
    /// must not touch RNG streams or counters, so local decision sequences
    /// stay deterministic modulo the imported values.
    ///
    /// # Errors
    ///
    /// Returns the [`ExchangeError`] of the underlying learner when `state`
    /// is incompatible; the default implementation accepts nothing
    /// ([`ExchangeError::Unsupported`]).
    fn import_learned(&mut self, state: &LearnedState) -> Result<(), ExchangeError> {
        let _ = state;
        Err(ExchangeError::Unsupported)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assessment_helpers() {
        assert!(ModelAssessment::Healthy.is_healthy());
        let f = ModelAssessment::failing("low accuracy");
        assert!(!f.is_healthy());
        assert_eq!(f, ModelAssessment::Failing { reason: "low accuracy".into() });
    }
}
