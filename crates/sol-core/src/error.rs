//! Error types for the SOL framework.

use std::error::Error as StdError;
use std::fmt;

/// An error produced while collecting a telemetry sample.
///
/// Returned by [`Model::collect_data`](crate::model::Model::collect_data) when
/// the underlying counter, driver, or hypervisor interface fails. The runtime
/// counts these as discarded samples; they never reach the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// The telemetry source was unavailable (e.g. driver returned an error
    /// code, as for the SmartMemory access-bit scanner in paper §5.3).
    SourceUnavailable(String),
    /// A reading was produced but is structurally unusable (e.g. wrong shape,
    /// missing counters).
    Malformed(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::SourceUnavailable(s) => write!(f, "telemetry source unavailable: {s}"),
            DataError::Malformed(s) => write!(f, "malformed telemetry sample: {s}"),
        }
    }
}

impl StdError for DataError {}

/// Errors surfaced by the SOL runtime itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The schedule passed to the runtime is internally inconsistent.
    InvalidSchedule(String),
    /// A runtime configuration value (e.g. the maximum environment step) is
    /// out of range.
    InvalidConfig(String),
    /// The agent was asked to run for a zero-length horizon.
    EmptyHorizon,
    /// A worker thread of the threaded runtime panicked.
    WorkerPanicked(&'static str),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidSchedule(s) => write!(f, "invalid schedule: {s}"),
            RuntimeError::InvalidConfig(s) => write!(f, "invalid runtime configuration: {s}"),
            RuntimeError::EmptyHorizon => write!(f, "agent horizon must be non-empty"),
            RuntimeError::WorkerPanicked(which) => write!(f, "{which} control loop panicked"),
        }
    }
}

impl StdError for RuntimeError {}

/// Errors produced while reading a [`NodeReport`](crate::runtime::node::NodeReport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// The requested agent is not in the report: either the id/handle was
    /// produced by a different runtime, or the agent's report was already
    /// removed with a `take` call.
    UnknownAgent(String),
    /// The agent exists but its driver is not of the type the handle claims —
    /// only possible when a handle is used against a report from a different
    /// runtime whose agent at that position has another type.
    WrongAgentType(String),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::UnknownAgent(id) => {
                write!(f, "{id} not in report (foreign id or already taken)")
            }
            ReportError::WrongAgentType(id) => {
                write!(f, "{id} is not of the type the handle was created with")
            }
        }
    }
}

impl StdError for ReportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_messages() {
        let e = DataError::SourceUnavailable("perf counter".into());
        assert_eq!(e.to_string(), "telemetry source unavailable: perf counter");
        let e = RuntimeError::InvalidSchedule("data_per_epoch is zero".into());
        assert!(e.to_string().starts_with("invalid schedule"));
        let e = RuntimeError::InvalidConfig("environment step is zero".into());
        assert_eq!(e.to_string(), "invalid runtime configuration: environment step is zero");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
        assert_send_sync::<RuntimeError>();
    }
}
