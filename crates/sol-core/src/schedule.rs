//! Scheduling parameters for an agent's Model and Actuator control loops.
//!
//! Mirrors the `Schedule` class in paper §4.1 (Listing 3): data points per
//! epoch, collection interval, maximum epoch time, model assessment interval,
//! maximum actuation delay, and actuator assessment interval.

use serde::{Deserialize, Serialize};

use crate::error::RuntimeError;
use crate::time::SimDuration;

/// How often each developer-provided function runs.
///
/// Construct with [`Schedule::builder`]; the builder validates internal
/// consistency (e.g. the epoch must be long enough to hold the requested
/// number of collections).
///
/// # Examples
///
/// ```
/// use sol_core::schedule::Schedule;
/// use sol_core::time::SimDuration;
///
/// let schedule = Schedule::builder()
///     .data_per_epoch(10)
///     .data_collect_interval(SimDuration::from_millis(100))
///     .max_epoch_time(SimDuration::from_secs(1))
///     .assess_model_every_epochs(10)
///     .max_actuation_delay(SimDuration::from_secs(5))
///     .assess_actuator_interval(SimDuration::from_secs(1))
///     .build()?;
/// assert_eq!(schedule.data_per_epoch(), 10);
/// # Ok::<(), sol_core::error::RuntimeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    data_per_epoch: u32,
    min_data_per_epoch: u32,
    data_collect_interval: SimDuration,
    max_epoch_time: SimDuration,
    assess_model_every_epochs: u32,
    max_actuation_delay: SimDuration,
    assess_actuator_interval: SimDuration,
}

impl Schedule {
    /// Starts building a schedule.
    pub fn builder() -> ScheduleBuilder {
        ScheduleBuilder::default()
    }

    /// Number of validated data points that complete a learning epoch.
    pub fn data_per_epoch(&self) -> u32 {
        self.data_per_epoch
    }

    /// Minimum number of validated data points required for the model to
    /// update and predict; below this the epoch short-circuits with a default
    /// prediction.
    pub fn min_data_per_epoch(&self) -> u32 {
        self.min_data_per_epoch
    }

    /// Interval between consecutive data-collection calls.
    pub fn data_collect_interval(&self) -> SimDuration {
        self.data_collect_interval
    }

    /// Maximum wall-clock length of one learning epoch.
    pub fn max_epoch_time(&self) -> SimDuration {
        self.max_epoch_time
    }

    /// The model safeguard ([`Model::assess_model`](crate::model::Model::assess_model))
    /// runs every this many epochs.
    pub fn assess_model_every_epochs(&self) -> u32 {
        self.assess_model_every_epochs
    }

    /// Maximum time the Actuator waits for a prediction before acting anyway.
    pub fn max_actuation_delay(&self) -> SimDuration {
        self.max_actuation_delay
    }

    /// Interval between Actuator safeguard checks
    /// ([`Actuator::assess_performance`](crate::actuator::Actuator::assess_performance)).
    pub fn assess_actuator_interval(&self) -> SimDuration {
        self.assess_actuator_interval
    }
}

/// Builder for [`Schedule`].
#[derive(Debug, Clone)]
pub struct ScheduleBuilder {
    data_per_epoch: u32,
    min_data_per_epoch: Option<u32>,
    data_collect_interval: SimDuration,
    max_epoch_time: SimDuration,
    assess_model_every_epochs: u32,
    max_actuation_delay: SimDuration,
    assess_actuator_interval: SimDuration,
}

impl Default for ScheduleBuilder {
    fn default() -> Self {
        ScheduleBuilder {
            data_per_epoch: 1,
            min_data_per_epoch: None,
            data_collect_interval: SimDuration::from_millis(100),
            max_epoch_time: SimDuration::from_secs(1),
            assess_model_every_epochs: 1,
            max_actuation_delay: SimDuration::from_secs(5),
            assess_actuator_interval: SimDuration::from_secs(1),
        }
    }
}

impl ScheduleBuilder {
    /// Sets the number of validated samples per learning epoch.
    pub fn data_per_epoch(mut self, n: u32) -> Self {
        self.data_per_epoch = n;
        self
    }

    /// Sets the minimum number of validated samples needed to update the model
    /// (defaults to `data_per_epoch`).
    pub fn min_data_per_epoch(mut self, n: u32) -> Self {
        self.min_data_per_epoch = Some(n);
        self
    }

    /// Sets the interval between data collections.
    pub fn data_collect_interval(mut self, d: SimDuration) -> Self {
        self.data_collect_interval = d;
        self
    }

    /// Sets the maximum duration of a learning epoch.
    pub fn max_epoch_time(mut self, d: SimDuration) -> Self {
        self.max_epoch_time = d;
        self
    }

    /// Sets how many epochs elapse between model safeguard checks.
    pub fn assess_model_every_epochs(mut self, epochs: u32) -> Self {
        self.assess_model_every_epochs = epochs;
        self
    }

    /// Sets the maximum time the Actuator waits for a prediction.
    pub fn max_actuation_delay(mut self, d: SimDuration) -> Self {
        self.max_actuation_delay = d;
        self
    }

    /// Sets the interval between Actuator safeguard checks.
    pub fn assess_actuator_interval(mut self, d: SimDuration) -> Self {
        self.assess_actuator_interval = d;
        self
    }

    /// Validates the configuration and produces a [`Schedule`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidSchedule`] if any interval is zero,
    /// `data_per_epoch` is zero, `min_data_per_epoch` exceeds
    /// `data_per_epoch`, or the maximum epoch time cannot hold a single
    /// collection interval.
    pub fn build(self) -> Result<Schedule, RuntimeError> {
        if self.data_per_epoch == 0 {
            return Err(RuntimeError::InvalidSchedule("data_per_epoch must be at least 1".into()));
        }
        if self.data_collect_interval.is_zero() {
            return Err(RuntimeError::InvalidSchedule(
                "data_collect_interval must be non-zero".into(),
            ));
        }
        if self.max_epoch_time < self.data_collect_interval {
            return Err(RuntimeError::InvalidSchedule(
                "max_epoch_time must be at least one data_collect_interval".into(),
            ));
        }
        if self.assess_model_every_epochs == 0 {
            return Err(RuntimeError::InvalidSchedule(
                "assess_model_every_epochs must be at least 1".into(),
            ));
        }
        if self.max_actuation_delay.is_zero() {
            return Err(RuntimeError::InvalidSchedule(
                "max_actuation_delay must be non-zero".into(),
            ));
        }
        if self.assess_actuator_interval.is_zero() {
            return Err(RuntimeError::InvalidSchedule(
                "assess_actuator_interval must be non-zero".into(),
            ));
        }
        let min_data = self.min_data_per_epoch.unwrap_or(self.data_per_epoch);
        if min_data > self.data_per_epoch {
            return Err(RuntimeError::InvalidSchedule(
                "min_data_per_epoch must not exceed data_per_epoch".into(),
            ));
        }
        Ok(Schedule {
            data_per_epoch: self.data_per_epoch,
            min_data_per_epoch: min_data,
            data_collect_interval: self.data_collect_interval,
            max_epoch_time: self.max_epoch_time,
            assess_model_every_epochs: self.assess_model_every_epochs,
            max_actuation_delay: self.max_actuation_delay,
            assess_actuator_interval: self.assess_actuator_interval,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> ScheduleBuilder {
        Schedule::builder()
            .data_per_epoch(4)
            .data_collect_interval(SimDuration::from_millis(10))
            .max_epoch_time(SimDuration::from_millis(100))
            .assess_model_every_epochs(2)
            .max_actuation_delay(SimDuration::from_millis(50))
            .assess_actuator_interval(SimDuration::from_millis(25))
    }

    #[test]
    fn builds_valid_schedule() {
        let s = valid().build().unwrap();
        assert_eq!(s.data_per_epoch(), 4);
        assert_eq!(s.min_data_per_epoch(), 4);
        assert_eq!(s.data_collect_interval(), SimDuration::from_millis(10));
    }

    #[test]
    fn min_data_defaults_to_data_per_epoch_and_can_be_lowered() {
        let s = valid().min_data_per_epoch(2).build().unwrap();
        assert_eq!(s.min_data_per_epoch(), 2);
    }

    #[test]
    fn rejects_zero_data_per_epoch() {
        assert!(matches!(valid().data_per_epoch(0).build(), Err(RuntimeError::InvalidSchedule(_))));
    }

    #[test]
    fn rejects_zero_intervals() {
        assert!(valid().data_collect_interval(SimDuration::ZERO).build().is_err());
        assert!(valid().max_actuation_delay(SimDuration::ZERO).build().is_err());
        assert!(valid().assess_actuator_interval(SimDuration::ZERO).build().is_err());
        assert!(valid().assess_model_every_epochs(0).build().is_err());
    }

    #[test]
    fn rejects_epoch_shorter_than_collection_interval() {
        assert!(valid()
            .max_epoch_time(SimDuration::from_millis(5))
            .data_collect_interval(SimDuration::from_millis(10))
            .build()
            .is_err());
    }

    #[test]
    fn rejects_min_data_above_data_per_epoch() {
        assert!(valid().min_data_per_epoch(9).build().is_err());
    }
}
