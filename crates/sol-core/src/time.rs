//! Virtual and wall-clock time for SOL agents.
//!
//! All framework logic is expressed in terms of [`Timestamp`] and
//! [`SimDuration`], nanosecond-resolution newtypes. Experiments run against a
//! [`VirtualClock`] so they are fast and fully deterministic; the threaded
//! runtime uses a [`SystemClock`] backed by [`std::time::Instant`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A point in time, measured in nanoseconds since an arbitrary epoch.
///
/// # Examples
///
/// ```
/// use sol_core::time::{SimDuration, Timestamp};
///
/// let t = Timestamp::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The origin of simulated time.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The far end of simulated time, usable as a "never" sentinel (e.g. the
    /// wake time of an agent that has nothing left to do).
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Timestamp(nanos)
    }

    /// Creates a timestamp from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros * 1_000)
    }

    /// Creates a timestamp from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis * 1_000_000)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the timestamp expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use sol_core::time::{SimDuration, Timestamp};
    /// let a = Timestamp::from_millis(10);
    /// let b = Timestamp::from_millis(4);
    /// assert_eq!(a.duration_since(b), SimDuration::from_millis(6));
    /// assert_eq!(b.duration_since(a), SimDuration::ZERO);
    /// ```
    pub fn duration_since(self, earlier: Timestamp) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for Timestamp {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0.saturating_sub(rhs.0))
    }
}

/// A span of time, measured in nanoseconds.
///
/// # Examples
///
/// ```
/// use sol_core::time::SimDuration;
/// let d = SimDuration::from_millis(25) * 4;
/// assert_eq!(d, SimDuration::from_millis(100));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be finite and non-negative");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the number of whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the number of whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns true if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Converts to a [`std::time::Duration`] for use with the threaded runtime.
    pub const fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl std::ops::Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl From<std::time::Duration> for SimDuration {
    fn from(d: std::time::Duration) -> Self {
        SimDuration(d.as_nanos() as u64)
    }
}

/// A source of the current time.
///
/// The SOL runtime relies on the system clock for accurate timekeeping (paper
/// §4.1); in this reproduction the same logic also runs against a virtual
/// clock so that experiments are deterministic.
pub trait Clock: Send + Sync + 'static {
    /// Returns the current time.
    fn now(&self) -> Timestamp;
}

/// A manually-advanced clock used by the deterministic simulation runtime.
///
/// Cloning a `VirtualClock` yields a handle to the *same* underlying time
/// source.
///
/// # Examples
///
/// ```
/// use sol_core::time::{Clock, SimDuration, Timestamp, VirtualClock};
///
/// let clock = VirtualClock::new();
/// assert_eq!(clock.now(), Timestamp::ZERO);
/// clock.advance(SimDuration::from_secs(2));
/// assert_eq!(clock.now(), Timestamp::from_secs(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<Mutex<Timestamp>>,
}

impl VirtualClock {
    /// Creates a clock starting at [`Timestamp::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: SimDuration) {
        let mut now = self.now.lock();
        *now += d;
    }

    /// Moves the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time: simulated time never
    /// moves backwards.
    pub fn set(&self, t: Timestamp) {
        let mut now = self.now.lock();
        assert!(t >= *now, "virtual time must not move backwards");
        *now = t;
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Timestamp {
        *self.now.lock()
    }
}

/// A wall-clock [`Clock`] backed by [`std::time::Instant`], used by the
/// threaded runtime.
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock whose zero point is "now".
    pub fn new() -> Self {
        SystemClock { origin: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic_round_trips() {
        let t = Timestamp::from_millis(1500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t, Timestamp::from_micros(1_500_000));
        assert_eq!(t + SimDuration::from_millis(500), Timestamp::from_secs(2));
        assert_eq!(t - SimDuration::from_secs(10), Timestamp::ZERO);
    }

    #[test]
    fn duration_display_uses_readable_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(25).to_string(), "25.000ms");
        assert_eq!(SimDuration::from_micros(50).to_string(), "50.000us");
        assert_eq!(SimDuration::from_nanos(7).to_string(), "7ns");
    }

    #[test]
    fn duration_since_saturates() {
        let a = Timestamp::from_secs(1);
        let b = Timestamp::from_secs(3);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(2));
    }

    #[test]
    fn virtual_clock_is_shared_between_clones() {
        let clock = VirtualClock::new();
        let other = clock.clone();
        clock.advance(SimDuration::from_millis(10));
        assert_eq!(other.now(), Timestamp::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn virtual_clock_rejects_backwards_time() {
        let clock = VirtualClock::new();
        clock.set(Timestamp::from_secs(5));
        clock.set(Timestamp::from_secs(4));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0255), SimDuration::from_micros(25_500));
    }

    #[test]
    fn duration_min_max() {
        let a = SimDuration::from_millis(5);
        let b = SimDuration::from_millis(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
