//! # sol-core — the SOL framework
//!
//! A Rust reproduction of the framework described in *SOL: Safe On-Node
//! Learning in Cloud Platforms* (ASPLOS 2022). SOL helps developers build
//! on-node machine-learning agents that are safe to deploy alongside customer
//! workloads: agents that detect and mitigate bad input data, inaccurate
//! models, scheduling delays, and end-to-end misbehaviour without human
//! intervention.
//!
//! ## Structure
//!
//! An agent has two halves connected by a prediction queue:
//!
//! * a [`Model`](model::Model) that collects telemetry, validates it, learns
//!   from it, and produces [`Prediction`](prediction::Prediction)s with
//!   explicit expiration times; and
//! * an [`Actuator`](actuator::Actuator) that takes control actions at regular
//!   intervals using fresh predictions when available and safe defaults when
//!   not, backed by a watchdog-style performance safeguard and an idempotent
//!   clean-up routine.
//!
//! The [`runtime`] module provides three drivers for these loops: a
//! deterministic multi-agent event-queue runtime
//! ([`NodeRuntime`](runtime::node::NodeRuntime)) hosting co-located agents on
//! one shared environment, its typed single-agent wrapper
//! ([`SimRuntime`](runtime::sim::SimRuntime)) used by the per-agent
//! experiments, and a threaded runtime ([`runtime::threaded`]) matching the
//! paper's deployment shape (two separately scheduled control loops).
//!
//! ## Quick start
//!
//! ```
//! use sol_core::prelude::*;
//!
//! // A toy agent: the model predicts a constant, the actuator records it.
//! struct ConstModel;
//! impl Model for ConstModel {
//!     type Data = f64;
//!     type Pred = f64;
//!     fn collect_data(&mut self, _now: Timestamp) -> Result<f64, DataError> { Ok(1.0) }
//!     fn validate_data(&self, d: &f64) -> bool { d.is_finite() }
//!     fn commit_data(&mut self, _now: Timestamp, _d: f64) {}
//!     fn update_model(&mut self, _now: Timestamp) {}
//!     fn predict(&mut self, now: Timestamp) -> Option<Prediction<f64>> {
//!         Some(Prediction::model(2.0, now, now + SimDuration::from_secs(1)))
//!     }
//!     fn default_predict(&self, now: Timestamp) -> Prediction<f64> {
//!         Prediction::fallback(0.0, now, now + SimDuration::from_secs(1))
//!     }
//!     fn assess_model(&mut self, _now: Timestamp) -> ModelAssessment { ModelAssessment::Healthy }
//! }
//!
//! #[derive(Default)]
//! struct Recorder { last: f64 }
//! impl Actuator for Recorder {
//!     type Pred = f64;
//!     fn take_action(&mut self, _now: Timestamp, pred: Option<&Prediction<f64>>) {
//!         self.last = pred.map(|p| *p.value()).unwrap_or(0.0);
//!     }
//!     fn assess_performance(&mut self, _now: Timestamp) -> ActuatorAssessment {
//!         ActuatorAssessment::Acceptable
//!     }
//!     fn mitigate(&mut self, _now: Timestamp) {}
//!     fn clean_up(&mut self, _now: Timestamp) { self.last = 0.0; }
//! }
//!
//! let schedule = Schedule::builder()
//!     .data_per_epoch(2)
//!     .data_collect_interval(SimDuration::from_millis(100))
//!     .max_epoch_time(SimDuration::from_secs(1))
//!     .build()?;
//! let runtime = SimRuntime::new(ConstModel, Recorder::default(), schedule, NullEnvironment);
//! let report = runtime.run_for(SimDuration::from_secs(5))?;
//! assert!(report.stats.model.model_predictions > 0);
//! assert_eq!(report.actuator.last, 2.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod actuator;
pub mod error;
pub mod loops;
pub mod model;
pub mod prediction;
pub mod runtime;
pub mod schedule;
pub mod stats;
pub mod taxonomy;
pub mod time;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::actuator::{Actuator, ActuatorAssessment};
    pub use crate::error::{DataError, ReportError, RuntimeError};
    pub use crate::model::{Model, ModelAssessment};
    pub use crate::prediction::{Prediction, PredictionSource};
    pub use crate::runtime::builder::{
        AgentBlueprint, AgentHandle, AgentView, DriverHandle, ScenarioBuilder, ScenarioRecipe,
        TakenAgent,
    };
    pub use crate::runtime::fleet::{
        FleetAgentReport, FleetConfig, FleetNodeReport, FleetReport, FleetRuntime, MetricSummary,
        NodeSeed, Percentiles, PlacementStats, RoleAggregate,
    };
    pub use crate::runtime::learning::{LearningPlane, LearningStats};
    pub use crate::runtime::lifecycle::{
        FaultEvent, FaultPlan, FaultPlanConfig, LifecycleError, LifecycleEvent, NodeRecord,
        NodeRegistry, NodeState,
    };
    pub use crate::runtime::node::{
        AgentDriver, AgentId, AgentReport, LoopAgent, NodeReport, NodeRuntime,
    };
    pub use crate::runtime::placement::{
        AgentTelemetry, ArrivalTrace, ArrivalTraceConfig, FleetCommand, FleetController, FleetView,
        GreedyPacker, GreedyPackerConfig, NodeDelta, NodeInit, NodePlacement, NodeView,
        NullController, PlacementError, PlacementPlan, TraceEvent, TraceEventKind, WorkloadId,
        WorkloadUnit,
    };
    pub use crate::runtime::replay::{ReplayDriver, ReplayEntry};
    pub use crate::runtime::sim::{SimReport, SimRuntime};
    pub use crate::runtime::threaded::{leaked_threads, run_agent, ThreadedAgent, ThreadedReport};
    pub use crate::runtime::trust::{
        NodeTrustRecord, TrustAction, TrustPolicy, TrustStats, TrustVerdict,
    };
    pub use crate::runtime::{Environment, NullEnvironment};
    pub use crate::schedule::Schedule;
    pub use crate::stats::AgentStats;
    pub use crate::time::{Clock, SimDuration, SystemClock, Timestamp, VirtualClock};
}
