//! CPU frequency / power model.
//!
//! The paper's testbed is a two-socket Xeon 8171M whose cores can run at 1.5,
//! 1.9, or 2.3 GHz (§6.2). Since we have no power meter, this module provides
//! a standard DVFS power model: static (leakage) power per core plus dynamic
//! power that scales with utilization and super-linearly (cubically) with
//! frequency. Figures 1–5 depend only on the *relative* power of the
//! frequency settings, which this model preserves.

use serde::{Deserialize, Serialize};

use sol_core::time::SimDuration;

/// The frequency levels the SmartOverclock agent can choose from (GHz),
/// matching §6.2: nominal 1.5 GHz and overclocked 1.9 / 2.3 GHz.
pub const FREQUENCY_LEVELS_GHZ: [f64; 3] = [1.5, 1.9, 2.3];

/// The nominal (safe default) frequency in GHz.
pub const NOMINAL_FREQUENCY_GHZ: f64 = 1.5;

/// A simple per-core DVFS power model.
///
/// Power for one core running at frequency `f` with utilization `u` is
/// `static_w * (f / nominal)^2 + dynamic_w * u * (f / nominal)^3` — static
/// power rises with the voltage needed for the higher frequency, dynamic
/// power with voltage squared times frequency. Node power is the sum over
/// cores plus a constant platform overhead.
///
/// # Examples
///
/// ```
/// use sol_node_sim::power::PowerModel;
///
/// let model = PowerModel::default();
/// let idle = model.node_power_watts(1.5, 0.0, 26);
/// let busy = model.node_power_watts(2.3, 1.0, 26);
/// assert!(busy > 2.0 * idle);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Constant platform power (fans, uncore, DRAM) in watts.
    pub platform_watts: f64,
    /// Static per-core power in watts (weakly frequency dependent; modeled
    /// as linear in frequency).
    pub static_core_watts: f64,
    /// Dynamic per-core power at the nominal frequency and 100% utilization,
    /// in watts.
    pub dynamic_core_watts: f64,
    /// Nominal frequency in GHz used to normalize the cubic term.
    pub nominal_ghz: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            platform_watts: 20.0,
            static_core_watts: 1.0,
            dynamic_core_watts: 4.0,
            nominal_ghz: NOMINAL_FREQUENCY_GHZ,
        }
    }
}

impl PowerModel {
    /// Power drawn by one core at frequency `freq_ghz` (GHz) with utilization
    /// `utilization` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `freq_ghz` is not positive or `utilization` is outside
    /// `[0, 1]`.
    pub fn core_power_watts(&self, freq_ghz: f64, utilization: f64) -> f64 {
        assert!(freq_ghz > 0.0, "frequency must be positive");
        assert!((0.0..=1.0 + 1e-9).contains(&utilization), "utilization must be in [0, 1]");
        let ratio = freq_ghz / self.nominal_ghz;
        self.static_core_watts * ratio.powi(2)
            + self.dynamic_core_watts * utilization * ratio.powi(3)
    }

    /// Power drawn by the whole node with `cores` cores all at `freq_ghz` and
    /// average utilization `utilization`.
    pub fn node_power_watts(&self, freq_ghz: f64, utilization: f64, cores: usize) -> f64 {
        self.platform_watts + cores as f64 * self.core_power_watts(freq_ghz, utilization)
    }
}

/// Integrates power over time to produce energy and average power.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    joules: f64,
    elapsed: SimDuration,
    peak_watts: f64,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `watts` of power drawn for `dt`.
    pub fn record(&mut self, watts: f64, dt: SimDuration) {
        self.joules += watts * dt.as_secs_f64();
        self.elapsed += dt;
        if watts > self.peak_watts {
            self.peak_watts = watts;
        }
    }

    /// Total energy consumed in joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Average power over the recorded interval (0 if nothing recorded).
    pub fn average_watts(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.joules / secs
        }
    }

    /// Highest instantaneous power recorded.
    pub fn peak_watts(&self) -> f64 {
        self.peak_watts
    }

    /// Total time covered by the recordings.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_increases_superlinearly_with_frequency() {
        let m = PowerModel::default();
        let p15 = m.node_power_watts(1.5, 1.0, 26);
        let p19 = m.node_power_watts(1.9, 1.0, 26);
        let p23 = m.node_power_watts(2.3, 1.0, 26);
        assert!(p15 < p19 && p19 < p23);
        // Dynamic component alone grows faster than frequency.
        let d15 = m.core_power_watts(1.5, 1.0) - m.core_power_watts(1.5, 0.0);
        let d23 = m.core_power_watts(2.3, 1.0) - m.core_power_watts(2.3, 0.0);
        assert!(d23 / d15 > 2.3 / 1.5);
    }

    #[test]
    fn idle_power_is_much_lower_than_busy_power() {
        let m = PowerModel::default();
        assert!(m.node_power_watts(1.5, 0.05, 26) < 0.6 * m.node_power_watts(1.5, 1.0, 26));
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn rejects_bad_utilization() {
        let m = PowerModel::default();
        let _ = m.core_power_watts(1.5, 1.5);
    }

    #[test]
    fn energy_meter_integrates() {
        let mut meter = EnergyMeter::new();
        meter.record(100.0, SimDuration::from_secs(2));
        meter.record(50.0, SimDuration::from_secs(2));
        assert!((meter.joules() - 300.0).abs() < 1e-9);
        assert!((meter.average_watts() - 75.0).abs() < 1e-9);
        assert_eq!(meter.peak_watts(), 100.0);
        assert_eq!(meter.elapsed(), SimDuration::from_secs(4));
    }

    #[test]
    fn empty_meter_reports_zero() {
        let meter = EnergyMeter::new();
        assert_eq!(meter.average_watts(), 0.0);
        assert_eq!(meter.joules(), 0.0);
    }
}
